"""Entity-sharded partitioning of a data source (the plan layer).

The LTM inference loop decomposes across entities: given per-source quality,
each entity's facts are scored independently, and the claim-generation rules
of Definitions 2-3 are themselves entity-local (a negative claim only ever
pairs a fact with sources covering the *same* entity).  Splitting a corpus by
entity therefore produces shard claim matrices that are exact row-subsets of
the single-shard matrix — the property every score-parity argument in
:mod:`repro.parallel.merge` rests on.

:class:`ShardPlanner` assigns each entity to one of ``num_shards`` shards via
the stable, seeded digest of :func:`repro.io.entity_partition_key` (never
Python's process-randomised ``hash()``), so the same entity lands on the same
shard in every process, on every machine, in every run.  An optional
``group_of`` callable routes *groups* of entities together — e.g. the cluster
assignment of :class:`~repro.extensions.entity_clusters.EntityClusteredLTM`,
whose cluster-specific quality estimation requires a cluster's entities to be
fitted in one shard.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator

from repro.exceptions import ConfigurationError
from repro.io.partition import entity_partition_key
from repro.types import EntityKey, Triple

__all__ = ["Shard", "ShardPlan", "KeyShard", "KeyShardPlan", "ShardPlanner"]


@dataclass(frozen=True)
class Shard:
    """One shard of an entity-partitioned corpus.

    Attributes
    ----------
    index:
        Shard number in ``range(num_shards)``.
    entities:
        Entities routed to this shard, in first-seen order.
    triples:
        The shard's raw triples — all triples of its entities, grouped by
        entity in first-seen order.
    """

    index: int
    entities: tuple[EntityKey, ...]
    triples: tuple[Triple, ...]

    @property
    def num_triples(self) -> int:
        """Number of raw triples in the shard."""
        return len(self.triples)

    @property
    def num_entities(self) -> int:
        """Number of entities in the shard."""
        return len(self.entities)

    def __len__(self) -> int:
        return len(self.triples)


@dataclass(frozen=True)
class ShardPlan:
    """The output of :meth:`ShardPlanner.plan`: one :class:`Shard` per slot.

    Shards may be empty when there are fewer entity groups than shards; the
    executor simply skips them.  Shard membership depends only on the entity
    keys, the seed and ``num_shards`` — never on arrival order — so
    re-planning the same corpus (or a superset streamed later) routes every
    known entity identically.
    """

    num_shards: int
    partition_seed: int
    shards: tuple[Shard, ...]

    @property
    def num_triples(self) -> int:
        """Total triples across all shards."""
        return sum(shard.num_triples for shard in self.shards)

    @property
    def num_entities(self) -> int:
        """Total entities across all shards."""
        return sum(shard.num_entities for shard in self.shards)

    def non_empty(self) -> list[Shard]:
        """The shards that actually hold triples, in index order."""
        return [shard for shard in self.shards if shard.num_triples]

    def __iter__(self) -> Iterator[Shard]:
        return iter(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [shard.num_triples for shard in self.shards]
        return f"ShardPlan(num_shards={self.num_shards}, triples={sizes})"


@dataclass(frozen=True)
class KeyShard:
    """One shard of a key-range plan: entity *keys* only, no triples.

    The triples stay in the backing claim store; each worker resolves its
    entities through indexed range reads at fit time.  Entities are listed
    in global first-seen order, so a worker's fetched triples are laid out
    exactly like the corresponding :class:`Shard` of an eager plan.
    """

    index: int
    entities: tuple[EntityKey, ...]

    @property
    def num_entities(self) -> int:
        """Number of entities routed to this shard."""
        return len(self.entities)

    def __len__(self) -> int:
        return len(self.entities)


@dataclass(frozen=True)
class KeyShardPlan:
    """The output of :meth:`ShardPlanner.plan_keys`: an out-of-core plan.

    Unlike :class:`ShardPlan`, no triples are held — only entity keys plus
    the path of the claim store they live in, so a 100M-triple corpus plans
    in memory proportional to its *entity* count and shards cross process
    boundaries as key lists, not data.
    """

    num_shards: int
    partition_seed: int
    shards: tuple[KeyShard, ...]
    store_path: str

    @property
    def num_entities(self) -> int:
        """Total entities across all shards."""
        return sum(shard.num_entities for shard in self.shards)

    def non_empty(self) -> list[KeyShard]:
        """The shards that hold entities (hence triples), in index order."""
        return [shard for shard in self.shards if shard.num_entities]

    def __iter__(self) -> Iterator[KeyShard]:
        return iter(self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [shard.num_entities for shard in self.shards]
        return f"KeyShardPlan(num_shards={self.num_shards}, entities={sizes})"


class ShardPlanner:
    """Hash-partitions any data source into entity shards.

    Parameters
    ----------
    num_shards:
        Number of shards to produce.
    seed:
        Seed of the partitioning digest (see
        :func:`repro.io.entity_partition_key`); different seeds re-balance
        membership deterministically.
    group_of:
        Optional callable mapping an entity to a group label; entities
        sharing a label are guaranteed to land in the same shard (the label,
        not the entity, is hashed).  Use this to co-locate entity clusters
        whose quality must be estimated jointly.

    Examples
    --------
    >>> from repro.parallel import ShardPlanner
    >>> plan = ShardPlanner(2).plan("paper_example")
    >>> plan.num_shards
    2
    >>> plan.num_triples
    8
    """

    def __init__(
        self,
        num_shards: int,
        *,
        seed: int = 0,
        group_of: Callable[[EntityKey], Any] | None = None,
    ):
        if num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        self.num_shards = int(num_shards)
        self.seed = int(seed)
        self.group_of = group_of

    def shard_of(self, entity: EntityKey) -> int:
        """The shard index ``entity`` is routed to (stable across runs)."""
        key = entity if self.group_of is None else self.group_of(entity)
        return entity_partition_key(key, seed=self.seed) % self.num_shards

    def plan(self, data: Any, batch_size: int = 1024) -> ShardPlan:
        """Partition ``data`` into a :class:`ShardPlan`.

        ``data`` is anything :func:`repro.io.as_source` accepts — a
        :class:`~repro.io.DataSource`, a catalog key, a file path, a
        :class:`~repro.data.raw.RawDatabase` or a plain triple iterable.
        The source is consumed through
        :meth:`~repro.io.DataSource.iter_batches` in entity-grouped mode, so
        each entity's triples arrive (and are stored) contiguously and the
        full corpus is only ever traversed once.
        """
        from repro.io.catalog import as_source

        source = as_source(data)
        triples: list[list[Triple]] = [[] for _ in range(self.num_shards)]
        entities: list[list[EntityKey]] = [[] for _ in range(self.num_shards)]
        seen: set[EntityKey] = set()
        for batch in source.iter_batches(batch_size, by_entity=True):
            for triple in batch.triples:
                shard = self.shard_of(triple.entity)
                if triple.entity not in seen:
                    seen.add(triple.entity)
                    entities[shard].append(triple.entity)
                triples[shard].append(triple)
        return ShardPlan(
            num_shards=self.num_shards,
            partition_seed=self.seed,
            shards=tuple(
                Shard(index=i, entities=tuple(entities[i]), triples=tuple(triples[i]))
                for i in range(self.num_shards)
            ),
        )

    def plan_keys(self, data: Any) -> KeyShardPlan:
        """Partition an indexed, store-backed source by streaming key ranges.

        ``data`` must coerce to a source advertising
        :attr:`~repro.io.DataSource.supports_entity_ranges` over an on-disk
        claim store (a :class:`~repro.io.store_source.StoreSource` or a
        ``store://`` URL).  Only entity *keys* stream through the planner —
        off the store's first-seen covering index — so planning a corpus
        needs memory proportional to its entity count, never its triples.
        Shard membership is identical to :meth:`plan` over the same corpus.
        """
        from repro.io.catalog import as_source

        source = as_source(data)
        if not getattr(source, "supports_entity_ranges", False):
            raise ConfigurationError(
                f"{type(source).__name__} does not support indexed entity ranges; "
                f"plan_keys needs a store-backed source (store://path/to/claims.db)"
            )
        store = getattr(source, "store", None)
        if store is None or not getattr(store, "path", None):
            raise ConfigurationError(
                "plan_keys needs a source backed by an on-disk claim store "
                "(workers re-open it by path)"
            )
        entities: list[list[EntityKey]] = [[] for _ in range(self.num_shards)]
        for entity in source.iter_entities():
            entities[self.shard_of(entity)].append(entity)
        return KeyShardPlan(
            num_shards=self.num_shards,
            partition_seed=self.seed,
            shards=tuple(
                KeyShard(index=i, entities=tuple(entities[i]))
                for i in range(self.num_shards)
            ),
            store_path=str(store.path),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grouped = ", grouped" if self.group_of is not None else ""
        return f"ShardPlanner(num_shards={self.num_shards}, seed={self.seed}{grouped})"

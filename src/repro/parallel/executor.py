"""Backend-pluggable execution of a shard plan.

:class:`ParallelExecutor` fits the configured solver on every shard of a
:class:`~repro.parallel.plan.ShardPlan` and reduces the results with
:func:`~repro.parallel.merge.merge_shard_fits`.  Three backends share one
worker function, so a fit is **deterministic for a fixed seed across
backends**:

* ``"serial"`` — an in-process loop; the debug / reference backend.
* ``"threads"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`; best
  for the vectorised solvers whose heavy lifting releases the GIL in numpy.
* ``"processes"`` — a :class:`~concurrent.futures.ProcessPoolExecutor`;
  best for the Python-loop Gibbs sampler, which the GIL serialises under
  threads.

The process handoff is deliberately *object-free*: a shard crosses the
boundary as plain ``(entity, attribute, source)`` tuples plus a JSON-safe
encoding of the solver hyperparameters (the same type-tagged encoding
artifacts use), and each worker rebuilds its claim matrix through the
vectorized bulk-ingest path (:func:`~repro.data.claim_builder.bulk_build_claim_matrix`).
No solver, matrix or rich config object is ever pickled — and because
*every* backend round-trips the hyperparameters through that encoding, all
three see byte-identical inputs.

Per-shard randomness is derived from one :class:`numpy.random.SeedSequence`
spawned per shard slot, so shard seeds do not depend on which shards are
empty, on completion order, or on the backend.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro import obs
from repro.core.quality import expected_confusion_counts
from repro.data.claim_builder import bulk_build_claim_matrix
from repro.engine.config import EXECUTION_BACKENDS
from repro.engine.registry import MethodRegistry, default_registry
from repro.exceptions import ConfigurationError
from repro.parallel.merge import MergedFit, ShardFit, merge_shard_fits
from repro.parallel.plan import KeyShardPlan, ShardPlan

# The artifact layer's type-tagged (de)serialisation doubles as the worker
# handoff codec: it is the one place rich params (LTMPriors, quality tables)
# already round-trip losslessly through plain JSON-safe containers.
from repro.serving.artifact import _decode_param, _encode_param

__all__ = ["ShardTask", "RangeShardTask", "fit_shard", "fit_shard_range", "ParallelExecutor"]


@dataclass(frozen=True)
class ShardTask:
    """One unit of work: everything a worker needs, in plain containers.

    Attributes
    ----------
    index, num_shards:
        Shard slot and plan width.
    method:
        Canonical registry key of the solver.
    params:
        Solver hyperparameters, encoded with the artifact codec (decoded in
        the worker, identically on every backend).
    seed:
        Shard-specific seed derived from the base seed's
        :class:`~numpy.random.SeedSequence` (``None`` when the method is
        unseeded or no base seed was given).
    strategy:
        The method's shard-merge strategy (drives what the worker returns).
    triples:
        The shard's raw triples as plain ``(entity, attribute, source)``
        tuples.
    span_context:
        The caller's open span as a plain ``{"trace_id", "span_id"}`` dict
        (``None`` when tracing is off).  Its presence tells the worker to
        record telemetry; the executor grafts the worker's spans back under
        this context so one merged tree covers plan → shard fits → merge
        even across process boundaries.
    """

    index: int
    num_shards: int
    method: str
    params: Mapping[str, Any]
    seed: int | None
    strategy: str
    triples: tuple[tuple, ...]
    span_context: Mapping[str, Any] | None = None


def fit_shard(task: ShardTask, registry: MethodRegistry | None = None) -> ShardFit:
    """Fit one shard and return its :class:`~repro.parallel.merge.ShardFit`.

    This is the process-pool entry point (module-level, picklable).  The
    shard matrix is rebuilt with the bulk claim-matrix path; because claim
    generation is entity-local, it is an exact entity-subset of the
    single-shard matrix.

    ``registry`` lets the in-process backends (serial / threads) resolve
    methods from a caller-supplied registry; process workers always resolve
    against the shared default registry (registries do not cross the
    process boundary).

    For the ``trust_sync`` strategy the solver is constructed (validating
    hyperparameters) but not fitted — its iterations run cooperatively in
    the reducer — so the worker only extracts the shard's claim structure.

    When the task carries a ``span_context`` (or an enabled tracer is
    ambient — the serial / threads backends), the fit runs under a
    worker-isolated tracer: its ``shard.fit`` span and everything recorded
    beneath it (chunked Gibbs sweeps) come back on
    :attr:`~repro.parallel.merge.ShardFit.spans` as plain dicts for the
    executor to graft into the caller's tree.
    """
    ambient = obs.get_tracer()
    if task.span_context is None and not ambient.enabled:
        return _fit_shard_impl(task, registry)
    collector = obs.InMemorySpanCollector()
    tracer = obs.Tracer(collector, clock=ambient.clock)
    with obs.use_tracer(tracer):
        with tracer.span(
            "shard.fit", shard=task.index, method=task.method, triples=len(task.triples)
        ) as span:
            fit = _fit_shard_impl(task, registry)
            span.set(facts=fit.num_facts, sources=len(fit.source_names))
    return dataclasses.replace(fit, spans=tuple(collector.spans))


def _fit_shard_impl(task: ShardTask, registry: MethodRegistry | None) -> ShardFit:
    matrix = bulk_build_claim_matrix(list(task.triples))
    params = {key: _decode_param(value) for key, value in dict(task.params).items()}
    if task.seed is not None:
        params["seed"] = int(task.seed)
    resolved = registry if registry is not None else default_registry()
    spec = resolved.spec(task.method)
    solver = spec.factory(**params)

    scores: np.ndarray | None = None
    quality = None
    expected = None
    runtime = 0.0
    if task.strategy != "trust_sync":
        result = solver.fit(matrix)
        scores = np.asarray(result.scores, dtype=float)
        quality = result.source_quality
        runtime = float(result.runtime_seconds)
        if task.strategy in ("counts", "counts_positive"):
            # LTM-family solvers record their expected counts (LTMpos over
            # its positive-only matrix); recompute only when absent, on the
            # matching observation domain.
            expected = result.extras.get("expected_counts")
            if expected is None:
                counted = (
                    matrix.positive_only() if task.strategy == "counts_positive" else matrix
                )
                expected = expected_confusion_counts(counted, scores)
            expected = np.asarray(expected, dtype=float)

    return ShardFit(
        index=task.index,
        num_shards=task.num_shards,
        fact_entities=[fact.entity for fact in matrix.facts],
        fact_attributes=[fact.attribute for fact in matrix.facts],
        scores=scores,
        source_names=list(matrix.source_names),
        claim_fact=matrix.claim_fact,
        claim_source=matrix.claim_source,
        claim_obs=matrix.claim_obs,
        expected_counts=expected,
        quality=quality,
        runtime_seconds=runtime,
    )


@dataclass(frozen=True)
class RangeShardTask:
    """One out-of-core unit of work: entity keys plus the store to read.

    The out-of-core counterpart of :class:`ShardTask`: instead of carrying
    its triples, the task carries the claim-store *path* and its entity
    keys.  The worker re-opens the store read-only (SQLite WAL supports any
    number of concurrent readers, across processes) and pulls exactly its
    own entities' triples through indexed range reads — so a shard of a
    100M-triple corpus crosses the process boundary as a key list.
    """

    index: int
    num_shards: int
    method: str
    params: Mapping[str, Any]
    seed: int | None
    strategy: str
    store_path: str
    entities: tuple[str, ...]
    span_context: Mapping[str, Any] | None = None


def fit_shard_range(task: RangeShardTask, registry: MethodRegistry | None = None) -> ShardFit:
    """Fetch a range task's triples from its store and fit the shard.

    Module-level and picklable (the process-pool entry point for
    :class:`KeyShardPlan` execution).  The store fetch preserves the eager
    plan's triple layout — entities in plan order, each entity's triples in
    ingest order — so the resulting :class:`ShardFit` is identical to the
    one :func:`fit_shard` produces from a materialised :class:`ShardTask`.
    """
    from repro.store.claims import ClaimStore

    with ClaimStore(task.store_path, read_only=True) as store:
        triples = tuple(
            triple.as_tuple() for triple in store.entity_triples(list(task.entities))
        )
    return fit_shard(
        ShardTask(
            index=task.index,
            num_shards=task.num_shards,
            method=task.method,
            params=task.params,
            seed=task.seed,
            strategy=task.strategy,
            triples=triples,
            span_context=task.span_context,
        ),
        registry=registry,
    )


def _fit_task(
    task: "ShardTask | RangeShardTask", registry: MethodRegistry | None = None
) -> ShardFit:
    """Backend-agnostic worker dispatch (module-level for process pools)."""
    if isinstance(task, RangeShardTask):
        return fit_shard_range(task, registry=registry)
    return fit_shard(task, registry=registry)


class ParallelExecutor:
    """Fits a shard plan on a pluggable backend and merges the results.

    Parameters
    ----------
    backend:
        ``"serial"``, ``"threads"`` or ``"processes"`` (see module
        docstring).
    max_workers:
        Worker cap for the pool backends; defaults to
        ``min(num_tasks, cpu_count)``.

    Examples
    --------
    >>> from repro.parallel import ParallelExecutor, ShardPlanner
    >>> plan = ShardPlanner(2).plan("paper_example")
    >>> merged = ParallelExecutor("serial").fit(plan, "voting")
    >>> merged.num_facts
    5
    """

    def __init__(self, backend: str = "serial", max_workers: int | None = None):
        if backend not in EXECUTION_BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {backend!r}; "
                f"choose one of {list(EXECUTION_BACKENDS)}"
            )
        if max_workers is not None and max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1 (or None)")
        self.backend = backend
        self.max_workers = max_workers

    # -- shard seeding ---------------------------------------------------------------
    @staticmethod
    def shard_seeds(base_seed: int | None, num_shards: int) -> list[int | None]:
        """Per-shard seeds spawned from ``base_seed``'s :class:`SeedSequence`.

        One seed per shard *slot* (empty shards included), so a shard's seed
        never depends on which other shards hold data.  ``None`` propagates
        (unseeded stays unseeded).
        """
        if base_seed is None:
            return [None] * num_shards
        children = np.random.SeedSequence(int(base_seed)).spawn(num_shards)
        return [int(child.generate_state(1, dtype=np.uint32)[0]) for child in children]

    # -- fitting ---------------------------------------------------------------------
    def fit(
        self,
        plan: ShardPlan | KeyShardPlan,
        method: str,
        params: Mapping[str, Any] | None = None,
        *,
        quality_sync_rounds: int = 0,
        registry: MethodRegistry | None = None,
    ) -> MergedFit:
        """Fit ``method`` on every shard of ``plan`` and merge the results.

        Parameters
        ----------
        plan:
            The entity-shard plan (empty shards are skipped).  A
            materialised :class:`~repro.parallel.plan.ShardPlan` carries its
            triples; a :class:`~repro.parallel.plan.KeyShardPlan` carries
            only entity keys, and each worker streams its shard's triples
            from the plan's claim store via indexed range reads.
        method:
            Registry key of the solver; it must declare a
            :attr:`~repro.engine.registry.MethodSpec.shard_strategy`.
        params:
            Solver hyperparameters (the per-shard seed is derived from
            ``params["seed"]`` when the method is seeded).
        quality_sync_rounds:
            Quality-synchronisation rounds of the count merge (see
            :mod:`repro.parallel.merge`).
        registry:
            Method registry to resolve against (defaults to the shared one).
        """
        resolved = registry if registry is not None else default_registry()
        spec = resolved.spec(method)
        if not spec.claim_based:
            raise ConfigurationError(
                f"method {spec.key!r} does not consume claim matrices and cannot "
                f"be executed by the sharded executor"
            )
        if spec.shard_strategy is None:
            shardable = sorted(
                s.key for s in resolved.specs() if s.shard_strategy is not None
            )
            raise ConfigurationError(
                f"method {spec.key!r} couples facts across entities and has no "
                f"entity-sharded execution strategy; shardable methods: {shardable}"
            )
        if self.backend == "processes":
            # Process workers resolve methods against the default registry
            # (a registry object cannot cross the handoff); refuse methods
            # it does not know rather than failing inside a worker.
            shared = default_registry()
            if spec.key not in shared or shared.spec(spec.key).factory is not spec.factory:
                raise ConfigurationError(
                    f"method {spec.key!r} is not resolvable from the shared "
                    f"default registry; custom-registry methods shard only on "
                    f"the 'serial' and 'threads' backends"
                )
        params = dict(params or {})
        encoded = {key: _encode_param(value) for key, value in params.items()}
        base_seed = params.get("seed") if spec.accepts("seed") else None
        seeds = self.shard_seeds(
            int(base_seed) if base_seed is not None else None, plan.num_shards
        )
        tracer = obs.get_tracer()
        context = tracer.current_context() if tracer.enabled else None
        tasks: list[ShardTask | RangeShardTask]
        if isinstance(plan, KeyShardPlan):
            tasks = [
                RangeShardTask(
                    index=shard.index,
                    num_shards=plan.num_shards,
                    method=spec.key,
                    params=encoded,
                    seed=seeds[shard.index],
                    strategy=spec.shard_strategy,
                    store_path=plan.store_path,
                    entities=tuple(str(entity) for entity in shard.entities),
                    span_context=context,
                )
                for shard in plan.non_empty()
            ]
        else:
            tasks = [
                ShardTask(
                    index=shard.index,
                    num_shards=plan.num_shards,
                    method=spec.key,
                    params=encoded,
                    seed=seeds[shard.index],
                    strategy=spec.shard_strategy,
                    triples=tuple(triple.as_tuple() for triple in shard.triples),
                    span_context=context,
                )
                for shard in plan.non_empty()
            ]
        if not tasks:
            raise ConfigurationError("cannot execute an empty shard plan (no triples)")
        fits = self._run(tasks, resolved)
        metrics = obs.engine_metrics()
        for fit in fits:
            metrics.shard_fit_seconds.observe(fit.runtime_seconds, backend=self.backend)
            if fit.spans:
                tracer.adopt(fit.spans, context=context)
        with tracer.span(
            "shard.merge",
            strategy=spec.shard_strategy,
            shards=len(fits),
            backend=self.backend,
            quality_sync_rounds=quality_sync_rounds,
        ):
            return merge_shard_fits(
                fits,
                spec.shard_strategy,
                params=params,
                quality_sync_rounds=quality_sync_rounds,
                num_shards=plan.num_shards,
            )

    def _run(
        self, tasks: "list[ShardTask | RangeShardTask]", registry: MethodRegistry
    ) -> list[ShardFit]:
        """Dispatch ``tasks`` on the configured backend."""
        if self.backend == "serial" or len(tasks) == 1:
            return [_fit_task(task, registry=registry) for task in tasks]
        workers = self.max_workers
        if workers is None:
            workers = min(len(tasks), os.cpu_count() or 1)
        workers = min(workers, len(tasks))
        if self.backend == "threads":
            with ThreadPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(lambda task: _fit_task(task, registry=registry), tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_fit_task, tasks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ParallelExecutor(backend={self.backend!r}, max_workers={self.max_workers})"

"""Score-parity reduction of per-shard fits into one global result.

Entity sharding (:mod:`repro.parallel.plan`) produces shard claim matrices
that are exact entity-subsets of the single-shard matrix, so how shard fits
recombine depends only on how the method couples facts *across* entities.
Each registered method declares its coupling as
:attr:`~repro.engine.registry.MethodSpec.shard_strategy`, and this module
implements the matching reducers:

``"local"`` (Voting, LTMinc)
    Per-fact scores depend only on the fact's own claims, which all live in
    one shard.  Concatenating shard scores is **exactly** the single-shard
    result.

``"counts"`` (LTM) / ``"counts_positive"`` (LTMpos)
    The coupling is the per-source confusion counts ``E[n[s, i, j]]``, which
    are *additive over entity shards*.  The reducer sums every shard's count
    contribution, computes one global MAP quality table
    (:func:`~repro.core.quality.quality_from_counts`) and optionally runs
    **quality-sync rounds**: re-score every shard's facts with the
    closed-form posterior (Equation 3) under the global quality, recompute
    the counts, and repeat — so sources spanning shards converge to a single
    quality estimate.  ``counts_positive`` restricts all of it to positive
    claims, preserving LTMpos's positive-only observation model.  Scores are
    statistically equivalent to the single-shard Gibbs fit (pinned by an AUC
    tolerance on the LTM generative benchmark), not bitwise identical:
    collapsed Gibbs is a sampler.

``"trust_sync"`` (TruthFinder)
    The coupling is the global per-source trust vector.  The reducer runs
    TruthFinder's alternating updates *cooperatively*: each round, every
    shard computes its facts' confidences and per-source partial sums under
    the current global trust, and the reduction re-estimates the trust
    vector — the same fixed point as the serial fit, to floating-point
    reduction order.

:func:`merge_artifacts` applies the same count-summing logic to per-shard
:class:`~repro.serving.TruthArtifact` directories, producing one merged
artifact loadable by :class:`~repro.serving.TruthService` unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from repro.core.base import SourceQualityTable
from repro.core.incremental import posterior_truth_probability_arrays
from repro.core.priors import LTMPriors
from repro.core.quality import expected_confusion_counts_arrays, quality_from_counts
from repro.exceptions import ArtifactError, ConfigurationError

__all__ = [
    "ShardFit",
    "MergedFit",
    "merge_shard_fits",
    "merge_artifacts",
    "shard_artifact",
]


@dataclass
class ShardFit:
    """Everything one shard fit hands back to the reducer.

    Built by :func:`repro.parallel.executor.fit_shard`; every field is a
    plain container or numpy array so the payload crosses process
    boundaries without pickling solver or matrix objects.

    Attributes
    ----------
    index, num_shards:
        The shard's slot and the plan width it came from.
    fact_entities, fact_attributes:
        Parallel per-fact identity arrays (position = shard-local fact id).
    scores:
        Per-fact scores of the shard-local fit (``None`` for strategies
        whose scoring happens in the reducer, e.g. ``trust_sync``).
    source_names:
        Shard-local source table (dense id = position).
    claim_fact, claim_source, claim_obs:
        The shard's claim arrays (shard-local fact and source ids), kept so
        the reducer can re-score facts under globally merged state.
    expected_counts:
        The shard's expected confusion counts ``(S_shard, 2, 2)`` for
        count-mergeable methods, else ``None``.
    quality:
        The shard-local quality table, when the method learned one.
    runtime_seconds:
        Wall-clock time of the shard fit.
    spans:
        Finished telemetry span dicts recorded inside the worker (empty when
        tracing is off).  Plain dicts so they cross process boundaries like
        every other field; the executor grafts them into the caller's span
        tree with :meth:`repro.obs.Tracer.adopt`.
    """

    index: int
    num_shards: int
    fact_entities: list
    fact_attributes: list
    scores: np.ndarray | None
    source_names: list[str]
    claim_fact: np.ndarray
    claim_source: np.ndarray
    claim_obs: np.ndarray
    expected_counts: np.ndarray | None = None
    quality: SourceQualityTable | None = None
    runtime_seconds: float = 0.0
    spans: tuple = ()

    @property
    def num_facts(self) -> int:
        """Number of facts in the shard."""
        return len(self.fact_entities)


@dataclass
class MergedFit:
    """The reducer's output: one global fit assembled from shard fits.

    ``fact_entities`` / ``fact_attributes`` / ``scores`` are parallel arrays
    in shard-concatenation order (shard 0's facts first); callers needing a
    specific fact order — e.g. :class:`~repro.engine.TruthEngine`, which
    realigns onto its full claim matrix — index by ``(entity, attribute)``.
    """

    fact_entities: list
    fact_attributes: list
    scores: np.ndarray
    quality: SourceQualityTable | None
    strategy: str
    num_shards: int
    shards: list[ShardFit] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def num_facts(self) -> int:
        """Total number of facts across shards."""
        return int(self.scores.shape[0])

    def fact_scores(self) -> dict[tuple[str, str], float]:
        """Mapping of ``(entity, attribute)`` to merged score."""
        return {
            (str(e), str(a)): float(s)
            for e, a, s in zip(self.fact_entities, self.fact_attributes, self.scores)
        }

    def shard_summaries(self) -> list[dict[str, Any]]:
        """Small JSON-safe per-shard statistics (for result extras / logs)."""
        return [
            {
                "index": fit.index,
                "facts": fit.num_facts,
                "claims": int(fit.claim_fact.shape[0]),
                "sources": len(fit.source_names),
                "runtime_seconds": float(fit.runtime_seconds),
            }
            for fit in self.shards
        ]


# ---------------------------------------------------------------------------
# Global source table
# ---------------------------------------------------------------------------
def _global_sources(shard_fits: Sequence[ShardFit]) -> tuple[list[str], list[np.ndarray]]:
    """Union source table (first-seen in shard order) and per-shard id maps."""
    index: dict[str, int] = {}
    for fit in shard_fits:
        for name in fit.source_names:
            index.setdefault(name, len(index))
    maps = [
        np.array([index[name] for name in fit.source_names], dtype=np.int64)
        for fit in shard_fits
    ]
    return list(index), maps


def _first_wins_union(
    names: list[str],
    tables: Sequence[tuple[SourceQualityTable, np.ndarray]],
) -> SourceQualityTable | None:
    """First-wins union of quality tables onto the ``names`` source axis.

    ``tables`` pairs each quality table with the array mapping its local row
    ids to positions in ``names``.  Used where every table's values for a
    shared source agree by construction (LTMinc aligns one stored table; the
    first table to mention a source fixes its row).
    """
    if not tables:
        return None
    n = len(names)
    sensitivity = np.full(n, np.nan)
    specificity = np.full(n, np.nan)
    precision = np.full(n, np.nan)
    accuracy = np.full(n, np.nan)
    filled = np.zeros(n, dtype=bool)
    for table, row_map in tables:
        for local, global_id in enumerate(row_map):
            if filled[global_id]:
                continue
            filled[global_id] = True
            sensitivity[global_id] = table.sensitivity[local]
            specificity[global_id] = table.specificity[local]
            precision[global_id] = table.precision[local]
            accuracy[global_id] = table.accuracy[local]
    return SourceQualityTable(
        source_names=tuple(names),
        sensitivity=sensitivity,
        specificity=specificity,
        precision=precision,
        accuracy=accuracy,
    )


def _union_quality(
    names: list[str], shard_fits: Sequence[ShardFit], maps: list[np.ndarray]
) -> SourceQualityTable | None:
    """First-wins union of the shard fits' quality tables (``local`` merge)."""
    return _first_wins_union(
        names,
        [
            (fit.quality, src_map)
            for fit, src_map in zip(shard_fits, maps)
            if fit.quality is not None
        ],
    )


# ---------------------------------------------------------------------------
# Strategy reducers
# ---------------------------------------------------------------------------
def _merge_local(
    shard_fits: Sequence[ShardFit], names: list[str], maps: list[np.ndarray]
) -> tuple[np.ndarray, SourceQualityTable | None, dict[str, Any]]:
    scores = np.concatenate([fit.scores for fit in shard_fits])
    return scores, _union_quality(names, shard_fits, maps), {}


def _shard_claim_arrays(
    fit: ShardFit, positive_only: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The shard's ``(claim_fact, claim_source, claim_obs)``, optionally
    restricted to positive claims (the LTMpos observation domain)."""
    if not positive_only:
        return fit.claim_fact, fit.claim_source, fit.claim_obs
    mask = fit.claim_obs == 1
    return fit.claim_fact[mask], fit.claim_source[mask], fit.claim_obs[mask]


def _merge_counts(
    shard_fits: Sequence[ShardFit],
    names: list[str],
    maps: list[np.ndarray],
    priors: LTMPriors,
    quality_sync_rounds: int,
    positive_only: bool = False,
) -> tuple[np.ndarray, SourceQualityTable | None, dict[str, Any]]:
    """The ``counts`` / ``counts_positive`` reducer.

    ``positive_only`` restricts count accumulation and quality-sync
    re-scoring to positive claims — LTMpos never observes negative claims,
    so feeding them into the sync posterior would silently change the
    method's semantics.
    """
    num_sources = len(names)
    total = np.zeros((num_sources, 2, 2), dtype=float)
    for fit, src_map in zip(shard_fits, maps):
        counts = fit.expected_counts
        if counts is None:
            claim_fact, claim_source, claim_obs = _shard_claim_arrays(fit, positive_only)
            total += expected_confusion_counts_arrays(
                claim_fact,
                src_map[claim_source],
                claim_obs,
                num_sources,
                fit.scores,
            )
        else:
            np.add.at(total, src_map, np.asarray(counts, dtype=float))
    quality = quality_from_counts(names, total, priors)

    shard_scores = [np.asarray(fit.scores, dtype=float) for fit in shard_fits]
    truth_prior = (priors.truth.positive, priors.truth.negative)
    for _ in range(quality_sync_rounds):
        total = np.zeros((num_sources, 2, 2), dtype=float)
        for k, (fit, src_map) in enumerate(zip(shard_fits, maps)):
            claim_fact, claim_source, claim_obs = _shard_claim_arrays(fit, positive_only)
            global_src = src_map[claim_source]
            synced = posterior_truth_probability_arrays(
                claim_fact,
                global_src,
                claim_obs,
                fit.num_facts,
                quality.sensitivity,
                quality.specificity,
                truth_prior=truth_prior,
            )
            shard_scores[k] = synced
            total += expected_confusion_counts_arrays(
                claim_fact, global_src, claim_obs, num_sources, synced
            )
        quality = quality_from_counts(names, total, priors)

    scores = np.concatenate(shard_scores)
    return scores, quality, {"quality_sync_rounds": quality_sync_rounds}


def _merge_trust_sync(
    shard_fits: Sequence[ShardFit],
    names: list[str],
    maps: list[np.ndarray],
    params: dict[str, Any],
) -> tuple[np.ndarray, SourceQualityTable | None, dict[str, Any]]:
    """Synchronised TruthFinder: shards score locally, trust reduces globally.

    Reproduces the serial fixed point: a fact's confidence only reads its own
    (shard-local) positive claims, and a source's trust update is a sum over
    its facts' confidences — a sum that distributes over shards.  The only
    cross-shard traffic per round is one trust vector down and one partial
    sum up.
    """
    from repro.baselines.truthfinder import TruthFinder

    solver = TruthFinder(**params)
    num_sources = len(names)

    edges = []  # (edge_fact_local, edge_source_global, fact_degree, num_facts)
    source_degree = np.zeros(num_sources, dtype=float)
    for fit, src_map in zip(shard_fits, maps):
        mask = fit.claim_obs == 1
        edge_fact = fit.claim_fact[mask]
        edge_source = src_map[fit.claim_source[mask]]
        fact_degree = np.bincount(edge_fact, minlength=fit.num_facts).astype(float)
        source_degree += np.bincount(edge_source, minlength=num_sources).astype(float)
        edges.append((edge_fact, edge_source, fact_degree, fit.num_facts))

    trust = np.full(num_sources, solver.initial_trust, dtype=float)
    confidences = [np.zeros(num_facts) for *_, num_facts in edges]
    safe_degree = np.where(source_degree > 0, source_degree, 1.0)
    iterations_run = 0
    for iteration in range(solver.max_iterations):
        iterations_run = iteration + 1
        tau = -np.log(np.clip(1.0 - trust, 1e-12, None))
        sums = np.zeros(num_sources, dtype=float)
        for k, (edge_fact, edge_source, fact_degree, num_facts) in enumerate(edges):
            sigma = np.zeros(num_facts, dtype=float)
            np.add.at(sigma, edge_fact, tau[edge_source])
            confidence = 1.0 / (1.0 + np.exp(-solver.gamma * sigma))
            confidence = np.where(fact_degree > 0, confidence, 0.0)
            confidences[k] = confidence
            np.add.at(sums, edge_source, confidence[edge_fact])
        new_trust = np.clip(sums / safe_degree, 1e-6, 1.0 - 1e-6)
        if solver._converged(trust, new_trust):
            trust = new_trust
            break
        trust = new_trust

    scores = np.clip(np.concatenate(confidences), 0.0, 1.0)
    extras = {
        "trustworthiness": trust,
        "trust_source_names": list(names),
        "iterations": iterations_run,
    }
    return scores, None, extras


def merge_shard_fits(
    shard_fits: Sequence[ShardFit],
    strategy: str,
    *,
    params: dict[str, Any] | None = None,
    quality_sync_rounds: int = 0,
    num_shards: int | None = None,
) -> MergedFit:
    """Reduce ``shard_fits`` into one :class:`MergedFit` under ``strategy``.

    Parameters
    ----------
    shard_fits:
        Per-shard fit payloads (any order; reduced in shard-index order so
        the result is independent of completion order).
    strategy:
        The method's :attr:`~repro.engine.registry.MethodSpec.shard_strategy`
        (``"local"``, ``"counts"`` or ``"trust_sync"``).
    params:
        The solver's (decoded) hyperparameters — supplies the priors of the
        count merge and TruthFinder's trust-iteration settings.
    quality_sync_rounds:
        Quality-synchronisation rounds for the ``counts`` strategy (see
        module docstring); ignored by the other strategies.
    num_shards:
        Planned shard count (defaults to what the fits report).
    """
    if not shard_fits:
        raise ConfigurationError("cannot merge zero shard fits (empty corpus?)")
    fits = sorted(shard_fits, key=lambda fit: fit.index)
    params = dict(params or {})
    names, maps = _global_sources(fits)

    if strategy == "local":
        scores, quality, extras = _merge_local(fits, names, maps)
    elif strategy in ("counts", "counts_positive"):
        priors = params.get("priors") or LTMPriors()
        scores, quality, extras = _merge_counts(
            fits,
            names,
            maps,
            priors,
            quality_sync_rounds,
            positive_only=strategy == "counts_positive",
        )
    elif strategy == "trust_sync":
        sync_params = {k: v for k, v in params.items() if k != "seed"}
        scores, quality, extras = _merge_trust_sync(fits, names, maps, sync_params)
    else:
        raise ConfigurationError(
            f"unknown shard merge strategy {strategy!r}; expected 'local', "
            f"'counts', 'counts_positive' or 'trust_sync'"
        )

    # Write each shard's slice of the merged scores back onto its fit, so
    # per-shard artifacts always carry the *final* merged contribution (the
    # synced scores after quality-sync rounds; the reducer-computed
    # confidences for trust-sync shards).
    offset = 0
    for fit in fits:
        fit.scores = scores[offset : offset + fit.num_facts].copy()
        offset += fit.num_facts
    if strategy in ("counts", "counts_positive"):
        # Refresh the per-shard counts under the final scores (shard-local
        # source axis), so summing shard-artifact counts reproduces exactly
        # the merged quality table.
        for fit in fits:
            claim_fact, claim_source, claim_obs = _shard_claim_arrays(
                fit, strategy == "counts_positive"
            )
            fit.expected_counts = expected_confusion_counts_arrays(
                claim_fact,
                claim_source,
                claim_obs,
                len(fit.source_names),
                fit.scores,
            )

    fact_entities: list = []
    fact_attributes: list = []
    for fit in fits:
        fact_entities.extend(fit.fact_entities)
        fact_attributes.extend(fit.fact_attributes)
    return MergedFit(
        fact_entities=fact_entities,
        fact_attributes=fact_attributes,
        scores=scores,
        quality=quality,
        strategy=strategy,
        num_shards=num_shards if num_shards is not None else max(f.num_shards for f in fits),
        shards=list(fits),
        extras=extras,
    )


# ---------------------------------------------------------------------------
# Artifact-level merging (the serving seam)
# ---------------------------------------------------------------------------
def shard_artifact(
    fit: ShardFit, config, *, name: str | None = None
) -> "Any":
    """Snapshot one shard fit as a :class:`~repro.serving.TruthArtifact`.

    The artifact carries the shard's expected confusion counts in its
    ``extras["shard"]`` block, which is what lets :func:`merge_artifacts`
    recombine shard artifacts into a single count-consistent artifact.
    """
    from repro.serving.artifact import TruthArtifact

    if fit.scores is None:
        raise ConfigurationError(
            "shard fit carries no scores (trust-sync shards are scored by the "
            "reducer); merge first, then export"
        )
    shard_info: dict[str, Any] = {"index": fit.index, "num_shards": fit.num_shards}
    if fit.expected_counts is not None:
        shard_info["expected_counts"] = np.asarray(fit.expected_counts, dtype=float)
    return TruthArtifact(
        config=config,
        fact_entity=np.array([str(e) for e in fit.fact_entities], dtype=str),
        fact_attribute=np.array([str(a) for a in fit.fact_attributes], dtype=str),
        fact_score=np.asarray(fit.scores, dtype=float),
        quality=fit.quality,
        name=name if name is not None else f"{config.method}-shard-{fit.index:02d}",
        extras={"shard": shard_info},
    )


def merge_artifacts(
    artifacts: Sequence[Any],
    *,
    name: str | None = None,
    priors: LTMPriors | None = None,
) -> "Any":
    """Combine per-shard artifacts into one servable artifact.

    Facts are concatenated (shards must be disjoint — overlapping
    ``(entity, attribute)`` pairs raise :class:`~repro.exceptions.ArtifactError`).
    Source quality merges by summing the shards' recorded expected confusion
    counts (``extras["shard"]["expected_counts"]``, written by
    :func:`shard_artifact`) into one MAP table; artifacts without counts fall
    back to a first-wins union of their quality rows.  The merged artifact
    loads into :class:`~repro.serving.TruthService` unchanged.

    Parameters
    ----------
    artifacts:
        :class:`~repro.serving.TruthArtifact` objects or artifact directory
        paths, in shard order.
    name:
        Name of the merged artifact (default: ``<method>-merged``).
    priors:
        Priors of the count merge (default: the priors recorded in the
        first artifact's config params, else library defaults).
    """
    from repro.serving.artifact import TruthArtifact

    if not artifacts:
        raise ArtifactError("cannot merge zero artifacts")
    loaded = [
        a if isinstance(a, TruthArtifact) else TruthArtifact.load(a) for a in artifacts
    ]

    seen: set[tuple[str, str]] = set()
    for artifact in loaded:
        for pair in zip(artifact.fact_entity.tolist(), artifact.fact_attribute.tolist()):
            key = (str(pair[0]), str(pair[1]))
            if key in seen:
                raise ArtifactError(
                    f"artifacts overlap on fact {key!r}; shard artifacts must "
                    f"cover disjoint entity sets"
                )
            seen.add(key)

    fact_entity = np.concatenate([a.fact_entity for a in loaded])
    fact_attribute = np.concatenate([a.fact_attribute for a in loaded])
    fact_score = np.concatenate([a.fact_score for a in loaded])

    # Quality: sum recorded shard counts when every quality-carrying shard
    # has them, else first-wins union of the quality rows.
    with_quality = [a for a in loaded if a.quality is not None]
    quality: SourceQualityTable | None = None
    if with_quality:
        index: dict[str, int] = {}
        for artifact in with_quality:
            for source in artifact.quality.source_names:
                index.setdefault(source, len(index))
        names = list(index)
        counts = [
            a.extras.get("shard", {}).get("expected_counts") for a in with_quality
        ]
        if all(c is not None for c in counts):
            total = np.zeros((len(names), 2, 2), dtype=float)
            for artifact, shard_counts in zip(with_quality, counts):
                rows = np.array(
                    [index[s] for s in artifact.quality.source_names], dtype=np.int64
                )
                np.add.at(total, rows, np.asarray(shard_counts, dtype=float))
            if priors is None:
                recorded = loaded[0].config.params.get("priors")
                priors = recorded if isinstance(recorded, LTMPriors) else LTMPriors()
            quality = quality_from_counts(names, total, priors)
        else:
            quality = _first_wins_union(
                names,
                [
                    (
                        artifact.quality,
                        np.array(
                            [index[s] for s in artifact.quality.source_names],
                            dtype=np.int64,
                        ),
                    )
                    for artifact in with_quality
                ],
            )

    first = loaded[0]
    return TruthArtifact(
        config=first.config,
        fact_entity=fact_entity,
        fact_attribute=fact_attribute,
        fact_score=fact_score,
        quality=quality,
        name=name if name is not None else f"{first.config.method}-merged",
        extras={
            "merged_from": [a.name for a in loaded],
            "num_shard_artifacts": len(loaded),
        },
    )

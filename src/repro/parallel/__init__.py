"""Entity-sharded parallel execution (the library's scale-out seam).

The fourth pillar next to :mod:`repro.engine` (solve), :mod:`repro.io`
(ingest) and :mod:`repro.serving` (serve): split a corpus into entity
shards, fit every shard on a pluggable backend, and merge the results back
into one engine- and serving-compatible fit.

* :class:`~repro.parallel.plan.ShardPlanner` — stable hash-partitioning of
  any :class:`~repro.io.DataSource` by entity
  (:func:`repro.io.entity_partition_key`), with optional group routing so
  entity clusters co-locate; :meth:`~repro.parallel.plan.ShardPlanner.plan_keys`
  partitions a store-backed source (:mod:`repro.store.claims`) by streaming
  entity keys alone — workers pull their triples through indexed range
  reads, so corpora never materialise in the planner;
* :class:`~repro.parallel.executor.ParallelExecutor` — ``serial`` /
  ``threads`` / ``processes`` backends sharing one worker, deterministic
  for a fixed seed across backends;
* :mod:`repro.parallel.merge` — score-parity reducers per method family
  (exact for Voting / LTMinc, synchronised-trust exact for TruthFinder,
  count-summed with quality-sync rounds for the LTM family), plus
  :func:`~repro.parallel.merge.merge_artifacts` to combine per-shard
  serving artifacts.

Most users never touch this package directly: set
``EngineConfig(execution=ExecutionConfig(num_shards=4, backend="processes"))``
(or ``repro-truth integrate --shards 4 --backend processes``) and
:class:`~repro.engine.TruthEngine` routes fits through it automatically.
"""

from repro.parallel.executor import (
    ParallelExecutor,
    RangeShardTask,
    ShardTask,
    fit_shard,
    fit_shard_range,
)
from repro.parallel.merge import (
    MergedFit,
    ShardFit,
    merge_artifacts,
    merge_shard_fits,
    shard_artifact,
)
from repro.parallel.plan import KeyShard, KeyShardPlan, Shard, ShardPlan, ShardPlanner

__all__ = [
    "Shard",
    "ShardPlan",
    "KeyShard",
    "KeyShardPlan",
    "ShardPlanner",
    "ShardTask",
    "RangeShardTask",
    "ShardFit",
    "MergedFit",
    "ParallelExecutor",
    "fit_shard",
    "fit_shard_range",
    "merge_shard_fits",
    "merge_artifacts",
    "shard_artifact",
]

"""Source behaviour profiles used by the realistic dataset simulators.

A :class:`SourceProfile` describes how one simulated data source reports the
attribute values of an entity it covers: with what probability it includes
each true value (its sensitivity) and with what probability it adds spurious
values (its false-positive tendency).  The book and movie simulators assemble
populations of profiles that mirror the qualitative behaviour the paper
describes — e.g. book sellers that only list first authors, a minority of
sellers that introduce wrong authors, and movie feeds whose two quality
dimensions do not correlate (Table 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["SourceBehaviour", "SourceProfile"]


class SourceBehaviour(str, Enum):
    """Qualitative behaviour classes observed in the paper's datasets."""

    #: Reports every true value it knows and adds nothing (e.g. Netflix in Example 1).
    COMPLETE = "complete"
    #: Reports only the first (primary) value of a multi-valued attribute.
    FIRST_VALUE_ONLY = "first_value_only"
    #: Reports a random subset of the true values.
    PARTIAL = "partial"
    #: Reports true values but also injects erroneous ones (e.g. BadSource.com).
    NOISY = "noisy"
    #: Mostly wrong: an adversarial or broken feed (Section 7 discussion).
    ADVERSARIAL = "adversarial"


@dataclass(frozen=True)
class SourceProfile:
    """Generative behaviour of one simulated source.

    Attributes
    ----------
    name:
        Source name as it will appear in the raw database.
    behaviour:
        Qualitative behaviour class (documentation / analysis only; the
        numeric fields drive generation).
    sensitivity:
        Probability of reporting each true value of a covered entity.
    false_value_rate:
        Expected number of spurious values injected per covered entity
        (drawn as Poisson; small values mean high specificity).
    first_value_bias:
        Probability of reporting the entity's first/primary true value, used
        to model "first author only" sellers whose sensitivity differs
        between the primary and the remaining values.
    coverage:
        Probability that this source covers any given entity.
    """

    name: str
    behaviour: SourceBehaviour
    sensitivity: float
    false_value_rate: float
    first_value_bias: float
    coverage: float

    def __post_init__(self) -> None:
        for field_name in ("sensitivity", "first_value_bias", "coverage"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{field_name} must be in [0, 1], got {value}")
        if self.false_value_rate < 0:
            raise ConfigurationError("false_value_rate must be non-negative")

    # -- generation ------------------------------------------------------------------
    def reported_values(
        self,
        true_values: Sequence[str],
        false_value_pool: Sequence[str],
        rng: np.random.Generator,
    ) -> list[str]:
        """The attribute values this source reports for one covered entity.

        Parameters
        ----------
        true_values:
            The entity's true values, primary value first.
        false_value_pool:
            Candidate spurious values (e.g. directors of other movies).
        rng:
            Random generator driving the simulation.
        """
        reported: list[str] = []
        for index, value in enumerate(true_values):
            keep_probability = self.first_value_bias if index == 0 else self.sensitivity
            if rng.random() < keep_probability:
                reported.append(value)
        num_false = int(rng.poisson(self.false_value_rate))
        if num_false > 0 and len(false_value_pool) > 0:
            picks = rng.choice(len(false_value_pool), size=min(num_false, len(false_value_pool)), replace=False)
            for pick in np.atleast_1d(picks):
                candidate = false_value_pool[int(pick)]
                if candidate not in true_values and candidate not in reported:
                    reported.append(candidate)
        return reported

    def covers(self, rng: np.random.Generator) -> bool:
        """Whether this source covers a given entity (Bernoulli draw)."""
        return bool(rng.random() < self.coverage)

    # -- canned profile families --------------------------------------------------------
    @classmethod
    def complete(cls, name: str, coverage: float = 0.5) -> "SourceProfile":
        """A high-sensitivity, high-specificity source."""
        return cls(
            name=name,
            behaviour=SourceBehaviour.COMPLETE,
            sensitivity=0.95,
            false_value_rate=0.01,
            first_value_bias=0.98,
            coverage=coverage,
        )

    @classmethod
    def first_value_only(cls, name: str, coverage: float = 0.5) -> "SourceProfile":
        """A source that reliably reports only the primary value (low sensitivity)."""
        return cls(
            name=name,
            behaviour=SourceBehaviour.FIRST_VALUE_ONLY,
            sensitivity=0.08,
            false_value_rate=0.01,
            first_value_bias=0.97,
            coverage=coverage,
        )

    @classmethod
    def partial(cls, name: str, coverage: float = 0.5) -> "SourceProfile":
        """A source reporting a random subset of true values."""
        return cls(
            name=name,
            behaviour=SourceBehaviour.PARTIAL,
            sensitivity=0.6,
            false_value_rate=0.02,
            first_value_bias=0.9,
            coverage=coverage,
        )

    @classmethod
    def noisy(cls, name: str, coverage: float = 0.5) -> "SourceProfile":
        """A source that injects spurious values (low specificity)."""
        return cls(
            name=name,
            behaviour=SourceBehaviour.NOISY,
            sensitivity=0.75,
            false_value_rate=0.5,
            first_value_bias=0.92,
            coverage=coverage,
        )

    @classmethod
    def adversarial(cls, name: str, coverage: float = 0.5) -> "SourceProfile":
        """A mostly-wrong source (Section 7's adversarial discussion)."""
        return cls(
            name=name,
            behaviour=SourceBehaviour.ADVERSARIAL,
            sensitivity=0.2,
            false_value_rate=2.0,
            first_value_bias=0.3,
            coverage=coverage,
        )

"""Dataset generators.

The paper evaluates on two proprietary crawls (abebooks.com book-author data
and a Bing movie-director feed) plus a synthetic dataset drawn from LTM's own
generative process.  The crawls are not publicly available, so this package
provides:

* :class:`~repro.synth.ltm_generative.LTMGenerativeDataset` — the Section
  6.1.1 synthetic generator, parameterised by expected source sensitivity and
  specificity (used for the quality-degradation study of Figure 4);
* :class:`~repro.synth.books.BookAuthorSimulator` — a simulated book-seller
  crawl with the same scale and error structure (first-author-only sellers,
  a minority of noisy sellers) as the paper's book dataset;
* :class:`~repro.synth.movies.MovieDirectorSimulator` — a simulated movie
  feed with the 12 sources of paper Table 8, their reported quality levels,
  and the paper's "keep only conflicting records" filter.

Every generator takes an explicit seed and returns a fully-labelled
:class:`~repro.data.dataset.TruthDataset`, so experiments are reproducible
and can be graded on any subset of entities.
"""

from repro.synth.names import NameGenerator
from repro.synth.profiles import SourceProfile, SourceBehaviour
from repro.synth.ltm_generative import LTMGenerativeConfig, generate_ltm_dataset
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator, PAPER_MOVIE_SOURCES

__all__ = [
    "NameGenerator",
    "SourceProfile",
    "SourceBehaviour",
    "LTMGenerativeConfig",
    "generate_ltm_dataset",
    "BookAuthorConfig",
    "BookAuthorSimulator",
    "MovieDirectorConfig",
    "MovieDirectorSimulator",
    "PAPER_MOVIE_SOURCES",
]

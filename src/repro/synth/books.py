"""Simulated book-seller crawl (substitute for the paper's abebooks.com data).

The paper's book-author dataset has 1263 books, 2420 book-author facts,
48 153 claims and 879 seller sources, with 100 books hand-labelled.  The
crawl itself is not public, so this simulator reproduces its *error
structure*, which is what the evaluation depends on:

* books have one to several true authors (multi-valued attribute);
* a large share of sellers list only the first author (false negatives,
  high specificity) — the reason Voting's recall suffers in Table 7;
* a minority of sellers introduce wrong author names (false positives);
* a small set of sellers is essentially complete and clean.

The simulator emits raw ``(book, author, seller)`` triples, runs them through
the standard claim builder (so negative claims are generated exactly as in
Definition 3) and labels the facts of a random sample of books — every true
author pair is labelled ``True`` and every claimed-but-wrong pair ``False``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.claim_builder import build_dataset
from repro.data.dataset import TruthDataset
from repro.exceptions import ConfigurationError
from repro.synth.names import NameGenerator
from repro.synth.profiles import SourceProfile
from repro.types import Triple

__all__ = ["BookAuthorConfig", "BookAuthorSimulator"]


@dataclass(frozen=True)
class BookAuthorConfig:
    """Scale and behaviour parameters of the simulated book-seller crawl.

    The defaults are scaled down (300 books / 120 sellers) so that tests and
    benchmarks run in seconds; :meth:`paper_scale` restores the paper's
    dataset size.

    Attributes
    ----------
    num_books:
        Number of book entities.
    num_sellers:
        Number of seller sources.
    max_authors:
        Maximum number of true authors per book (sampled 1..max, skewed to 1-2).
    labelled_books:
        Number of books whose facts are labelled for evaluation.
    sellers_per_book:
        Average number of sellers covering each book.
    first_author_only_fraction, complete_fraction, noisy_fraction:
        Mix of seller behaviour profiles; the remainder are "partial" sellers.
    seed:
        Seed of the simulation stream.
    """

    num_books: int = 300
    num_sellers: int = 120
    max_authors: int = 4
    labelled_books: int = 100
    sellers_per_book: float = 12.0
    first_author_only_fraction: float = 0.45
    complete_fraction: float = 0.25
    noisy_fraction: float = 0.12
    seed: int | None = 17

    def __post_init__(self) -> None:
        if self.num_books <= 0 or self.num_sellers <= 0:
            raise ConfigurationError("num_books and num_sellers must be positive")
        if self.max_authors <= 0:
            raise ConfigurationError("max_authors must be positive")
        if self.labelled_books <= 0 or self.labelled_books > self.num_books:
            raise ConfigurationError("labelled_books must be in [1, num_books]")
        fractions = (
            self.first_author_only_fraction + self.complete_fraction + self.noisy_fraction
        )
        if fractions > 1.0 + 1e-9:
            raise ConfigurationError("behaviour fractions must not exceed 1.0")
        if self.sellers_per_book <= 0:
            raise ConfigurationError("sellers_per_book must be positive")

    @classmethod
    def paper_scale(cls, seed: int | None = 17) -> "BookAuthorConfig":
        """The paper's dataset scale: 1263 books and 879 seller sources."""
        return cls(num_books=1263, num_sellers=879, labelled_books=100, seed=seed)

    @classmethod
    def small(cls, seed: int | None = 17) -> "BookAuthorConfig":
        """A small configuration for unit tests."""
        return cls(num_books=60, num_sellers=25, labelled_books=30, sellers_per_book=8.0, seed=seed)


@dataclass
class BookAuthorSimulator:
    """Generates a simulated book-author integration dataset.

    Examples
    --------
    >>> dataset = BookAuthorSimulator(BookAuthorConfig.small(seed=1)).generate()
    >>> dataset.claims.num_facts > 0
    True
    """

    config: BookAuthorConfig = field(default_factory=BookAuthorConfig)

    def generate(self) -> TruthDataset:
        """Run the simulation and return a labelled :class:`TruthDataset`."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        names = NameGenerator(rng)

        books = names.work_titles(config.num_books)
        author_pool = names.person_names(max(config.num_books // 2, 50))

        true_authors = self._assign_true_authors(books, author_pool, rng)
        profiles = self._seller_profiles(rng)

        triples, truth = self._crawl(books, true_authors, author_pool, profiles, rng)
        labelled = list(rng.choice(books, size=config.labelled_books, replace=False))
        return build_dataset(
            triples,
            truth=truth,
            name="book-authors-simulated",
            labelled_entities=labelled,
        )

    # -- simulation pieces --------------------------------------------------------------
    def _assign_true_authors(
        self,
        books: list[str],
        author_pool: list[str],
        rng: np.random.Generator,
    ) -> dict[str, list[str]]:
        """Choose each book's true author list (primary author first)."""
        config = self.config
        true_authors: dict[str, list[str]] = {}
        # Skewed distribution: most books have 1-2 authors, few have many.
        author_count_weights = np.array(
            [0.45, 0.3, 0.15, 0.1][: config.max_authors], dtype=float
        )
        author_count_weights = author_count_weights / author_count_weights.sum()
        for book in books:
            count = int(rng.choice(np.arange(1, len(author_count_weights) + 1), p=author_count_weights))
            picks = rng.choice(len(author_pool), size=count, replace=False)
            true_authors[book] = [author_pool[int(i)] for i in picks]
        return true_authors

    def _seller_profiles(self, rng: np.random.Generator) -> list[SourceProfile]:
        """Build the seller population from the configured behaviour mix."""
        config = self.config
        profiles: list[SourceProfile] = []
        coverage = min(1.0, config.sellers_per_book / config.num_sellers)
        for index in range(config.num_sellers):
            name = f"seller_{index:04d}"
            draw = rng.random()
            if draw < config.first_author_only_fraction:
                profile = SourceProfile.first_value_only(name, coverage=coverage)
            elif draw < config.first_author_only_fraction + config.complete_fraction:
                profile = SourceProfile.complete(name, coverage=coverage)
            elif draw < (
                config.first_author_only_fraction
                + config.complete_fraction
                + config.noisy_fraction
            ):
                profile = SourceProfile.noisy(name, coverage=coverage)
            else:
                profile = SourceProfile.partial(name, coverage=coverage)
            profiles.append(profile)
        return profiles

    def _crawl(
        self,
        books: list[str],
        true_authors: dict[str, list[str]],
        author_pool: list[str],
        profiles: list[SourceProfile],
        rng: np.random.Generator,
    ) -> tuple[list[Triple], dict[tuple[str, str], bool]]:
        """Simulate every seller's listing and collect triples plus ground truth."""
        triples: list[Triple] = []
        truth: dict[tuple[str, str], bool] = {}
        for book in books:
            authors = true_authors[book]
            for author in authors:
                truth[(book, author)] = True
            covering = [p for p in profiles if p.covers(rng)]
            if not covering:
                covering = [profiles[int(rng.integers(0, len(profiles)))]]
            for profile in covering:
                reported = profile.reported_values(authors, author_pool, rng)
                if not reported:
                    # A seller that covers the book always lists at least the
                    # primary author (an empty listing would not appear in a crawl).
                    reported = [authors[0]]
                for author in reported:
                    triples.append(Triple(book, author, profile.name))
                    if (book, author) not in truth:
                        truth[(book, author)] = author in authors
        return triples, truth

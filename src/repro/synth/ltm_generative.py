"""Synthetic data drawn from LTM's own generative process (paper Section 6.1.1).

The paper stress-tests LTM by generating data exactly as the model assumes:
per-source false-positive rates and sensitivities are drawn from Beta priors,
per-fact truths from a Bernoulli(theta) with theta drawn from a Beta prior,
and every source makes one claim per fact whose observation follows the
source's quality parameter for the fact's truth value.  The paper's Figure 4
sweeps the expected sensitivity (resp. specificity) from 0.1 to 0.9 while
holding the other at 0.9 and reports LTM's accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.records import Fact
from repro.exceptions import ConfigurationError

__all__ = ["LTMGenerativeConfig", "generate_ltm_dataset"]


@dataclass(frozen=True)
class LTMGenerativeConfig:
    """Parameters of the generative synthetic dataset.

    Defaults follow the paper: 10 000 facts, 20 sources (hence 200 000
    claims), specificity prior ``alpha0 = (10, 90)`` (expected specificity
    0.9), sensitivity prior ``alpha1 = (90, 10)`` (expected sensitivity 0.9)
    and truth prior ``beta = (10, 10)``.

    Attributes
    ----------
    num_facts, num_sources:
        Dataset size; every source claims every fact.
    alpha0:
        ``(false_positive_count, true_negative_count)`` Beta parameters of
        each source's false-positive rate.
    alpha1:
        ``(true_positive_count, false_negative_count)`` Beta parameters of
        each source's sensitivity.
    beta:
        ``(true_count, false_count)`` Beta parameters of the per-fact prior
        truth probability.
    facts_per_entity:
        Number of facts grouped under each synthetic entity (affects only
        entity bookkeeping, not the claim structure).
    seed:
        Seed of the generation stream.
    """

    num_facts: int = 10_000
    num_sources: int = 20
    alpha0: tuple[float, float] = (10.0, 90.0)
    alpha1: tuple[float, float] = (90.0, 10.0)
    beta: tuple[float, float] = (10.0, 10.0)
    facts_per_entity: int = 2
    seed: int | None = 42

    def __post_init__(self) -> None:
        if self.num_facts <= 0 or self.num_sources <= 0:
            raise ConfigurationError("num_facts and num_sources must be positive")
        if self.facts_per_entity <= 0:
            raise ConfigurationError("facts_per_entity must be positive")
        for name in ("alpha0", "alpha1", "beta"):
            pair = getattr(self, name)
            if len(pair) != 2 or pair[0] <= 0 or pair[1] <= 0:
                raise ConfigurationError(f"{name} must be a pair of positive pseudo-counts")

    @classmethod
    def with_expected_quality(
        cls,
        expected_sensitivity: float,
        expected_specificity: float,
        strength: float = 100.0,
        **kwargs,
    ) -> "LTMGenerativeConfig":
        """Build a config whose priors have the requested expected quality.

        Used by the Figure 4 sweep: e.g. expected sensitivity 0.3 with
        strength 100 gives ``alpha1 = (30, 70)``.
        """
        if not 0.0 < expected_sensitivity < 1.0 or not 0.0 < expected_specificity < 1.0:
            raise ConfigurationError("expected quality values must lie strictly inside (0, 1)")
        alpha1 = (expected_sensitivity * strength, (1 - expected_sensitivity) * strength)
        alpha0 = ((1 - expected_specificity) * strength, expected_specificity * strength)
        return cls(alpha0=alpha0, alpha1=alpha1, **kwargs)


def generate_ltm_dataset(config: LTMGenerativeConfig | None = None) -> TruthDataset:
    """Generate a fully-labelled synthetic dataset from the LTM generative process.

    Returns a :class:`~repro.data.dataset.TruthDataset` whose ``labels`` cover
    every fact (the sampled ground truth) and whose ``extras`` are recorded in
    the dataset name.  The true per-source quality parameters are attached to
    the claim matrix facts' metadata indirectly via the returned dataset name;
    callers needing them should regenerate with the same seed or use
    :func:`generate_ltm_dataset_with_parameters`.
    """
    config = config or LTMGenerativeConfig()
    dataset, _ = generate_ltm_dataset_with_parameters(config)
    return dataset


def generate_ltm_dataset_with_parameters(
    config: LTMGenerativeConfig | None = None,
) -> tuple[TruthDataset, dict[str, np.ndarray]]:
    """As :func:`generate_ltm_dataset` but also return the sampled parameters.

    The second element contains ``"sensitivity"``, ``"false_positive_rate"``,
    ``"theta"`` and ``"truth"`` arrays, which tests use to check that LTM
    recovers the generating quality.
    """
    config = config or LTMGenerativeConfig()
    rng = np.random.default_rng(config.seed)

    # Per-source quality parameters.
    false_positive_rate = rng.beta(config.alpha0[0], config.alpha0[1], size=config.num_sources)
    sensitivity = rng.beta(config.alpha1[0], config.alpha1[1], size=config.num_sources)

    # Per-fact prior probabilities and truth labels.
    theta = rng.beta(config.beta[0], config.beta[1], size=config.num_facts)
    truth = (rng.random(config.num_facts) < theta).astype(np.int64)

    # Every source makes one claim per fact.
    fact_ids = np.repeat(np.arange(config.num_facts, dtype=np.int64), config.num_sources)
    source_ids = np.tile(np.arange(config.num_sources, dtype=np.int64), config.num_facts)
    claim_truth = truth[fact_ids]
    probability_true = np.where(
        claim_truth == 1, sensitivity[source_ids], false_positive_rate[source_ids]
    )
    observations = (rng.random(fact_ids.shape[0]) < probability_true).astype(np.int8)

    facts = [
        Fact(
            fact_id=i,
            entity=f"entity_{i // config.facts_per_entity:05d}",
            attribute=f"value_{i:06d}",
        )
        for i in range(config.num_facts)
    ]
    source_names = [f"synthetic_source_{s:03d}" for s in range(config.num_sources)]
    matrix = ClaimMatrix(
        facts=facts,
        source_names=source_names,
        claim_fact=fact_ids,
        claim_source=source_ids,
        claim_obs=observations,
    )
    labels = {i: bool(truth[i]) for i in range(config.num_facts)}
    dataset = TruthDataset(
        name=(
            f"ltm-synthetic(facts={config.num_facts}, sources={config.num_sources}, "
            f"alpha0={config.alpha0}, alpha1={config.alpha1})"
        ),
        claims=matrix,
        labels=labels,
    )
    parameters = {
        "sensitivity": sensitivity,
        "false_positive_rate": false_positive_rate,
        "theta": theta,
        "truth": truth,
    }
    return dataset, parameters

"""Deterministic generation of plausible entity and person names.

The simulators need human-readable book titles, author names, movie titles
and director names.  Names are assembled from fixed word lists with an
explicit random generator so that a seeded simulation always produces the
same dataset.
"""

from __future__ import annotations

import numpy as np

__all__ = ["NameGenerator"]

_FIRST_NAMES = (
    "James", "Mary", "Robert", "Patricia", "John", "Jennifer", "Michael", "Linda",
    "David", "Elizabeth", "William", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Lisa", "Daniel", "Nancy",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
    "Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
    "Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary", "Amy",
)

_LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
    "White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
    "Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
    "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales", "Murphy",
)

_TITLE_ADJECTIVES = (
    "Silent", "Hidden", "Lost", "Broken", "Golden", "Crimson", "Distant", "Eternal",
    "Forgotten", "Burning", "Frozen", "Sacred", "Savage", "Shattered", "Twilight",
    "Midnight", "Scarlet", "Hollow", "Ancient", "Winter", "Summer", "Electric",
    "Quiet", "Restless", "Wandering", "Fallen", "Rising", "Final", "First", "Last",
)

_TITLE_NOUNS = (
    "Garden", "River", "Empire", "Shadow", "Harbor", "Mountain", "Letter", "Promise",
    "Kingdom", "Journey", "Secret", "Voyage", "Horizon", "Symphony", "Island",
    "Lantern", "Mirror", "Orchard", "Castle", "Crossing", "Station", "Archive",
    "Compass", "Harvest", "Labyrinth", "Meridian", "Covenant", "Paradox", "Cipher",
    "Chronicle",
)


class NameGenerator:
    """Seeded generator of unique person names and work titles.

    Parameters
    ----------
    rng:
        A :class:`numpy.random.Generator`; pass the simulation's generator so
        that names are part of the reproducible stream.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng
        self._used_people: set[str] = set()
        self._used_titles: set[str] = set()

    def person_name(self) -> str:
        """A unique "First Last" (suffixed with a number once combinations run out)."""
        for _ in range(50):
            name = (
                f"{self._rng.choice(_FIRST_NAMES)} {self._rng.choice(_LAST_NAMES)}"
            )
            if name not in self._used_people:
                self._used_people.add(name)
                return name
        serial = len(self._used_people) + 1
        name = (
            f"{self._rng.choice(_FIRST_NAMES)} {self._rng.choice(_LAST_NAMES)} {serial}"
        )
        self._used_people.add(name)
        return name

    def person_names(self, count: int) -> list[str]:
        """A list of ``count`` unique person names."""
        return [self.person_name() for _ in range(count)]

    def work_title(self, prefix: str = "The") -> str:
        """A unique work title like "The Silent Harbor"."""
        for _ in range(50):
            title = (
                f"{prefix} {self._rng.choice(_TITLE_ADJECTIVES)} {self._rng.choice(_TITLE_NOUNS)}"
            )
            if title not in self._used_titles:
                self._used_titles.add(title)
                return title
        serial = len(self._used_titles) + 1
        title = (
            f"{prefix} {self._rng.choice(_TITLE_ADJECTIVES)} {self._rng.choice(_TITLE_NOUNS)} {serial}"
        )
        self._used_titles.add(title)
        return title

    def work_titles(self, count: int, prefix: str = "The") -> list[str]:
        """A list of ``count`` unique work titles."""
        return [self.work_title(prefix=prefix) for _ in range(count)]

    def misspell(self, name: str) -> str:
        """A corrupted variant of ``name`` (simulates a typo'd or wrong value)."""
        if not name:
            return "Unknown"
        characters = list(name)
        position = int(self._rng.integers(0, len(characters)))
        alphabet = "abcdefghijklmnopqrstuvwxyz"
        characters[position] = self._rng.choice(list(alphabet))
        return "".join(characters)

"""Simulated movie-director feed (substitute for the paper's Bing movie data).

The paper's movie-director dataset comes from the Bing movies vertical:
15 073 movies, 33 526 movie-director facts, 108 873 claims from the 12 sources
listed in Table 8, with 100 movies hand-labelled; the authors additionally
kept only the *conflicting* records (movies with more than one asserted
director and present in more than one source).

This simulator reproduces that setting: the 12 sources carry the names of
Table 8 and their generative sensitivity/specificity are seeded from the
values the paper reports, so the qualitative quality ordering (IMDB most
complete, Fandango most conservative, AMG least specific) is recoverable by
LTM.  The same "conflicting records only" filter is applied before the claim
matrix is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.claim_builder import build_dataset
from repro.data.dataset import TruthDataset
from repro.data.raw import RawDatabase
from repro.exceptions import ConfigurationError
from repro.synth.names import NameGenerator
from repro.types import Triple

__all__ = ["PAPER_MOVIE_SOURCES", "MovieDirectorConfig", "MovieDirectorSimulator"]

#: The 12 sources of paper Table 8 with their reported (sensitivity, specificity).
#: These drive the simulator's per-source error rates so that the reproduced
#: Table 8 preserves the paper's ordering.
PAPER_MOVIE_SOURCES: dict[str, tuple[float, float]] = {
    "imdb": (0.91, 0.90),
    "netflix": (0.89, 0.93),
    "movietickets": (0.86, 0.98),
    "commonsense": (0.81, 0.98),
    "cinemasource": (0.79, 0.99),
    "amg": (0.78, 0.69),
    "yahoomovie": (0.76, 0.90),
    "msnmovie": (0.75, 0.99),
    "zune": (0.74, 0.97),
    "metacritic": (0.68, 0.99),
    "flixster": (0.58, 0.91),
    "fandango": (0.50, 0.99),
}


@dataclass(frozen=True)
class MovieDirectorConfig:
    """Scale and behaviour parameters of the simulated movie feed.

    Attributes
    ----------
    num_movies:
        Number of movie entities generated *before* the conflicting-records
        filter (the paper's full scale is 15 073; the default is scaled down
        so benchmarks run in seconds).
    labelled_movies:
        Number of movies (post-filter) whose facts are labelled.
    max_directors:
        Maximum number of true directors per movie (most have one).
    coverage:
        Probability that each source covers a given movie.
    false_director_rate:
        Baseline expected number of spurious directors injected per covered
        movie, scaled per source by its (1 - specificity).
    decoy_affinity:
        Probability that an injected spurious director is the movie's shared
        "decoy" (e.g. a producer or writer mis-credited as director) rather
        than a random person.  Shared decoys make false claims *correlated
        across sources*, which is what defeats majority voting on the paper's
        movie data.
    only_conflicting:
        Whether to apply the paper's filter keeping only movies with more
        than one asserted director and more than one covering source.
    seed:
        Seed of the simulation stream.
    """

    num_movies: int = 2000
    labelled_movies: int = 100
    max_directors: int = 2
    coverage: float = 0.28
    false_director_rate: float = 2.0
    decoy_affinity: float = 0.8
    only_conflicting: bool = True
    seed: int | None = 29

    def __post_init__(self) -> None:
        if self.num_movies <= 0:
            raise ConfigurationError("num_movies must be positive")
        if self.labelled_movies <= 0:
            raise ConfigurationError("labelled_movies must be positive")
        if self.max_directors <= 0:
            raise ConfigurationError("max_directors must be positive")
        if not 0.0 < self.coverage <= 1.0:
            raise ConfigurationError("coverage must lie in (0, 1]")
        if self.false_director_rate < 0:
            raise ConfigurationError("false_director_rate must be non-negative")
        if not 0.0 <= self.decoy_affinity <= 1.0:
            raise ConfigurationError("decoy_affinity must lie in [0, 1]")

    @classmethod
    def paper_scale(cls, seed: int | None = 29) -> "MovieDirectorConfig":
        """The paper's dataset scale: 15 073 movies before filtering."""
        return cls(num_movies=15073, labelled_movies=100, seed=seed)

    @classmethod
    def small(cls, seed: int | None = 29) -> "MovieDirectorConfig":
        """A small configuration for unit tests."""
        return cls(num_movies=200, labelled_movies=50, seed=seed)


@dataclass
class MovieDirectorSimulator:
    """Generates a simulated movie-director integration dataset.

    Examples
    --------
    >>> dataset = MovieDirectorSimulator(MovieDirectorConfig.small(seed=3)).generate()
    >>> set(dataset.claims.source_names) <= set(PAPER_MOVIE_SOURCES)
    True
    """

    config: MovieDirectorConfig = field(default_factory=MovieDirectorConfig)
    source_quality: dict[str, tuple[float, float]] = field(
        default_factory=lambda: dict(PAPER_MOVIE_SOURCES)
    )

    def generate(self) -> TruthDataset:
        """Run the simulation and return a labelled :class:`TruthDataset`."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        names = NameGenerator(rng)

        movies = names.work_titles(config.num_movies, prefix="")
        movies = [title.strip() for title in movies]
        director_pool = names.person_names(max(config.num_movies // 3, 30))

        true_directors = self._assign_true_directors(movies, director_pool, rng)
        triples, truth = self._crawl(movies, true_directors, director_pool, rng)

        raw = RawDatabase(triples, strict=False)
        if config.only_conflicting:
            raw = self._filter_conflicting(raw)

        surviving_movies = [m for m in movies if m in set(raw.entities)]
        labelled_count = min(config.labelled_movies, len(surviving_movies))
        labelled = list(rng.choice(surviving_movies, size=labelled_count, replace=False))
        return build_dataset(
            raw,
            truth=truth,
            name="movie-directors-simulated",
            labelled_entities=labelled,
        )

    # -- simulation pieces --------------------------------------------------------------
    def _assign_true_directors(
        self,
        movies: list[str],
        director_pool: list[str],
        rng: np.random.Generator,
    ) -> dict[str, list[str]]:
        """Choose each movie's true director list (most movies have a single director)."""
        config = self.config
        true_directors: dict[str, list[str]] = {}
        weights = np.array([0.75, 0.25][: config.max_directors], dtype=float)
        weights = weights / weights.sum()
        for movie in movies:
            count = int(rng.choice(np.arange(1, len(weights) + 1), p=weights))
            picks = rng.choice(len(director_pool), size=count, replace=False)
            true_directors[movie] = [director_pool[int(i)] for i in picks]
        return true_directors

    def _crawl(
        self,
        movies: list[str],
        true_directors: dict[str, list[str]],
        director_pool: list[str],
        rng: np.random.Generator,
    ) -> tuple[list[Triple], dict[tuple[str, str], bool]]:
        """Simulate every source's feed and collect triples plus ground truth."""
        config = self.config
        triples: list[Triple] = []
        truth: dict[tuple[str, str], bool] = {}
        source_names = list(self.source_quality)
        for movie in movies:
            directors = true_directors[movie]
            for director in directors:
                truth[(movie, director)] = True
            # The movie's shared decoys: plausible-but-wrong people (a producer
            # or writer) that several sources mis-credit, making false claims
            # correlated across sources.
            decoys = [
                director_pool[int(rng.integers(0, len(director_pool)))]
                for _ in range(2)
            ]
            decoys = [d for d in decoys if d not in directors]
            for source in source_names:
                if rng.random() >= config.coverage:
                    continue
                sensitivity, specificity = self.source_quality[source]
                reported: list[str] = []
                for director in directors:
                    if rng.random() < sensitivity:
                        reported.append(director)
                # Spurious directors: rate scales with the source's (1 - specificity).
                rate = config.false_director_rate * (1.0 - specificity)
                num_false = int(rng.poisson(rate))
                for _ in range(num_false):
                    if decoys and rng.random() < config.decoy_affinity:
                        candidate = decoys[int(rng.integers(0, len(decoys)))]
                    else:
                        candidate = director_pool[int(rng.integers(0, len(director_pool)))]
                    if candidate not in directors and candidate not in reported:
                        reported.append(candidate)
                if not reported:
                    continue
                for director in reported:
                    triples.append(Triple(movie, director, source))
                    if (movie, director) not in truth:
                        truth[(movie, director)] = director in directors
        return triples, truth

    def _filter_conflicting(self, raw: RawDatabase) -> RawDatabase:
        """Keep only movies with >1 asserted director and >1 covering source (paper filter)."""
        keep = [
            entity
            for entity in raw.entities
            if len(raw.attributes_of(entity)) > 1 and len(raw.sources_of(entity)) > 1
        ]
        return raw.restrict_to_entities(keep)

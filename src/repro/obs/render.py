"""Human-readable rendering of exported span trees.

Backs ``repro-truth obs summary|tail``: reads the span JSONL a
:class:`~repro.obs.trace.JsonlSpanExporter` (or ``--trace-out``) wrote and
renders an indented tree with per-span timings plus a per-name aggregate
table.  Pure functions over plain span dicts, so tests and the CLI's
end-of-run summary (which renders straight from an
:class:`~repro.obs.trace.InMemorySpanCollector`) share the same code.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Mapping

__all__ = [
    "load_spans",
    "format_span_line",
    "format_span_tree",
    "format_span_summary",
]


def load_spans(path: str) -> list[dict[str, Any]]:
    """Parse a span JSONL file into span dicts (blank lines skipped).

    Raises ``ValueError`` with the offending line number on malformed input,
    so the CLI can fail with a pointed message instead of a traceback.
    """
    spans: list[dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                span = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(span, dict) or "name" not in span:
                raise ValueError(f"{path}:{number}: not a span record")
            spans.append(span)
    return spans


def _format_attribute(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_span_line(span: Mapping[str, Any]) -> str:
    """One span as ``name (N ms) key=value ...``."""
    duration = span.get("duration_ms")
    if duration is None:
        start, end = span.get("start"), span.get("end")
        duration = (end - start) * 1000.0 if start is not None and end is not None else 0.0
    attributes = span.get("attributes") or {}
    rendered = " ".join(f"{key}={_format_attribute(val)}" for key, val in attributes.items())
    line = f"{span['name']} ({float(duration):.1f} ms)"
    return f"{line} {rendered}" if rendered else line


def format_span_tree(spans: Iterable[Mapping[str, Any]]) -> str:
    """The spans as an indented tree, children ordered by start time.

    Spans whose parent is absent from the input (or ``None``) are roots.
    """
    spans = list(spans)
    if not spans:
        return "(no spans)"
    by_id = {span.get("span_id"): span for span in spans}
    children: dict[Any, list[Mapping[str, Any]]] = {}
    roots: list[Mapping[str, Any]] = []
    for span in spans:
        parent = span.get("parent_id")
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)

    def sort_key(span: Mapping[str, Any]):
        return (span.get("start") or 0.0, span.get("span_id") or 0)

    lines: list[str] = []

    def walk(span: Mapping[str, Any], prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(format_span_line(span))
            child_prefix = ""
        else:
            connector = "└── " if is_last else "├── "
            lines.append(prefix + connector + format_span_line(span))
            child_prefix = prefix + ("    " if is_last else "│   ")
        kids = sorted(children.get(span.get("span_id"), ()), key=sort_key)
        for index, kid in enumerate(kids):
            walk(kid, child_prefix, index == len(kids) - 1, False)

    for root in sorted(roots, key=sort_key):
        walk(root, "", True, True)
    return "\n".join(lines)


def format_span_summary(spans: Iterable[Mapping[str, Any]]) -> str:
    """The tree plus a per-name aggregate table (count, total and mean ms)."""
    spans = list(spans)
    if not spans:
        return "(no spans)"
    totals: dict[str, list[float]] = {}
    for span in spans:
        duration = span.get("duration_ms")
        if duration is None:
            start, end = span.get("start"), span.get("end")
            duration = (end - start) * 1000.0 if start is not None and end is not None else 0.0
        totals.setdefault(str(span["name"]), []).append(float(duration))
    width = max(len(name) for name in totals)
    width = max(width, len("span"))
    lines = [format_span_tree(spans), ""]
    lines.append(f"{'span':<{width}} {'count':>7} {'total ms':>12} {'mean ms':>12}")
    for name in sorted(totals):
        durations = totals[name]
        total = sum(durations)
        lines.append(
            f"{name:<{width}} {len(durations):>7d} {total:>12.1f} "
            f"{total / len(durations):>12.1f}"
        )
    lines.append("")
    lines.append(f"{len(spans)} spans")
    return "\n".join(lines)

"""Nested, timed tracing spans with canonical-JSON export.

The tracing half of :mod:`repro.obs`.  A :class:`Tracer` produces
:class:`Span` records — named, wall-clock-timed, attribute-carrying, nested
via a context-local current-span stack — and hands each *finished* span to
its sinks:

* :class:`InMemorySpanCollector` — keeps span dicts in order (tests, the
  CLI's end-of-run tree rendering);
* :class:`JsonlSpanExporter` — one canonical-JSON line per span (the same
  :func:`repro.api.codec.canonical_json` the API uses for response bodies
  and request logs), consumed by ``repro-truth obs summary|tail``.

Three properties matter for how the rest of the library uses this:

**Disabled is (almost) free.**  :data:`NOOP_TRACER` answers ``enabled=False``
and returns a shared no-allocation context manager from :meth:`span`, so hot
paths guard chunked recording with one attribute check and instrumented
functions pay a dict lookup plus a no-op ``with`` — benchmarked under 2% on
the Figure-6 fit workload (``benchmarks/test_obs_overhead.py``).

**Deterministic under an injected clock.**  Spans are timed by the tracer's
``clock`` (default :func:`time.time` — wall clock, so spans recorded in
worker processes are comparable to the parent's) and identified by
sequential per-tracer counters, never randomness.  A fixed fake clock makes
the exported JSONL byte-stable — the same injectable-clock idiom as
:class:`repro.api.TruthAPI`.

**Spans cross process workers.**  A worker cannot share its parent's tracer,
so :func:`repro.parallel.executor.fit_shard` runs under an isolated
collecting tracer and ships its span *dicts* back on the
:class:`~repro.parallel.merge.ShardFit`; the parent then grafts them into
its own tree with :meth:`Tracer.adopt`, re-assigning ids and attaching the
worker's root spans under the serialised parent context
(:meth:`Tracer.current_context`) — one merged tree per sharded fit.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "InMemorySpanCollector",
    "JsonlSpanExporter",
]


class Span:
    """One named, timed unit of work with structured attributes."""

    __slots__ = ("name", "trace_id", "span_id", "parent_id", "start", "end", "attributes")

    def __init__(
        self,
        name: str,
        trace_id: int,
        span_id: int,
        parent_id: int | None,
        start: float,
        attributes: dict[str, Any],
    ):
        self.name = name
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: float | None = None
        self.attributes = attributes

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    @property
    def duration_ms(self) -> float:
        """Span duration in milliseconds (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1000.0

    def to_dict(self) -> dict[str, Any]:
        """The span as a plain JSON-safe dict (the export format)."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "duration_ms": round(self.duration_ms, 3),
            "attributes": dict(self.attributes),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, parent={self.parent_id})"


class _SpanScope:
    """Context manager for one :meth:`Tracer.span` invocation."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Span | None = None
        self._token = None

    def __enter__(self) -> Span:
        self._span, self._token = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        assert self._span is not None
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span, self._token)
        return None


class _NullSpan:
    """The span stand-in the no-op tracer yields: every mutation is a no-op."""

    __slots__ = ()
    name = ""
    attributes: dict[str, Any] = {}
    duration_ms = 0.0

    def set(self, **attributes: Any) -> "_NullSpan":
        return self


class _NullScope:
    """Shared, allocation-free context manager of :meth:`NoopTracer.span`."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_SCOPE = _NullScope()


class Tracer:
    """Produces nested spans and dispatches finished spans to sinks.

    Parameters
    ----------
    *sinks:
        Objects with an ``export(span_dict)`` method (or bare callables)
        receiving each finished span as a plain dict, in finish order
        (children before parents).
    clock:
        Wall-clock source for span timestamps — injectable for
        deterministic tests.  Defaults to :func:`time.time` so spans from
        different processes on one machine share a timeline.
    """

    enabled = True

    def __init__(self, *sinks: Any, clock: Callable[[], float] = time.time):
        self.clock = clock
        self._sinks = list(sinks)
        self._next_span_id = itertools.count(1)
        self._next_trace_id = itertools.count(1)
        self._current: contextvars.ContextVar[Span | None] = contextvars.ContextVar(
            "repro_obs_current_span", default=None
        )
        self._lock = threading.Lock()

    # -- recording --------------------------------------------------------------------
    def now(self) -> float:
        """The tracer's current wall-clock reading."""
        return self.clock()

    def span(self, name: str, **attributes: Any) -> _SpanScope:
        """A context manager opening a child span of the current one."""
        return _SpanScope(self, name, attributes)

    def record(
        self, name: str, start: float, end: float | None = None, **attributes: Any
    ) -> Span:
        """Record a retroactive span (child of the current one) from timestamps.

        This is the chunked-recording entry point: hot loops accumulate
        cheaply and call ``record`` once per chunk (the Gibbs sampler, the
        batch iterator), paying tracer cost per *chunk* rather than per
        element.
        """
        parent = self._current.get()
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else next(self._next_trace_id),
            span_id=next(self._next_span_id),
            parent_id=parent.span_id if parent is not None else None,
            start=float(start),
            attributes=attributes,
        )
        span.end = float(end) if end is not None else self.clock()
        self._dispatch(span.to_dict())
        return span

    def current_context(self) -> dict[str, int] | None:
        """The active span as a serialisable ``{trace_id, span_id}`` handoff.

        This is what crosses a process boundary (on
        :class:`~repro.parallel.executor.ShardTask`): plain ints, picklable,
        enough for :meth:`adopt` to graft the worker's spans back under the
        originating span.
        """
        current = self._current.get()
        if current is None:
            return None
        return {"trace_id": current.trace_id, "span_id": current.span_id}

    def adopt(
        self,
        span_dicts: Iterable[Mapping[str, Any]],
        context: Mapping[str, int] | None = None,
    ) -> list[dict[str, Any]]:
        """Graft spans recorded by another tracer into this one's tree.

        Every span is re-identified with this tracer's id counters (so ids
        from concurrent workers never collide); parent links *within* the
        batch are preserved, and batch-root spans are attached to the
        current span — or, when none is active, to the serialised
        ``context`` the work was dispatched with.  Timing and attributes
        pass through unchanged (workers share the wall clock).
        """
        spans = [dict(span) for span in span_dicts]
        if not spans:
            return []
        current = self._current.get()
        if current is not None:
            parent_id: int | None = current.span_id
            trace_id: int | None = current.trace_id
        elif context is not None:
            parent_id = int(context["span_id"])
            trace_id = int(context["trace_id"])
        else:
            parent_id = None
            trace_id = None
        id_map = {span["span_id"]: next(self._next_span_id) for span in spans}
        adopted = []
        for span in spans:
            out = dict(span)
            out["span_id"] = id_map[span["span_id"]]
            old_parent = span.get("parent_id")
            if old_parent in id_map:
                out["parent_id"] = id_map[old_parent]
            else:
                out["parent_id"] = parent_id
            out["trace_id"] = trace_id if trace_id is not None else span.get("trace_id")
            self._dispatch(out)
            adopted.append(out)
        return adopted

    # -- internals --------------------------------------------------------------------
    def _open(self, name: str, attributes: dict[str, Any]):
        parent = self._current.get()
        span = Span(
            name=name,
            trace_id=parent.trace_id if parent is not None else next(self._next_trace_id),
            span_id=next(self._next_span_id),
            parent_id=parent.span_id if parent is not None else None,
            start=self.clock(),
            attributes=attributes,
        )
        token = self._current.set(span)
        return span, token

    def _close(self, span: Span, token) -> None:
        span.end = self.clock()
        self._current.reset(token)
        self._dispatch(span.to_dict())

    def _dispatch(self, span_dict: dict[str, Any]) -> None:
        with self._lock:
            for sink in self._sinks:
                export = getattr(sink, "export", sink)
                export(span_dict)

    # -- sink access ------------------------------------------------------------------
    @property
    def collector(self) -> "InMemorySpanCollector | None":
        """The first in-memory collector among the sinks, when present."""
        for sink in self._sinks:
            if isinstance(sink, InMemorySpanCollector):
                return sink
        return None

    def close(self) -> None:
        """Close every closable sink (flushes JSONL exporters)."""
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Tracer(sinks={len(self._sinks)}, enabled=True)"


class NoopTracer:
    """The disabled tracer: same surface as :class:`Tracer`, near-zero cost.

    ``enabled`` is ``False`` so chunked hot loops can skip their
    accumulation entirely; :meth:`span` returns one shared context manager,
    so instrumented call sites allocate nothing.
    """

    enabled = False
    clock = staticmethod(time.time)

    def now(self) -> float:
        return 0.0

    def span(self, name: str, **attributes: Any) -> _NullScope:
        return _NULL_SCOPE

    def record(self, name: str, start: float, end: float | None = None, **attributes: Any) -> None:
        return None

    def current_context(self) -> None:
        return None

    def adopt(self, span_dicts, context=None) -> list:
        return []

    def close(self) -> None:
        return None

    @property
    def collector(self) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NoopTracer()"


#: The shared disabled tracer — what :func:`repro.obs.get_tracer` returns
#: until :func:`repro.obs.configure` installs a recording one.
NOOP_TRACER = NoopTracer()


class InMemorySpanCollector:
    """Keeps finished span dicts in dispatch order (tests and CLI summaries)."""

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []

    def export(self, span_dict: dict[str, Any]) -> None:
        self.spans.append(span_dict)

    def clear(self) -> None:
        self.spans.clear()

    def find(self, name: str) -> list[dict[str, Any]]:
        """All collected spans with the given name, in dispatch order."""
        return [span for span in self.spans if span["name"] == name]

    def __len__(self) -> int:
        return len(self.spans)


class JsonlSpanExporter:
    """Writes one canonical-JSON line per finished span.

    The line format is exactly :func:`repro.api.codec.canonical_json` of
    :meth:`Span.to_dict` — sorted keys, compact separators, NaN-safe — so
    the file is byte-stable for a fixed clock and directly consumable by
    ``repro-truth obs summary|tail`` (:mod:`repro.obs.render`).  The file is
    opened lazily on the first span and truncated per exporter (one run =
    one trace file).
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._handle = None

    def export(self, span_dict: dict[str, Any]) -> None:
        # Imported at use, not module load: repro.obs sits below repro.api in
        # the import graph (engine config embeds TelemetryConfig), so pulling
        # the codec in at import time would close an import cycle.
        from repro.api.codec import canonical_json

        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(canonical_json(span_dict) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

"""Process-wide metrics: counters, gauges, histograms, Prometheus rendering.

This module is the single home of the metric primitives the library uses —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` and the
:class:`MetricsRegistry` that renders them in the Prometheus text exposition
format (version 0.0.4).  They started life in :mod:`repro.api.observability`
backing ``GET /metrics``; that module now re-exports them from here
unchanged, so API imports keep working while the engine, the shard executor,
the claim store and the serving layer record into the same primitives.

Two registries coexist by convention:

* each :class:`~repro.api.TruthAPI` keeps its *per-app* registry for the
  request-scoped series (``repro_api_*``), exactly as before;
* everything below the HTTP tier records into the **process-global default
  registry** (:func:`global_registry`), under disjoint name prefixes
  (``repro_engine_*``, ``repro_gibbs_*``, ``repro_parallel_*``,
  ``repro_store_*``, ``repro_serving_*``).  ``GET /metrics`` renders its app
  registry followed by the global one, so one scrape sees both.

:func:`engine_metrics` lazily registers the engine-side series (creation is
idempotent — repeated calls return the same metric objects), so a process
that never fits anything exposes no engine series.

Metric label values are always bounded vocabularies (method keys, backend
names, operation names), never raw user data, so cardinality stays bounded.
"""

from __future__ import annotations

from typing import Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "FIT_SECONDS_BUCKETS",
    "ITERATION_BUCKETS",
    "FRACTION_BUCKETS",
    "EngineMetrics",
    "engine_metrics",
    "global_registry",
    "set_global_registry",
    "reset_global_registry",
]

#: Default latency histogram bucket upper bounds, in seconds.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5
)

#: Bucket bounds for whole-fit / per-shard wall times, in seconds.
FIT_SECONDS_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0, 300.0,
)

#: Bucket bounds for Gibbs iteration budgets (the paper's Figure 5 grid).
ITERATION_BUCKETS = (1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0)

#: Bucket bounds for fractions in [0, 1] (flip fractions, acceptance rates).
FRACTION_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0)


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in key
    )
    return "{" + escaped + "}"


class Counter:
    """A monotonically increasing labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> Iterable[str]:
        for key in sorted(self._values):
            yield f"{self.name}{_render_labels(key)} {_format_value(self._values[key])}"


class Gauge(Counter):
    """A labelled gauge — a counter whose value can also be set outright."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)


class Histogram:
    """A labelled cumulative histogram with fixed bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ):
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._totals: dict[tuple[tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(labels), 0)

    def sum(self, **labels: str) -> float:
        return self._sums.get(_label_key(labels), 0.0)

    def render(self) -> Iterable[str]:
        for key in sorted(self._totals):
            # observe() increments every bucket whose bound covers the value,
            # so the stored counts are already cumulative (Prometheus form).
            counts = self._counts[key]
            for bound, bucket_count in zip(self.buckets, counts):
                bucket_key = key + (("le", _format_value(bound)),)
                yield f"{self.name}_bucket{_render_labels(bucket_key)} {bucket_count}"
            inf_key = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket{_render_labels(inf_key)} {self._totals[key]}"
            yield f"{self.name}_sum{_render_labels(key)} {_format_value(self._sums[key])}"
            yield f"{self.name}_count{_render_labels(key)} {self._totals[key]}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


class MetricsRegistry:
    """A named set of metrics rendered as one Prometheus text document."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help_text: str) -> Counter:
        return self._get_or_create(name, help_text, Counter)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._get_or_create(name, help_text, Gauge)

    def histogram(
        self, name: str, help_text: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help_text, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is already registered as {metric.kind}")
        return metric

    def _get_or_create(self, name, help_text, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, help_text)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(f"metric {name!r} is already registered as {metric.kind}")
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        """The registered metric names, sorted (render order)."""
        return sorted(self._metrics)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# -- the process-global default registry -------------------------------------------

_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The process-global default registry (engine/store/parallel/serving series)."""
    return _GLOBAL_REGISTRY


def set_global_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _GLOBAL_REGISTRY
    previous = _GLOBAL_REGISTRY
    _GLOBAL_REGISTRY = registry
    return previous


def reset_global_registry() -> MetricsRegistry:
    """Install (and return) a fresh empty global registry — test isolation."""
    fresh = MetricsRegistry()
    set_global_registry(fresh)
    return fresh


class EngineMetrics:
    """The engine-side metric series, bound to one registry.

    Creation is idempotent (``MetricsRegistry`` get-or-creates by name), so
    building this view per recording site is cheap and every site shares the
    same underlying metric objects.  Series and their labels:

    ========================================  =======================  =========
    series                                    labels                   type
    ========================================  =======================  =========
    ``repro_engine_fit_seconds``              ``method``, ``backend``  histogram
    ``repro_engine_fit_iterations``           ``method``               histogram
    ``repro_engine_fits_total``               ``method``, ``mode``     counter
    ``repro_engine_triples_ingested_total``   ``path``                 counter
    ``repro_gibbs_flip_fraction``             —                        histogram
    ``repro_parallel_shard_fit_seconds``      ``backend``              histogram
    ``repro_store_rows_total``                ``op``                   counter
    ``repro_store_op_seconds``                ``op``                   histogram
    ``repro_serving_snapshot_generation``     —                        gauge
    ``repro_serving_artifact_age_seconds``    —                        gauge
    ========================================  =======================  =========
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.fit_seconds = registry.histogram(
            "repro_engine_fit_seconds",
            "Wall time of full engine fits, by method/backend.",
            FIT_SECONDS_BUCKETS,
        )
        self.fit_iterations = registry.histogram(
            "repro_engine_fit_iterations",
            "Sampler iterations per fit, by method.",
            ITERATION_BUCKETS,
        )
        self.fits_total = registry.counter(
            "repro_engine_fits_total",
            "Completed full fits, by method and mode (batch/refit).",
        )
        self.triples_ingested = registry.counter(
            "repro_engine_triples_ingested_total",
            "Triples consumed by engine fits and partial_fit batches, by path.",
        )
        self.gibbs_flip_fraction = registry.histogram(
            "repro_gibbs_flip_fraction",
            "Mean per-sweep fraction of facts that flipped truth value, per fit.",
            FRACTION_BUCKETS,
        )
        self.shard_fit_seconds = registry.histogram(
            "repro_parallel_shard_fit_seconds",
            "Wall time of individual shard fits, by executor backend.",
            FIT_SECONDS_BUCKETS,
        )
        self.store_rows = registry.counter(
            "repro_store_rows_total",
            "Claim-store rows written (op=append) and evicted (op=deleted).",
        )
        self.store_op_seconds = registry.histogram(
            "repro_store_op_seconds",
            "Wall time of claim-store append/compact operations, by op.",
            FIT_SECONDS_BUCKETS,
        )
        self.snapshot_generation = registry.gauge(
            "repro_serving_snapshot_generation",
            "Monotonic generation of the snapshot a TruthService serves.",
        )
        self.artifact_age_seconds = registry.gauge(
            "repro_serving_artifact_age_seconds",
            "Seconds the previously served artifact was live before the last refresh.",
        )


def engine_metrics(registry: MetricsRegistry | None = None) -> EngineMetrics:
    """The engine-side series on ``registry`` (default: the global registry)."""
    return EngineMetrics(registry if registry is not None else _GLOBAL_REGISTRY)

"""``repro.obs`` — process-wide telemetry: tracing spans, unified metrics.

The observability spine of the library.  Every pillar records into the same
two primitives:

* **Tracing** (:mod:`repro.obs.trace`) — nested, wall-clock-timed spans
  covering the full lifecycle: ``fit`` / ``partial_fit``
  (:class:`~repro.engine.TruthEngine`), chunked ``gibbs.iteration`` spans
  (:class:`~repro.core.gibbs.CollapsedGibbsSampler`), ``shard.plan`` /
  ``shard.fit`` / ``shard.merge`` (:mod:`repro.parallel` — worker spans
  cross process boundaries as plain dicts and are grafted into one tree),
  ``store.append`` / ``store.compact``
  (:class:`~repro.store.claims.ClaimStore`), ``source.iter_batches``
  (:class:`~repro.io.DataSource`), ``service.refresh``
  (:class:`~repro.serving.TruthService`) and ``artifact.save`` /
  ``artifact.load``.  Disabled by default at near-zero cost; enabled by
  :func:`configure`, by ``EngineConfig(telemetry=...)``, or by the CLI's
  ``--telemetry`` / ``--trace-out`` flags.

* **Metrics** (:mod:`repro.obs.metrics`) — the Prometheus-format
  counter/gauge/histogram registry the HTTP tier has always used
  (:mod:`repro.api.observability` re-exports it from here), plus a
  process-global default registry carrying the engine-side series
  (``repro_engine_*``, ``repro_gibbs_*``, ``repro_parallel_*``,
  ``repro_store_*``, ``repro_serving_*``).  ``GET /metrics`` exposes both.

Typical use::

    >>> from repro import obs
    >>> tracer = obs.configure()                      # record in memory
    >>> # ... run fits / stores / services ...
    >>> spans = tracer.collector.spans                # finished span dicts
    >>> obs.shutdown()                                # back to the no-op tracer

Instrumented code never holds a tracer: it calls :func:`get_tracer` at use
time, which resolves the context-local tracer (installed per shard worker by
:func:`use_tracer`) and falls back to the process-global one.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator

from repro.obs.config import TelemetryConfig
from repro.obs.metrics import (
    Counter,
    EngineMetrics,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    engine_metrics,
    global_registry,
    reset_global_registry,
    set_global_registry,
)
from repro.obs.trace import (
    InMemorySpanCollector,
    JsonlSpanExporter,
    NOOP_TRACER,
    NoopTracer,
    Span,
    Tracer,
)

__all__ = [
    "TelemetryConfig",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
    "EngineMetrics",
    "engine_metrics",
    "global_registry",
    "set_global_registry",
    "reset_global_registry",
    "Span",
    "Tracer",
    "NoopTracer",
    "NOOP_TRACER",
    "InMemorySpanCollector",
    "JsonlSpanExporter",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "configure",
    "tracer_for",
    "shutdown",
    "reset",
]

_STATE: dict = {"tracer": NOOP_TRACER}

# Worker-scoped tracer override: a shard worker (repro.parallel.executor)
# installs its isolated collecting tracer here so the code it runs — the
# Gibbs sampler, store reads — records into the worker's tree without
# touching process-global state (context vars are per-thread, so the
# threads backend is race-free).
import contextvars as _contextvars

_ACTIVE: _contextvars.ContextVar = _contextvars.ContextVar(
    "repro_obs_active_tracer", default=None
)


def get_tracer() -> "Tracer | NoopTracer":
    """The tracer instrumentation records into right now.

    Resolution order: the context-local tracer installed by
    :func:`use_tracer` (shard workers), else the process-global tracer
    (:func:`configure` / :func:`set_tracer`), else :data:`NOOP_TRACER`.
    """
    active = _ACTIVE.get()
    return active if active is not None else _STATE["tracer"]


def set_tracer(tracer: "Tracer | NoopTracer") -> "Tracer | NoopTracer":
    """Install ``tracer`` process-globally; returns the previous one."""
    previous = _STATE["tracer"]
    _STATE["tracer"] = tracer
    return previous


@contextlib.contextmanager
def use_tracer(tracer: "Tracer | NoopTracer") -> Iterator["Tracer | NoopTracer"]:
    """Context-locally override :func:`get_tracer` (per-worker isolation)."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def configure(
    *,
    trace_path: str | None = None,
    collector: InMemorySpanCollector | None = None,
    clock: Callable[[], float] = time.time,
) -> Tracer:
    """Install a recording process-global tracer and return it.

    Always attaches an :class:`InMemorySpanCollector` (reachable as
    ``tracer.collector``); ``trace_path`` additionally streams every span to
    a canonical-JSON lines file for ``repro-truth obs summary|tail``.
    ``clock`` is injectable for byte-stable exports in tests.
    """
    sinks: list = [collector if collector is not None else InMemorySpanCollector()]
    if trace_path:
        sinks.append(JsonlSpanExporter(trace_path))
    tracer = Tracer(*sinks, clock=clock)
    set_tracer(tracer)
    return tracer


def tracer_for(telemetry: "TelemetryConfig | None") -> "Tracer | NoopTracer":
    """The tracer a run under ``telemetry`` should record into.

    An already-active recording tracer always wins (so ``obs.configure()``
    traces every engine in the process); otherwise an
    ``enabled`` config installs one — honouring its ``trace_path`` — and a
    disabled/absent config leaves the no-op tracer in place.
    """
    active = get_tracer()
    if active.enabled:
        return active
    if telemetry is not None and telemetry.enabled:
        return configure(trace_path=telemetry.trace_path)
    return active


def shutdown() -> None:
    """Close the global tracer's sinks and restore the no-op tracer."""
    tracer = _STATE["tracer"]
    tracer.close()
    _STATE["tracer"] = NOOP_TRACER


def reset() -> None:
    """Full telemetry reset: no-op tracer and a fresh global metrics registry.

    Test isolation: spans and engine-side metric series recorded by one test
    never leak into the next.
    """
    shutdown()
    reset_global_registry()

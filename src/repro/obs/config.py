"""Declarative telemetry configuration, embeddable in an ``EngineConfig``.

:class:`TelemetryConfig` is the engine-side switch for the tracing half of
:mod:`repro.obs`: a fit run under ``EngineConfig(telemetry=...)`` with
``enabled=True`` installs a recording tracer (when none is active yet) via
:func:`repro.obs.tracer_for`, optionally exporting spans to a canonical-JSON
lines file.  Like :class:`~repro.engine.config.ExecutionConfig` it is a
frozen, JSON-round-trippable dataclass, so telemetry is a configuration
concern: the same config that names the method and the shard layout also
says whether the run is traced.

Metrics (:mod:`repro.obs.metrics`) are *not* gated here — they are always-on
per-operation recordings whose cost is negligible next to the work they
measure.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

from repro.exceptions import ConfigurationError

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Whether (and where) a run records tracing spans.

    Attributes
    ----------
    enabled:
        When true, :meth:`~repro.engine.TruthEngine.fit` ensures a recording
        :class:`~repro.obs.trace.Tracer` is active for the run (installing a
        process-global one when none is); when false (default) the engine
        uses whatever tracer :func:`repro.obs.get_tracer` resolves — the
        no-op tracer unless :func:`repro.obs.configure` was called.
    trace_path:
        Optional path of a span JSONL file (one canonical-JSON span per
        line, the format ``repro-truth obs summary`` reads).  Only consulted
        when this config is the one that installs the tracer.
    """

    enabled: bool = False
    trace_path: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.enabled, bool):
            raise ConfigurationError("telemetry.enabled must be a boolean")
        if self.trace_path is not None and not isinstance(self.trace_path, str):
            raise ConfigurationError("telemetry.trace_path must be a string path (or None)")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TelemetryConfig":
        """Build a telemetry config from a plain mapping (e.g. parsed JSON)."""
        allowed = {f.name for f in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown TelemetryConfig keys: {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        return cls(**dict(data))

    def to_dict(self) -> dict[str, Any]:
        """The telemetry config as a plain JSON-safe dict."""
        return asdict(self)

"""The :class:`DataSource` protocol: the single way data enters the library.

Historically the library had five disjoint ingestion styles — CSV/JSON
loaders, :class:`~repro.data.raw.RawDatabase`, relational
:class:`~repro.store.table.Table` rows, the synthetic simulators and
:class:`~repro.streaming.stream.ClaimStream` — and every new workload or
backend had to hand-wire triples into ``build_dataset`` itself.

:class:`DataSource` unifies them behind one chunk-oriented contract:

* :meth:`DataSource.schema` — cheap metadata (name, kind, labels, sizes);
* :meth:`DataSource.iter_triples` — the canonical stream of
  ``(entity, attribute, source)`` assertions;
* :meth:`DataSource.iter_batches` — the same triples grouped into
  :class:`~repro.streaming.stream.ClaimBatch` chunks, either a fixed number
  of triples at a time or entity-grouped (how crawls and feeds deliver
  data), ready for :meth:`~repro.engine.TruthEngine.partial_fit`;
* :meth:`DataSource.to_dataset` / :meth:`DataSource.to_claim_matrix` — batch
  materialisation through the vectorized bulk-ingest path.

Concrete sources live in :mod:`repro.io.sources`; named, parameterised
sources are registered in the :class:`~repro.io.catalog.DatasetCatalog`.
Anything triple-shaped is coerced with :func:`~repro.io.catalog.as_source`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.data.claim_builder import build_dataset, bulk_build_claim_matrix
from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.raw import RawDatabase
from repro.exceptions import StreamError
from repro.obs import get_tracer
from repro.streaming.stream import ClaimBatch
from repro.types import AttributeValue, EntityKey, Triple

__all__ = ["SourceSchema", "DataSource"]


@dataclass(frozen=True)
class SourceSchema:
    """Cheap, side-effect-free description of a :class:`DataSource`.

    Attributes
    ----------
    name:
        Human-readable source name (also the default dataset name).
    kind:
        Source family: ``"memory"``, ``"file"``, ``"json"``, ``"table"``,
        ``"dataset"`` or ``"synthetic"``.
    fields:
        The triple fields every source yields, in order.
    has_labels:
        Whether :meth:`DataSource.labels` returns ground truth.
    num_triples:
        Number of triples when known without expensive work, else ``None``
        (e.g. a file that has not been read yet).
    metadata:
        Free-form extras (paths, config parameters, column mappings).
    """

    name: str
    kind: str
    fields: tuple[str, ...] = ("entity", "attribute", "source")
    has_labels: bool = False
    num_triples: int | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)


class DataSource(abc.ABC):
    """One logical collection of raw assertion triples.

    Subclasses implement :meth:`schema` and :meth:`iter_triples`; everything
    else (batching, claim-matrix and dataset materialisation) is derived.
    Sources are re-iterable: :meth:`iter_triples` may be called any number of
    times and must yield the same triples in the same order.

    Two class attributes advertise a source's memory behaviour so callers
    (the engine, the shard planner, the CLI ``datasets`` table) can route
    out-of-core corpora without materialising them:

    * :attr:`streams` — iterating the source holds only a bounded chunk in
      memory at a time (file and store sources), as opposed to sources that
      materialise their triples up front (memory, synthetic, json).
    * :attr:`supports_entity_ranges` — :meth:`iter_entities` and
      :meth:`entity_triples` are *indexed* operations: entity keys stream
      without touching triples, and one entity's triples resolve through a
      range read.  :meth:`~repro.parallel.ShardPlanner.plan_keys` requires
      this to partition a corpus by key ranges alone.
    """

    #: Whether iteration is chunked/bounded-memory rather than materialised.
    streams: bool = False
    #: Whether :meth:`iter_entities`/:meth:`entity_triples` are indexed scans.
    supports_entity_ranges: bool = False

    # -- abstract surface -----------------------------------------------------------
    @abc.abstractmethod
    def schema(self) -> SourceSchema:
        """Describe the source without forcing an expensive read."""

    @abc.abstractmethod
    def iter_triples(self) -> Iterator[Triple]:
        """Yield every raw triple of the source, in canonical order."""

    def labels(self) -> dict[tuple[EntityKey, AttributeValue], bool] | None:
        """Ground-truth ``(entity, attribute) -> bool`` labels, when available."""
        return None

    def iter_entities(self) -> Iterator[EntityKey]:
        """Yield the source's distinct entities in first-seen order.

        The default derivation scans :meth:`iter_triples` with a seen-set
        (entity keys only — triples are not retained).  Indexed sources
        (``supports_entity_ranges``) override this with a pure index scan.
        """
        seen: set[EntityKey] = set()
        for triple in self.iter_triples():
            if triple.entity not in seen:
                seen.add(triple.entity)
                yield triple.entity

    def entity_triples(self, entities: Sequence[EntityKey]) -> list[Triple]:
        """All triples of ``entities``, grouped per entity in the given order.

        Within each entity, triples keep source order.  The default scans
        :meth:`iter_triples` once and keeps only the requested entities'
        triples; indexed sources override this with range reads.
        """
        wanted = {entity: index for index, entity in enumerate(entities)}
        grouped: list[list[Triple]] = [[] for _ in wanted]
        for triple in self.iter_triples():
            slot = wanted.get(triple.entity)
            if slot is not None:
                grouped[slot].append(triple)
        return [triple for bucket in grouped for triple in bucket]

    # -- chunked streaming ----------------------------------------------------------
    def iter_batches(
        self,
        batch_size: int = 1000,
        *,
        by_entity: bool = False,
        shuffle: bool = False,
        seed: int | None = None,
    ) -> Iterator[ClaimBatch]:
        """Yield the source's triples as :class:`ClaimBatch` chunks.

        Ordering guarantee
        ------------------
        Batch order is **stable across interpreter runs, Python versions and
        hash seeds**.  Without ``shuffle``, entity-grouped batches list
        entities in first-seen triple order (plain batches keep triple
        order).  With ``shuffle`` and a ``seed``, the entity order is derived
        from the seeded BLAKE2b digest of
        :func:`~repro.io.partition.entity_partition_key` — never from
        Python's process-randomised ``hash()`` — so the same seed reproduces
        the same arrival order everywhere.  This is what makes sharded runs
        (:mod:`repro.parallel`) and replayed streams deterministic.

        Parameters
        ----------
        batch_size:
            Triples per batch — or entities per batch when ``by_entity``.
        by_entity:
            Group all triples of an entity into the same batch (how crawls
            and feeds deliver data, and what
            :class:`~repro.streaming.stream.ClaimStream` simulates).  This
            mode materialises the triples once to group them.
        shuffle:
            Randomise arrival order (of entities when ``by_entity``, of
            triples otherwise).
        seed:
            Seed of the shuffle.  ``None`` draws a fresh random order per
            call; any integer pins the order as documented above.
        """
        if batch_size <= 0:
            raise StreamError("batch_size must be positive")
        tracer = get_tracer()
        if not tracer.enabled:
            yield from self._batches(batch_size, by_entity, shuffle, seed)
            return
        start = tracer.now()
        batches = 0
        triples = 0
        try:
            for batch in self._batches(batch_size, by_entity, shuffle, seed):
                batches += 1
                triples += len(batch)
                yield batch
        finally:
            # Recorded even on partial consumption, so an abandoned stream
            # still shows how far it got.
            tracer.record(
                "source.iter_batches",
                start,
                end=tracer.now(),
                source=self.schema().name,
                batch_size=batch_size,
                by_entity=by_entity,
                batches=batches,
                triples=triples,
            )

    def _batches(
        self, batch_size: int, by_entity: bool, shuffle: bool, seed: int | None
    ) -> Iterator[ClaimBatch]:
        """The :meth:`iter_batches` body (telemetry-free, for wrapping)."""
        if by_entity:
            yield from self._entity_batches(batch_size, shuffle, seed)
            return
        if shuffle:
            triples = list(self.iter_triples())
            rng = np.random.default_rng(seed)
            order = rng.permutation(len(triples))
            triples = [triples[i] for i in order]
            iterator: Iterator[Triple] = iter(triples)
        else:
            iterator = self.iter_triples()
        index = 0
        chunk: list[Triple] = []
        for triple in iterator:
            chunk.append(triple)
            if len(chunk) >= batch_size:
                yield ClaimBatch(index=index, triples=tuple(chunk))
                index += 1
                chunk = []
        if chunk:
            yield ClaimBatch(index=index, triples=tuple(chunk))

    def _entity_batches(
        self, batch_entities: int, shuffle: bool, seed: int | None
    ) -> Iterator[ClaimBatch]:
        """Entity-grouped batching (the historical ``ClaimStream`` grouping).

        Entities appear in first-seen order; a *seeded* shuffle reorders
        them by their seeded :func:`~repro.io.partition.entity_partition_key`
        digest (ties broken by first-seen position), which is stable across
        Python versions and hash seeds.  An unseeded shuffle draws a fresh
        random order each call.
        """
        by_entity: dict[EntityKey, list[Triple]] = {}
        for triple in self.iter_triples():
            by_entity.setdefault(triple.entity, []).append(triple)
        entities = list(by_entity)
        if shuffle:
            if seed is not None:
                from repro.io.partition import seeded_entity_order

                entities = seeded_entity_order(entities, seed)
            else:
                rng = np.random.default_rng()
                order = rng.permutation(len(entities))
                entities = [entities[i] for i in order]
        batch_index = 0
        for start in range(0, len(entities), batch_entities):
            chunk = entities[start : start + batch_entities]
            batch_triples: list[Triple] = []
            for entity in chunk:
                batch_triples.extend(by_entity[entity])
            yield ClaimBatch(index=batch_index, triples=tuple(batch_triples))
            batch_index += 1

    # -- batch materialisation ------------------------------------------------------
    def to_raw(self, strict: bool = False) -> RawDatabase:
        """Materialise the source as a :class:`~repro.data.raw.RawDatabase`."""
        return RawDatabase(self.iter_triples(), strict=strict)

    def to_claim_matrix(self) -> ClaimMatrix:
        """Run the claim-generation rules over the source (vectorized path)."""
        return bulk_build_claim_matrix(self.iter_triples())

    def to_dataset(self, name: str | None = None) -> TruthDataset:
        """Materialise a labelled :class:`~repro.data.dataset.TruthDataset`.

        Uses the source's :meth:`labels` (when present) to label the facts
        derived from its triples.  Sources that natively hold a richer
        dataset (JSON dumps, the simulators) override this to return it.
        """
        return build_dataset(
            list(self.iter_triples()),
            truth=self.labels(),
            name=name if name is not None else self.schema().name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        info = self.schema()
        return f"{type(self).__name__}(name={info.name!r}, kind={info.kind!r})"

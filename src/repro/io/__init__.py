"""Unified data ingestion (the library's canonical data-side API).

This package is the data mirror of :mod:`repro.engine`: a single seam every
triple enters through.

* :class:`~repro.io.base.DataSource` — the chunk-oriented source protocol
  (``schema`` / ``iter_triples`` / ``iter_batches`` / ``to_dataset``);
* :mod:`repro.io.sources` — concrete sources for in-memory triples, triple
  CSV/TSV files, JSON dataset dumps, relational tables and the synthetic
  simulators;
* :class:`~repro.io.store_source.StoreSource` — the out-of-core source over
  a disk-backed :class:`~repro.store.claims.ClaimStore` (indexed entity
  range scans, ``as_source("store://claims.db")``);
* :class:`~repro.io.catalog.DatasetCatalog` — named, parameterised datasets
  under string keys (``"books"``, ``"movies"``, ``"ltm_generative"``,
  ``"adversarial"``, ``"paper_example"``), mirroring the engine's
  :class:`~repro.engine.registry.MethodRegistry`;
* :func:`~repro.io.catalog.as_source` — universal coercion used by
  :class:`~repro.engine.TruthEngine`, :func:`repro.discover`,
  :class:`~repro.streaming.stream.ClaimStream` and the ``repro-truth`` CLI;
* :func:`~repro.io.partition.entity_partition_key` — the stable, seeded
  entity digest behind sharded execution (:mod:`repro.parallel`) and
  reproducible entity shuffles.

Quickstart::

    >>> from repro.io import as_source
    >>> source = as_source("paper_example")
    >>> source.schema().kind
    'memory'
    >>> sum(len(batch) for batch in source.iter_batches(3))
    8
"""

from repro.io.base import DataSource, SourceSchema
from repro.io.partition import entity_partition_key, seeded_entity_order
from repro.io.sources import (
    DatasetSource,
    JsonDatasetSource,
    MemorySource,
    SyntheticSource,
    TableSource,
    TripleFileSource,
)
from repro.io.store_source import StoreSource
from repro.io.catalog import (
    DatasetCatalog,
    DatasetSpec,
    as_source,
    default_catalog,
    register_dataset,
)

__all__ = [
    "DataSource",
    "SourceSchema",
    "MemorySource",
    "TripleFileSource",
    "JsonDatasetSource",
    "TableSource",
    "DatasetSource",
    "SyntheticSource",
    "StoreSource",
    "DatasetCatalog",
    "DatasetSpec",
    "as_source",
    "default_catalog",
    "entity_partition_key",
    "register_dataset",
    "seeded_entity_order",
]

"""`StoreSource`: stream an out-of-core :class:`~repro.store.claims.ClaimStore`.

This is the :class:`~repro.io.base.DataSource` face of the disk tier
(:mod:`repro.store.claims`): corpora that do not fit in RAM enter ``fit``,
``partial_fit`` and the shard planner through it without ever materialising.

Three properties make it out-of-core rather than merely file-backed:

* ``iter_triples`` replays the claim log through chunked cursor fetches —
  peak memory is one fetch chunk;
* ``iter_batches(by_entity=True)`` streams **indexed entity ranges**: the
  entity order comes from the store's first-seen covering index (an ``ORDER
  BY first_seq`` index scan, never an in-memory sort of triples), and each
  batch's triples are pulled by per-entity index range reads.  A seeded
  shuffle reorders only the entity *keys* via the shared
  :func:`~repro.io.partition.seeded_entity_order`, so batch sequences are
  bit-identical to :class:`~repro.io.sources.MemorySource` over the same
  triples;
* ``supports_entity_ranges`` advertises the indexed scans, which lets
  :meth:`~repro.parallel.ShardPlanner.plan_keys` partition the corpus by
  streaming key ranges and lets each shard worker open the store read-only
  and fetch only its own entities.

Construct directly, via ``as_source("store:///path/to/claims.db")``, or by
registering the store in the :class:`~repro.io.catalog.DatasetCatalog` with
:meth:`~repro.io.catalog.DatasetCatalog.register_store`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import StreamError
from repro.io.base import DataSource, SourceSchema
from repro.io.partition import seeded_entity_order
from repro.store.claims import ClaimStore
from repro.streaming.stream import ClaimBatch
from repro.types import EntityKey, Triple

__all__ = ["StoreSource"]


class StoreSource(DataSource):
    """A :class:`DataSource` over a disk-backed claim store.

    Parameters
    ----------
    store:
        An open :class:`~repro.store.claims.ClaimStore`, or a path to one
        (opened read-only when given as a path — scanning never needs write
        access, and read-only handles can be shared across shard workers).
    name:
        Dataset name reported by :meth:`schema`; defaults to the store's
        file stem.
    chunk_size:
        Rows per cursor fetch when replaying the full log.
    """

    streams = True
    supports_entity_ranges = True

    def __init__(
        self,
        store: ClaimStore | str | Path,
        *,
        name: str | None = None,
        chunk_size: int = 4096,
    ):
        if isinstance(store, ClaimStore):
            self._store = store
            self._owns_store = False
        else:
            self._store = ClaimStore(store, read_only=True)
            self._owns_store = True
        if chunk_size <= 0:
            raise StreamError("chunk_size must be positive")
        self._chunk_size = chunk_size
        stem = Path(self._store.path).stem or "claims"
        self._name = name if name is not None else stem

    @property
    def store(self) -> ClaimStore:
        """The underlying claim store (for stats/compaction by the owner)."""
        return self._store

    # -- DataSource surface -----------------------------------------------------------
    def schema(self) -> SourceSchema:
        stats = self._store.stats()
        return SourceSchema(
            name=self._name,
            kind="store",
            num_triples=int(stats["triples"]),
            metadata={
                "path": self._store.path,
                "schema_version": stats["schema_version"],
                "entities": stats["entities"],
                "sources": stats["sources"],
                "generations": stats["generations"],
            },
        )

    def iter_triples(self) -> Iterator[Triple]:
        return self._store.iter_triples(chunk_size=self._chunk_size)

    def iter_entities(self) -> Iterator[EntityKey]:
        """First-seen entity order, streamed off the covering index."""
        return self._store.iter_entities(chunk_size=self._chunk_size)

    def entity_triples(self, entities: Sequence[EntityKey]) -> list[Triple]:
        """Indexed range reads: only the requested entities' triples load."""
        return self._store.entity_triples(entities)

    def _entity_batches(
        self, batch_entities: int, shuffle: bool, seed: int | None
    ) -> Iterator[ClaimBatch]:
        """Entity-grouped batching over index ranges, not materialised triples.

        Unshuffled, entity keys stream straight off the first-seen index and
        each batch fetches its ``batch_entities`` entities' triples by range
        reads — peak memory is one batch, regardless of corpus size.  A
        seeded shuffle must rank *every* entity, so the entity **keys** (and
        only the keys) are collected and reordered with the shared
        :func:`~repro.io.partition.seeded_entity_order`; triples still load
        one batch at a time.
        """
        if shuffle:
            entities = list(self.iter_entities())
            if seed is not None:
                entities = seeded_entity_order(entities, seed)
            else:
                rng = np.random.default_rng()
                order = rng.permutation(len(entities))
                entities = [entities[i] for i in order]
            iterator: Iterator[EntityKey] = iter(entities)
        else:
            iterator = self.iter_entities()
        batch_index = 0
        chunk: list[EntityKey] = []
        for entity in iterator:
            chunk.append(entity)
            if len(chunk) >= batch_entities:
                yield ClaimBatch(
                    index=batch_index, triples=tuple(self._store.entity_triples(chunk))
                )
                batch_index += 1
                chunk = []
        if chunk:
            yield ClaimBatch(
                index=batch_index, triples=tuple(self._store.entity_triples(chunk))
            )

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        """Close the store handle if this source opened it."""
        if self._owns_store:
            self._store.close()

    def __enter__(self) -> "StoreSource":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StoreSource(path={self._store.path!r}, name={self._name!r})"

"""Stable entity partitioning for sharded execution.

Entity-sharded parallelism (see :mod:`repro.parallel`) only works if every
process, thread and machine agrees on which shard an entity belongs to —
*forever*.  Python's built-in ``hash()`` cannot provide that: string hashing
is randomised per interpreter process (``PYTHONHASHSEED``) and its algorithm
is a CPython implementation detail.  :func:`entity_partition_key` therefore
derives the key from a keyed BLAKE2b digest of the entity's UTF-8 bytes,
which is

* **stable** across processes, Python versions and platforms,
* **seedable** — different ``seed`` values give independent partitionings
  (useful to re-balance a pathological key distribution without touching
  data), and
* **uniform** — the low 64 digest bits are effectively uniformly
  distributed, so ``entity_partition_key(e, seed) % num_shards`` balances
  shards for any realistic entity population.

The same digest also drives the seeded entity shuffle of
:meth:`repro.io.DataSource.iter_batches`, keeping shuffled arrival orders
reproducible across interpreter runs.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.types import EntityKey

__all__ = ["entity_partition_key", "seeded_entity_order"]

#: Number of digest bytes used for the partition key (64 bits).
_DIGEST_SIZE = 8


def entity_partition_key(entity: EntityKey, seed: int = 0) -> int:
    """A stable, uniform partition key for ``entity`` in ``[0, 2**64)``.

    The key is the little-endian integer value of an 8-byte keyed BLAKE2b
    digest of ``str(entity)`` encoded as UTF-8, with ``seed`` folded into
    the digest key.  It does **not** depend on ``hash()`` and is therefore
    identical across interpreter processes, Python versions and platforms —
    the property :class:`~repro.parallel.ShardPlanner` relies on to route an
    entity to the same shard on every run.

    Parameters
    ----------
    entity:
        The entity key.  Non-string keys are converted with ``str`` first,
        so any key that round-trips through ``str`` partitions consistently.
    seed:
        Partitioning seed.  Different seeds give independent partitionings;
        the default of 0 is the library-wide canonical partitioning.

    Examples
    --------
    >>> entity_partition_key("Harry Potter") == entity_partition_key("Harry Potter")
    True
    >>> entity_partition_key("Harry Potter") % 4 in range(4)
    True
    """
    key = int(seed).to_bytes(8, "little", signed=True)
    digest = hashlib.blake2b(
        str(entity).encode("utf-8"), digest_size=_DIGEST_SIZE, key=key
    ).digest()
    return int.from_bytes(digest, "little")


def seeded_entity_order(entities: Iterable[EntityKey], seed: int) -> list[EntityKey]:
    """Reorder ``entities`` by their seeded partition digest, deterministically.

    This is the canonical seeded entity shuffle shared by every
    :class:`~repro.io.DataSource` (in-memory, file-backed and the
    disk-backed :class:`~repro.io.store_source.StoreSource`): entities sort
    by ``(entity_partition_key(entity, seed), first_seen_position)``, so a
    given seed reproduces the same arrival order regardless of which
    representation the triples live in.  Only the entity *keys* are held in
    memory — never their triples — which keeps the shuffle cheap even for
    out-of-core corpora.
    """
    decorated = sorted(
        enumerate(entities),
        key=lambda item: (entity_partition_key(item[1], seed=seed), item[0]),
    )
    return [entity for _, entity in decorated]

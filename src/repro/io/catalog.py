"""The :class:`DatasetCatalog`: named, parameterised data sources.

Mirrors the engine's :class:`~repro.engine.registry.MethodRegistry` on the
data side: every dataset the library can produce — the paper's worked
example, the book / movie / LTM-generative simulators, the adversarial
stress profile — is registered under a canonical string key with metadata
and aliases, so workloads are reachable by name from
:class:`~repro.engine.TruthEngine`, :func:`repro.discover` and the
``repro-truth`` CLI (``datasets`` subcommand, ``integrate --source``).

:func:`as_source` is the universal coercion every retrofitted entry point
uses: it turns a :class:`~repro.io.base.DataSource`, a catalog key, a file
path, a :class:`~repro.data.raw.RawDatabase`, a relational table, a
:class:`~repro.data.dataset.TruthDataset` or any triple iterable into a
:class:`~repro.io.base.DataSource`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping

from repro.data.dataset import TruthDataset
from repro.data.raw import RawDatabase
from repro.exceptions import ConfigurationError
from repro.io.base import DataSource
from repro.io.sources import (
    DatasetSource,
    JsonDatasetSource,
    MemorySource,
    SyntheticSource,
    TableSource,
    TripleFileSource,
)
from repro.store.table import Table
from repro.types import Triple

__all__ = [
    "DatasetSpec",
    "DatasetCatalog",
    "default_catalog",
    "register_dataset",
    "as_source",
]


def _normalise_key(name: str) -> str:
    """Canonicalise a dataset name for lookup: lowercase, separators unified."""
    return name.strip().lower().replace("-", "_").replace(" ", "_")


@dataclass(frozen=True)
class DatasetSpec:
    """One registered dataset and its metadata.

    Attributes
    ----------
    key:
        Canonical catalog key (lowercase, underscore-separated).
    factory:
        Callable building a fresh :class:`~repro.io.base.DataSource` from
        keyword parameters (e.g. ``seed``, size overrides).
    summary:
        One-line description, shown by ``repro-truth datasets``.
    kind:
        Dataset family (``"example"``, ``"synthetic"``, ...).
    has_labels:
        Whether sources built from this spec carry ground truth.
    aliases:
        Additional accepted names (matched after normalisation).
    streams:
        Whether sources built from this spec stream (bounded-memory
        iteration) rather than materialise their triples — mirrored from
        :attr:`~repro.io.base.DataSource.streams` and shown by
        ``repro-truth datasets``.
    """

    key: str
    factory: Callable[..., DataSource]
    summary: str
    kind: str = "synthetic"
    has_labels: bool = True
    aliases: tuple[str, ...] = ()
    streams: bool = False

    def metadata(self) -> dict[str, Any]:
        """The spec's metadata as a plain dict (for display and serialisation)."""
        return {
            "key": self.key,
            "summary": self.summary,
            "kind": self.kind,
            "has_labels": self.has_labels,
            "aliases": list(self.aliases),
            "streams": self.streams,
        }


class DatasetCatalog:
    """A name-to-dataset catalog with alias resolution and metadata.

    Deliberately instance-based — tests and embedders can build private
    catalogs — while :func:`default_catalog` exposes the process-wide one
    the engine, the coercion layer and the CLI share.
    """

    def __init__(self) -> None:
        self._specs: dict[str, DatasetSpec] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------------------
    def register(self, spec: DatasetSpec, replace: bool = False) -> DatasetSpec:
        """Add ``spec`` to the catalog and index its aliases."""
        key = _normalise_key(spec.key)
        if key != spec.key:
            spec = DatasetSpec(**{**spec.__dict__, "key": key})
        if not replace and (key in self._specs or key in self._aliases):
            raise ConfigurationError(f"dataset {spec.key!r} is already registered")
        self._specs[key] = spec
        for alias in spec.aliases:
            normalised = _normalise_key(alias)
            if normalised == key:
                continue
            if normalised in self._specs:
                raise ConfigurationError(
                    f"alias {alias!r} collides with the registered dataset {normalised!r}"
                )
            existing = self._aliases.get(normalised)
            if not replace and existing is not None and existing != key:
                raise ConfigurationError(f"alias {alias!r} already points at {existing!r}")
            self._aliases[normalised] = key
        return spec

    def register_dataset(
        self,
        key: str,
        factory: Callable[..., DataSource],
        summary: str,
        **metadata: Any,
    ) -> DatasetSpec:
        """Convenience wrapper building and registering a :class:`DatasetSpec`."""
        return self.register(DatasetSpec(key=key, factory=factory, summary=summary, **metadata))

    def register_store(
        self,
        key: str,
        path: str | Path,
        summary: str | None = None,
        **metadata: Any,
    ) -> DatasetSpec:
        """Register an on-disk :class:`~repro.store.claims.ClaimStore` by name.

        Sources built from the spec are fresh read-only
        :class:`~repro.io.store_source.StoreSource` handles over ``path``,
        so the same store can back catalog lookups from many workers.
        """
        from repro.io.store_source import StoreSource

        store_path = str(path)

        def factory(**params: Any) -> DataSource:
            return StoreSource(store_path, name=_normalise_key(key), **params)

        metadata.setdefault("kind", "store")
        metadata.setdefault("has_labels", False)
        metadata.setdefault("streams", True)
        return self.register_dataset(
            key,
            factory,
            summary if summary is not None else f"Claim store at {store_path}",
            **metadata,
        )

    # -- lookup ---------------------------------------------------------------------
    def resolve(self, name: str) -> str:
        """Return the canonical key for ``name`` (which may be an alias)."""
        key = _normalise_key(name)
        if key in self._specs:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise ConfigurationError(
            f"unknown dataset {name!r}; registered datasets: {sorted(self._specs)}"
        )

    def spec(self, name: str) -> DatasetSpec:
        """The :class:`DatasetSpec` registered under ``name`` or one of its aliases."""
        return self._specs[self.resolve(name)]

    def create(self, name: str, **params: Any) -> DataSource:
        """Build the :class:`~repro.io.base.DataSource` registered under ``name``."""
        return self.spec(name).factory(**params)

    def names(self) -> list[str]:
        """Canonical keys of every registered dataset, in registration order."""
        return list(self._specs)

    def specs(self) -> list[DatasetSpec]:
        """Every registered spec, in registration order."""
        return list(self._specs.values())

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        try:
            self.resolve(name)
        except ConfigurationError:
            return False
        return True

    def __iter__(self) -> Iterator[DatasetSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatasetCatalog({sorted(self._specs)})"


# ---------------------------------------------------------------------------
# The default catalog
# ---------------------------------------------------------------------------
#: The worked example of paper Tables 1-4 (the Harry Potter cast).
PAPER_EXAMPLE_TRIPLES: tuple[Triple, ...] = (
    Triple("Harry Potter", "Daniel Radcliffe", "IMDB"),
    Triple("Harry Potter", "Emma Watson", "IMDB"),
    Triple("Harry Potter", "Rupert Grint", "IMDB"),
    Triple("Harry Potter", "Daniel Radcliffe", "Netflix"),
    Triple("Harry Potter", "Daniel Radcliffe", "BadSource.com"),
    Triple("Harry Potter", "Emma Watson", "BadSource.com"),
    Triple("Harry Potter", "Johnny Depp", "BadSource.com"),
    Triple("Pirates 4", "Johnny Depp", "Hulu.com"),
)

PAPER_EXAMPLE_TRUTH: dict[tuple[str, str], bool] = {
    ("Harry Potter", "Daniel Radcliffe"): True,
    ("Harry Potter", "Emma Watson"): True,
    ("Harry Potter", "Rupert Grint"): True,
    ("Harry Potter", "Johnny Depp"): False,
    ("Pirates 4", "Johnny Depp"): True,
}


def _paper_example_source() -> MemorySource:
    return MemorySource(
        PAPER_EXAMPLE_TRIPLES, truth=dict(PAPER_EXAMPLE_TRUTH), name="paper_example"
    )


def _books_source(seed: int | None = 17, **overrides: Any) -> SyntheticSource:
    from repro.synth.books import BookAuthorConfig, BookAuthorSimulator

    config = BookAuthorConfig(seed=seed, **overrides)
    return SyntheticSource(
        lambda: BookAuthorSimulator(config).generate(),
        name="books",
        metadata={"seed": seed, **overrides},
    )


def _books_small_source(seed: int | None = 17) -> SyntheticSource:
    from repro.synth.books import BookAuthorConfig, BookAuthorSimulator

    config = BookAuthorConfig.small(seed=seed)
    return SyntheticSource(
        lambda: BookAuthorSimulator(config).generate(),
        name="books_small",
        metadata={"seed": seed},
    )


def _movies_source(seed: int | None = 29, **overrides: Any) -> SyntheticSource:
    from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

    config = MovieDirectorConfig(seed=seed, **overrides)
    return SyntheticSource(
        lambda: MovieDirectorSimulator(config).generate(),
        name="movies",
        metadata={"seed": seed, **overrides},
    )


def _movies_small_source(seed: int | None = 29) -> SyntheticSource:
    from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

    config = MovieDirectorConfig.small(seed=seed)
    return SyntheticSource(
        lambda: MovieDirectorSimulator(config).generate(),
        name="movies_small",
        metadata={"seed": seed},
    )


def _ltm_generative_source(seed: int | None = 42, **overrides: Any) -> SyntheticSource:
    from repro.synth.ltm_generative import LTMGenerativeConfig, generate_ltm_dataset

    config = LTMGenerativeConfig(seed=seed, **overrides)
    return SyntheticSource(
        lambda: generate_ltm_dataset(config),
        name="ltm_generative",
        metadata={"seed": seed, **overrides},
    )


def _adversarial_source(seed: int | None = 41, **overrides: Any) -> SyntheticSource:
    """The Section 7 stress profile: a movie feed with two adversarial sources."""
    from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

    config = MovieDirectorConfig(seed=seed, **overrides)

    def generate() -> TruthDataset:
        simulator = MovieDirectorSimulator(config)
        simulator.source_quality = dict(simulator.source_quality)
        simulator.source_quality["scraperbot"] = (0.30, 0.05)
        simulator.source_quality["linkfarm"] = (0.25, 0.10)
        return simulator.generate()

    return SyntheticSource(
        generate,
        name="adversarial",
        metadata={"seed": seed, "adversarial_sources": ["scraperbot", "linkfarm"], **overrides},
    )


def _populate(catalog: DatasetCatalog) -> DatasetCatalog:
    """Register the library's dataset catalogue into ``catalog``."""
    catalog.register_dataset(
        "paper_example",
        _paper_example_source,
        "The worked example of paper Tables 1-4 (Harry Potter cast)",
        kind="example",
        aliases=("example", "harry_potter"),
    )
    catalog.register_dataset(
        "books",
        _books_source,
        "Simulated book-seller crawl (first-author-only and noisy sellers)",
        aliases=("book_authors",),
    )
    catalog.register_dataset(
        "books_small",
        _books_small_source,
        "Small book-seller crawl for tests and smoke runs",
    )
    catalog.register_dataset(
        "movies",
        _movies_source,
        "Simulated movie-director feed with the 12 sources of paper Table 8",
        aliases=("movie_directors",),
    )
    catalog.register_dataset(
        "movies_small",
        _movies_small_source,
        "Small movie-director feed for tests and smoke runs",
    )
    catalog.register_dataset(
        "ltm_generative",
        _ltm_generative_source,
        "Synthetic data drawn from LTM's own generative process (Section 6.1.1)",
        aliases=("synthetic", "generative"),
    )
    catalog.register_dataset(
        "adversarial",
        _adversarial_source,
        "Movie feed poisoned with two adversarial sources (Section 7)",
        aliases=("adversarial_movies",),
    )
    return catalog


_DEFAULT_CATALOG: DatasetCatalog | None = None


def default_catalog() -> DatasetCatalog:
    """The process-wide catalog shared by the engine, coercion layer and CLI."""
    global _DEFAULT_CATALOG
    if _DEFAULT_CATALOG is None:
        _DEFAULT_CATALOG = _populate(DatasetCatalog())
    return _DEFAULT_CATALOG


def register_dataset(spec: DatasetSpec, replace: bool = False) -> DatasetSpec:
    """Register ``spec`` into the shared default catalog."""
    return default_catalog().register(spec, replace=replace)


# ---------------------------------------------------------------------------
# Universal coercion
# ---------------------------------------------------------------------------
#: URL prefix selecting the out-of-core claim store: ``store://claims.db``
#: (relative path) or ``store:///var/data/claims.db`` (absolute path).
STORE_URL_PREFIX = "store://"

_SQLITE_MAGIC = b"SQLite format 3\x00"
_SQLITE_SUFFIXES = {".db", ".sqlite", ".sqlite3"}


def _is_sqlite_file(path: Path) -> bool:
    """Whether an existing file looks like a SQLite database (claim store)."""
    if path.suffix.lower() in _SQLITE_SUFFIXES:
        return True
    try:
        with path.open("rb") as handle:
            return handle.read(len(_SQLITE_MAGIC)) == _SQLITE_MAGIC
    except OSError:
        return False


def as_source(
    data: Any,
    catalog: DatasetCatalog | None = None,
    **params: Any,
) -> DataSource:
    """Coerce anything triple-shaped into a :class:`~repro.io.base.DataSource`.

    Accepted inputs, in resolution order:

    * a :class:`~repro.io.base.DataSource` — returned unchanged
      (``params`` are rejected: the source is already built);
    * a :class:`~repro.data.dataset.TruthDataset` — wrapped in
      :class:`~repro.io.sources.DatasetSource`;
    * a :class:`~repro.data.raw.RawDatabase` or any iterable of triples —
      wrapped in :class:`~repro.io.sources.MemorySource`;
    * a relational :class:`~repro.store.Table` — wrapped in
      :class:`~repro.io.sources.TableSource`;
    * a ``store://`` URL — opened as an out-of-core
      :class:`~repro.io.store_source.StoreSource` over the claim store at
      the path after the prefix (``store://claims.db`` is relative,
      ``store:///var/data/claims.db`` absolute);
    * a string or :class:`~pathlib.Path` — resolved as a catalog key (with
      ``params`` passed to the dataset factory) when registered, otherwise
      as an existing triple file (``.json`` dumps load as datasets,
      SQLite files — by ``.db``/``.sqlite`` suffix or magic header — open
      as claim stores).

    Raises
    ------
    ConfigurationError
        If the input cannot be interpreted as a data source.
    """
    if isinstance(data, DataSource):
        if params:
            raise ConfigurationError(
                "parameters are only accepted with a catalog key, not a built DataSource"
            )
        return data
    if isinstance(data, TruthDataset):
        return DatasetSource(data)
    if isinstance(data, RawDatabase):
        return MemorySource(data)
    if isinstance(data, Table):
        return TableSource(data, **params)
    if isinstance(data, (str, Path)):
        resolved = catalog if catalog is not None else default_catalog()
        if isinstance(data, str) and data.startswith(STORE_URL_PREFIX):
            from repro.io.store_source import StoreSource

            store_path = data[len(STORE_URL_PREFIX) :]
            if not store_path:
                raise ConfigurationError(
                    f"{data!r} names no claim store; use store://path/to/claims.db"
                )
            if not Path(store_path).exists():
                raise ConfigurationError(f"claim store {store_path!r} does not exist")
            return StoreSource(store_path, **params)
        if isinstance(data, str) and data in resolved:
            return resolved.create(data, **params)
        path = Path(data)
        if path.exists():
            if path.suffix.lower() == ".json":
                return JsonDatasetSource(path, **params)
            if _is_sqlite_file(path):
                from repro.io.store_source import StoreSource

                return StoreSource(path, **params)
            return TripleFileSource(path, **params)
        raise ConfigurationError(
            f"{str(data)!r} is neither a registered dataset nor an existing file; "
            f"catalog keys: {sorted(resolved.names())}"
        )
    try:
        iter(data)
    except TypeError:
        raise ConfigurationError(
            f"cannot build a DataSource from {type(data).__name__!r}"
        ) from None
    return MemorySource(data, **params)

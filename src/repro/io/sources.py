"""Concrete :class:`~repro.io.base.DataSource` implementations.

One class per historical ingestion style:

* :class:`MemorySource` — in-memory triples (lists, generators,
  :class:`~repro.data.raw.RawDatabase`), optionally with ground truth;
* :class:`TripleFileSource` — delimited triple files written by
  :func:`~repro.data.loaders.save_triples_csv` (TSV by default, CSV by
  extension), optionally paired with a label file;
* :class:`JsonDatasetSource` — full dataset dumps written by
  :func:`~repro.data.loaders.save_dataset_json`;
* :class:`TableSource` — rows of a relational :class:`~repro.store.Table`
  (or a table inside a :class:`~repro.store.Database`) with a configurable
  column mapping;
* :class:`DatasetSource` / :class:`SyntheticSource` — an existing
  :class:`~repro.data.dataset.TruthDataset`, or one generated on demand by a
  simulator factory (the :mod:`repro.synth` generators in the catalog).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.data.dataset import TruthDataset
from repro.data.loaders import iter_triples_csv, load_dataset_json, load_labels_csv
from repro.data.raw import RawDatabase
from repro.exceptions import ConfigurationError
from repro.io.base import DataSource, SourceSchema
from repro.store.database import Database
from repro.store.table import Table
from repro.types import AttributeValue, EntityKey, Triple

__all__ = [
    "MemorySource",
    "TripleFileSource",
    "JsonDatasetSource",
    "TableSource",
    "DatasetSource",
    "SyntheticSource",
]


def _as_triple(item: Triple | tuple) -> Triple:
    return item if isinstance(item, Triple) else Triple(item[0], item[1], item[2])


class MemorySource(DataSource):
    """Triples already in memory: a list, any iterable, or a ``RawDatabase``.

    Parameters
    ----------
    triples:
        The assertions.  Non-``RawDatabase`` iterables are materialised once
        at construction, so generators are safe.
    truth:
        Optional ``(entity, attribute) -> bool`` ground truth used by
        :meth:`to_dataset`.
    name:
        Source name reported by :meth:`schema`.
    """

    def __init__(
        self,
        triples: Iterable[Triple | tuple] | RawDatabase,
        truth: Mapping[tuple[EntityKey, AttributeValue], bool] | None = None,
        name: str = "memory",
    ):
        if isinstance(triples, RawDatabase):
            self._triples: list[Triple] = list(triples)
        else:
            self._triples = [_as_triple(t) for t in triples]
        self._truth = dict(truth) if truth is not None else None
        self._name = name

    def schema(self) -> SourceSchema:
        return SourceSchema(
            name=self._name,
            kind="memory",
            has_labels=self._truth is not None,
            num_triples=len(self._triples),
        )

    def iter_triples(self) -> Iterator[Triple]:
        return iter(self._triples)

    def labels(self) -> dict[tuple[EntityKey, AttributeValue], bool] | None:
        return dict(self._truth) if self._truth is not None else None


class TripleFileSource(DataSource):
    """A delimited triple file with an ``entity/attribute/source`` header.

    The delimiter defaults to tab and is inferred as ``","`` for ``.csv``
    paths.  Rows **stream**: iteration reads (and validates) the file one
    row at a time via :func:`~repro.data.loaders.iter_triples_csv`, so peak
    memory is one batch regardless of file size — the file is never
    materialised into a :class:`~repro.data.raw.RawDatabase` by the source
    itself.  Duplicate rows are therefore passed through; claim-matrix
    construction deduplicates downstream, so fits see identical claims.

    Parameters
    ----------
    path:
        The triple file.
    delimiter:
        Field delimiter; inferred from the extension when omitted.
    labels_path:
        Optional companion label file (``entity/attribute/truth``).
    name:
        Source name; defaults to the file stem.
    """

    streams = True

    def __init__(
        self,
        path: str | Path,
        delimiter: str | None = None,
        labels_path: str | Path | None = None,
        name: str | None = None,
    ):
        self.path = Path(path)
        self.delimiter = delimiter if delimiter is not None else (
            "," if self.path.suffix.lower() == ".csv" else "\t"
        )
        self.labels_path = Path(labels_path) if labels_path is not None else None
        self._name = name if name is not None else self.path.stem
        self._num_triples: int | None = None

    def _read_rows(self) -> Iterator[Triple]:
        """One validated pass over the file (the seam tests count rows at)."""
        return iter_triples_csv(self.path, delimiter=self.delimiter)

    def schema(self) -> SourceSchema:
        return SourceSchema(
            name=self._name,
            kind="file",
            has_labels=self.labels_path is not None,
            num_triples=self._num_triples,
            metadata={"path": str(self.path), "delimiter": self.delimiter},
        )

    def iter_triples(self) -> Iterator[Triple]:
        count = 0
        for triple in self._read_rows():
            count += 1
            yield triple
        # Only a complete pass knows the size; cache it for schema().
        self._num_triples = count

    def labels(self) -> dict[tuple[EntityKey, AttributeValue], bool] | None:
        if self.labels_path is None:
            return None
        # The labels file's delimiter follows its own extension (a .csv label
        # file may accompany a .tsv triple file).
        delimiter = "," if self.labels_path.suffix.lower() == ".csv" else "\t"
        return load_labels_csv(self.labels_path, delimiter=delimiter)


class DatasetSource(DataSource):
    """An existing :class:`~repro.data.dataset.TruthDataset` as a source.

    The canonical triples are the dataset's *positive* claims (what a crawl
    of the underlying sources would contain); negative claims are always
    re-derived by the standard claim-generation rules at fit time.
    :meth:`to_dataset` returns the native dataset unchanged, preserving its
    original claim structure and fact-level labels.
    """

    kind = "dataset"

    def __init__(self, dataset: TruthDataset | None = None, name: str | None = None):
        self._dataset = dataset
        self._name = name

    def dataset(self) -> TruthDataset:
        """The wrapped dataset (generated on demand by subclasses)."""
        if self._dataset is None:  # pragma: no cover - defensive
            raise ConfigurationError("DatasetSource has no dataset")
        return self._dataset

    def schema(self) -> SourceSchema:
        dataset = self.dataset()
        return SourceSchema(
            name=self._name if self._name is not None else dataset.name,
            kind=self.kind,
            has_labels=bool(dataset.labels),
            num_triples=dataset.claims.num_positive_claims,
            metadata=dataset.summary(),
        )

    def iter_triples(self) -> Iterator[Triple]:
        matrix = self.dataset().claims
        names = matrix.source_names
        for fact_id, source_id, obs in zip(
            matrix.claim_fact, matrix.claim_source, matrix.claim_obs
        ):
            if obs:
                fact = matrix.fact(int(fact_id))
                yield Triple(fact.entity, fact.attribute, names[int(source_id)])

    def labels(self) -> dict[tuple[EntityKey, AttributeValue], bool] | None:
        dataset = self.dataset()
        if not dataset.labels:
            return None
        facts = dataset.claims.facts
        return {
            (facts[fact_id].entity, facts[fact_id].attribute): bool(value)
            for fact_id, value in dataset.labels.items()
        }

    def to_dataset(self, name: str | None = None) -> TruthDataset:
        return self.dataset()


class SyntheticSource(DatasetSource):
    """A simulator-backed source: generates its dataset once, on demand.

    Parameters
    ----------
    factory:
        Zero-argument callable returning the simulated
        :class:`~repro.data.dataset.TruthDataset` (already parameterised,
        including its seed — generation is deterministic and cached).
    name:
        Source name.
    metadata:
        Extra metadata surfaced by :meth:`schema` before generation.
    """

    kind = "synthetic"

    def __init__(
        self,
        factory: Callable[[], TruthDataset],
        name: str,
        metadata: Mapping[str, Any] | None = None,
    ):
        super().__init__(dataset=None, name=name)
        self._factory = factory
        self._metadata = dict(metadata or {})

    def dataset(self) -> TruthDataset:
        if self._dataset is None:
            self._dataset = self._factory()
        return self._dataset

    def schema(self) -> SourceSchema:
        if self._dataset is None:
            # Do not force a (potentially expensive) simulation just to
            # describe the source.
            return SourceSchema(
                name=self._name or "synthetic",
                kind=self.kind,
                has_labels=True,
                num_triples=None,
                metadata=dict(self._metadata),
            )
        return super().schema()


class JsonDatasetSource(DatasetSource):
    """A dataset dump written by :func:`~repro.data.loaders.save_dataset_json`.

    Loaded lazily on first use and cached; :meth:`to_dataset` returns the
    stored dataset with its original claim matrix and labels.
    """

    kind = "json"

    def __init__(self, path: str | Path, name: str | None = None):
        self.path = Path(path)
        super().__init__(dataset=None, name=name)

    def dataset(self) -> TruthDataset:
        if self._dataset is None:
            self._dataset = load_dataset_json(self.path)
            if self._name is None:
                self._name = self._dataset.name
        return self._dataset

    def schema(self) -> SourceSchema:
        if self._dataset is None:
            return SourceSchema(
                name=self._name if self._name is not None else self.path.stem,
                kind=self.kind,
                has_labels=True,
                num_triples=None,
                metadata={"path": str(self.path)},
            )
        schema = super().schema()
        return SourceSchema(
            name=schema.name,
            kind=self.kind,
            has_labels=schema.has_labels,
            num_triples=schema.num_triples,
            metadata={**schema.metadata, "path": str(self.path)},
        )


class TableSource(DataSource):
    """Rows of a relational table as assertion triples.

    Parameters
    ----------
    table:
        A :class:`~repro.store.Table`, or a :class:`~repro.store.Database`
        together with ``table_name``.
    table_name:
        Name of the table when ``table`` is a database.
    entity, attribute, source:
        Column names holding the triple fields.
    truth:
        Optional ``(entity, attribute) -> bool`` ground truth.
    name:
        Source name; defaults to the table name.
    """

    def __init__(
        self,
        table: Table | Database,
        table_name: str | None = None,
        *,
        entity: str = "entity",
        attribute: str = "attribute",
        source: str = "source",
        truth: Mapping[tuple[EntityKey, AttributeValue], bool] | None = None,
        name: str | None = None,
    ):
        if isinstance(table, Database):
            if table_name is None:
                raise ConfigurationError(
                    "TableSource over a Database needs table_name"
                )
            table = table.table(table_name)
        self.table = table
        self.columns = {"entity": entity, "attribute": attribute, "source": source}
        missing = [c for c in self.columns.values() if c not in table.column_names]
        if missing:
            raise ConfigurationError(
                f"table {table.name!r} has no column(s) {missing}; "
                f"columns: {list(table.column_names)}"
            )
        self._truth = dict(truth) if truth is not None else None
        self._name = name if name is not None else table.name

    def schema(self) -> SourceSchema:
        return SourceSchema(
            name=self._name,
            kind="table",
            has_labels=self._truth is not None,
            num_triples=len(self.table),
            metadata={"table": self.table.name, "columns": dict(self.columns)},
        )

    def iter_triples(self) -> Iterator[Triple]:
        e, a, s = self.columns["entity"], self.columns["attribute"], self.columns["source"]
        for row in self.table:
            yield Triple(row[e], row[a], row[s])

    def labels(self) -> dict[tuple[EntityKey, AttributeValue], bool] | None:
        return dict(self._truth) if self._truth is not None else None

"""repro — Latent Truth Model truth discovery for data integration.

A from-scratch Python implementation of *"A Bayesian Approach to Discovering
Truth from Conflicting Sources for Data Integration"* (Zhao, Rubinstein,
Gemmell & Han, VLDB 2012): the Latent Truth Model (LTM) with collapsed Gibbs
inference and two-sided source quality, its incremental variant (LTMinc), the
seven baselines the paper compares against, the claim-construction data model,
dataset simulators, a streaming integration engine and a full evaluation
harness.

The canonical API is the unified :mod:`repro.engine`: a
:class:`~repro.engine.TruthEngine` facade with a sklearn-style lifecycle
(``fit`` / ``partial_fit`` / ``predict_proba`` / ``quality_report``), built
from a declarative :class:`~repro.engine.EngineConfig` and resolving solvers
through the :class:`~repro.engine.MethodRegistry`.  On the data side,
:mod:`repro.io` is the single ingestion seam: every workload is a
:class:`~repro.io.DataSource` (in-memory triples, triple files, JSON dumps,
relational tables, the simulators), named sources live in the
:class:`~repro.io.DatasetCatalog`, and anything triple-shaped is coerced
with :func:`repro.io.as_source` — so ``repro.discover("books")`` or
``TruthEngine().fit("movies")`` just work.  On the serve side,
:mod:`repro.serving` snapshots a fitted engine into a versioned
:class:`~repro.serving.TruthArtifact` (``TruthEngine.save`` / ``load``)
and answers point / batch / top-k truth queries — plus closed-form scoring
of unseen claims — through a hot-swappable
:class:`~repro.serving.TruthService` (``repro.serve("books")`` trains and
serves in one line).  On the network side, :mod:`repro.api` fronts a
service with a dependency-free ASGI 3.0 application
(:func:`repro.api.create_app`, CLI: ``repro-truth serve``) — truth / batch /
top-k / score / ingest HTTP endpoints with per-client rate limiting,
idempotency keys, Prometheus metrics and zero-downtime artifact hot swap,
runnable under the bundled stdlib :class:`~repro.api.APIServer` or any
external ASGI server.  On the scale-out side, :mod:`repro.parallel`
hash-partitions any source by entity (:class:`~repro.parallel.ShardPlanner`),
fits shards on serial / thread / process backends
(:class:`~repro.parallel.ParallelExecutor`) and merges them with score
parity — enabled per engine through
:class:`~repro.engine.ExecutionConfig`, e.g.
``TruthEngine(method="ltm", execution={"num_shards": 4, "backend":
"processes"})``.  On the storage side, :mod:`repro.store` adds an
out-of-core tier: corpora that don't fit in RAM live in an append-only,
schema-versioned :class:`~repro.store.ClaimStore` (bundled SQLite behind a
pluggable :class:`~repro.store.StorageBackend`) and stream through ``fit``,
``partial_fit`` and the shard planner via
:class:`~repro.io.StoreSource` (``as_source("store://claims.db")``, CLI:
``repro-truth store load|stats|compact``) without ever materialising.
The PR-1-era deprecation shims (``IntegrationPipeline``,
``OnlineTruthFinder``, ``repro.baselines.registry``) were removed in 1.4
after their two-PR deprecation window.

Quickstart
----------
>>> import repro
>>> result = repro.discover([
...     ("Harry Potter", "Daniel Radcliffe", "imdb"),
...     ("Harry Potter", "Emma Watson", "imdb"),
...     ("Harry Potter", "Rupert Grint", "imdb"),
...     ("Harry Potter", "Daniel Radcliffe", "netflix"),
...     ("Harry Potter", "Daniel Radcliffe", "badsource.com"),
...     ("Harry Potter", "Emma Watson", "badsource.com"),
...     ("Harry Potter", "Johnny Depp", "badsource.com"),
... ], method="ltm", iterations=100, seed=0)
>>> sorted(result.fact_scores) == sorted(
...     (f.entity, str(f.attribute)) for f in result.claims.facts)
True
"""

from repro.types import Triple
from repro.data import (
    ClaimMatrix,
    RawDatabase,
    TruthDataset,
    build_claim_matrix,
    load_dataset_json,
    load_triples_csv,
    save_dataset_json,
    save_triples_csv,
)
from repro.data.claim_builder import ClaimTableBuilder, build_dataset
from repro.core import (
    IncrementalLTM,
    LatentTruthModel,
    LTMPriors,
    BetaPrior,
    PositiveOnlyLTM,
    SourceQualityTable,
    TruthMethod,
    TruthResult,
)
from repro.baselines import (
    AvgLog,
    HubAuthority,
    Investment,
    PooledInvestment,
    ThreeEstimates,
    TruthFinder,
    Voting,
)
from repro.evaluation import (
    ComparisonTable,
    EvaluationMetrics,
    compare_methods,
    evaluate_scores,
    auc_score,
)
from repro.synth import (
    BookAuthorConfig,
    BookAuthorSimulator,
    LTMGenerativeConfig,
    MovieDirectorConfig,
    MovieDirectorSimulator,
    generate_ltm_dataset,
)
from repro.streaming import ClaimStream
from repro.pipeline import IntegrationResult, run_integration
from repro.engine import (
    EngineConfig,
    ExecutionConfig,
    MethodRegistry,
    MethodSpec,
    TruthEngine,
    default_registry,
    discover,
    method_suite,
)
from repro.io import (
    DataSource,
    DatasetCatalog,
    DatasetSpec,
    SourceSchema,
    StoreSource,
    as_source,
    default_catalog,
    entity_partition_key,
    register_dataset,
)
from repro.store import ClaimStore
from repro.parallel import (
    MergedFit,
    ParallelExecutor,
    ShardPlan,
    ShardPlanner,
    merge_artifacts,
)
from repro.serving import TruthArtifact, TruthService, load_artifact, serve
from repro.api import APIServer, ASGIClient, TruthAPI, create_app

__version__ = "1.8.0"

__all__ = [
    "__version__",
    # unified engine (canonical API)
    "TruthEngine",
    "EngineConfig",
    "ExecutionConfig",
    "MethodRegistry",
    "MethodSpec",
    "default_registry",
    "discover",
    "method_suite",
    "run_integration",
    # unified ingestion (canonical data-side API)
    "DataSource",
    "SourceSchema",
    "DatasetCatalog",
    "DatasetSpec",
    "as_source",
    "default_catalog",
    "entity_partition_key",
    "register_dataset",
    # out-of-core claim storage (canonical disk tier)
    "ClaimStore",
    "StoreSource",
    # sharded parallel execution (canonical scale-out API)
    "ShardPlanner",
    "ShardPlan",
    "ParallelExecutor",
    "MergedFit",
    "merge_artifacts",
    # serving (canonical serve-side API)
    "TruthArtifact",
    "TruthService",
    "load_artifact",
    "serve",
    # network serving tier (canonical HTTP API)
    "TruthAPI",
    "create_app",
    "APIServer",
    "ASGIClient",
    # data model
    "Triple",
    "RawDatabase",
    "ClaimMatrix",
    "TruthDataset",
    "ClaimTableBuilder",
    "build_claim_matrix",
    "build_dataset",
    "load_triples_csv",
    "save_triples_csv",
    "load_dataset_json",
    "save_dataset_json",
    # core model
    "LatentTruthModel",
    "IncrementalLTM",
    "PositiveOnlyLTM",
    "LTMPriors",
    "BetaPrior",
    "TruthMethod",
    "TruthResult",
    "SourceQualityTable",
    # baselines
    "Voting",
    "TruthFinder",
    "HubAuthority",
    "AvgLog",
    "Investment",
    "PooledInvestment",
    "ThreeEstimates",
    # evaluation
    "EvaluationMetrics",
    "ComparisonTable",
    "compare_methods",
    "evaluate_scores",
    "auc_score",
    # datasets
    "LTMGenerativeConfig",
    "generate_ltm_dataset",
    "BookAuthorConfig",
    "BookAuthorSimulator",
    "MovieDirectorConfig",
    "MovieDirectorSimulator",
    # streaming / pipeline
    "ClaimStream",
    "IntegrationResult",
]

"""Adversarial-source filtering (paper Section 7, "Adversarial sources").

LTM assumes sources are mostly benign; a source whose majority of data is
false artificially inflates the specificity of benign sources and makes their
occasional false facts harder to detect.  The paper's suggested remedy is to
run LTM iteratively, at each step removing sources whose inferred specificity
and precision fall below a threshold, then re-fitting on the remaining
claims.  :class:`AdversarialSourceFilter` implements that loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.base import TruthResult
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError, ModelError

__all__ = ["AdversarialFilterReport", "AdversarialSourceFilter"]


@dataclass
class AdversarialFilterReport:
    """Outcome of the iterative filtering loop.

    Attributes
    ----------
    removed_sources:
        Names of the sources removed, in removal order.
    rounds:
        Number of fit-and-filter rounds performed.
    final_result:
        The LTM result of the final round (fitted on the surviving sources).
    final_claims:
        The claim matrix of the final round.
    """

    removed_sources: list[str] = field(default_factory=list)
    rounds: int = 0
    final_result: TruthResult | None = None
    final_claims: ClaimMatrix | None = None


class AdversarialSourceFilter:
    """Iteratively drop low-specificity / low-precision sources and re-fit LTM.

    Parameters
    ----------
    specificity_threshold, precision_threshold:
        A source is removed when *both* its inferred specificity and
        precision fall below these thresholds (an aggressively wrong source).
    max_rounds:
        Upper bound on fit-and-filter rounds.
    min_sources:
        Filtering never reduces the source set below this size.
    priors, iterations, seed:
        Passed to the underlying :class:`~repro.core.model.LatentTruthModel`.
    """

    def __init__(
        self,
        specificity_threshold: float = 0.5,
        precision_threshold: float = 0.5,
        max_rounds: int = 5,
        min_sources: int = 2,
        priors: LTMPriors | None = None,
        iterations: int = 50,
        seed: int | None = 19,
    ):
        if not 0.0 <= specificity_threshold <= 1.0 or not 0.0 <= precision_threshold <= 1.0:
            raise ConfigurationError("thresholds must lie in [0, 1]")
        if max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive")
        if min_sources < 1:
            raise ConfigurationError("min_sources must be at least 1")
        self.specificity_threshold = specificity_threshold
        self.precision_threshold = precision_threshold
        self.max_rounds = max_rounds
        self.min_sources = min_sources
        self.priors = priors
        self.iterations = iterations
        self.seed = seed

    def run(self, claims: ClaimMatrix) -> AdversarialFilterReport:
        """Run the fit-and-filter loop on ``claims``."""
        report = AdversarialFilterReport()
        current = claims
        for round_index in range(self.max_rounds):
            model = LatentTruthModel(
                priors=self.priors, iterations=self.iterations, seed=self.seed
            )
            result = model.fit(current)
            report.rounds = round_index + 1
            report.final_result = result
            report.final_claims = current

            quality = result.source_quality
            if quality is None:
                raise ModelError("LTM did not produce a source-quality table")
            suspicious = [
                name
                for i, name in enumerate(quality.source_names)
                if quality.specificity[i] < self.specificity_threshold
                and quality.precision[i] < self.precision_threshold
            ]
            if not suspicious:
                break
            survivors = [
                name for name in current.source_names if name not in set(suspicious)
            ]
            if len(survivors) < self.min_sources:
                break
            report.removed_sources.extend(suspicious)
            current = self._drop_sources(current, set(suspicious))
        return report

    @staticmethod
    def _drop_sources(claims: ClaimMatrix, to_remove: set[str]) -> ClaimMatrix:
        """Return a claim matrix without the claims of ``to_remove`` sources."""
        keep_ids = [i for i, name in enumerate(claims.source_names) if name not in to_remove]
        keep_names = [claims.source_names[i] for i in keep_ids]
        remap = {old: new for new, old in enumerate(keep_ids)}
        mask = [int(s) in remap for s in claims.claim_source]
        import numpy as np

        mask = np.asarray(mask, dtype=bool)
        new_sources = np.array([remap[int(s)] for s in claims.claim_source[mask]], dtype=np.int64)
        return ClaimMatrix(
            facts=claims.facts,
            source_names=keep_names,
            claim_fact=claims.claim_fact[mask],
            claim_source=new_sources,
            claim_obs=claims.claim_obs[mask],
        )

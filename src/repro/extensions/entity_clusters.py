"""Entity-cluster-specific source quality (paper Section 7).

LTM assumes a source is uniformly good or bad across every entity it covers,
which is often false in practice ("IMDB may be accurate with horror movies
but not dramas").  The paper's proposed remedy is to partition entities into
clusters and learn cluster-specific quality.

:class:`EntityClusteredLTM` implements the simplest useful version: the
caller supplies (or a heuristic derives) a cluster label per entity; the
claim matrix is split by cluster; LTM is fitted per cluster; and the
per-cluster quality tables plus a combined per-fact score vector are
returned.  Clusters too small to fit reliably are merged into a catch-all
cluster.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.core.base import SourceQualityTable, TruthResult
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.types import EntityKey

__all__ = ["ClusterResult", "EntityClusteredLTM"]

_FALLBACK_CLUSTER = "__rest__"


@dataclass
class ClusterResult:
    """Per-cluster fit output.

    Attributes
    ----------
    cluster:
        Cluster label.
    entities:
        Entities in the cluster.
    result:
        The LTM result of the cluster's claim matrix.
    fact_ids:
        Fact ids (in the original matrix) covered by the cluster, aligned
        with ``result.scores``.
    """

    cluster: str
    entities: list[EntityKey]
    result: TruthResult
    fact_ids: list[int] = field(default_factory=list)

    @property
    def source_quality(self) -> SourceQualityTable | None:
        """Cluster-specific source quality."""
        return self.result.source_quality


class EntityClusteredLTM:
    """Fit LTM separately per entity cluster and combine the scores.

    Parameters
    ----------
    cluster_assignment:
        Either a mapping of entity to cluster label, or a callable
        ``entity -> label``.  Entities not covered fall into a catch-all
        cluster.
    min_cluster_entities:
        Clusters with fewer entities than this are merged into the catch-all
        cluster (tiny clusters cannot support quality estimation).
    priors, iterations, seed:
        Settings of the per-cluster models.
    """

    def __init__(
        self,
        cluster_assignment: Mapping[EntityKey, str] | Callable[[EntityKey], str],
        min_cluster_entities: int = 5,
        priors: LTMPriors | None = None,
        iterations: int = 50,
        seed: int | None = 31,
    ):
        if min_cluster_entities < 1:
            raise ConfigurationError("min_cluster_entities must be at least 1")
        self.cluster_assignment = cluster_assignment
        self.min_cluster_entities = min_cluster_entities
        self.priors = priors
        self.iterations = iterations
        self.seed = seed

    # -- clustering ------------------------------------------------------------------
    def _label_of(self, entity: EntityKey) -> str:
        if callable(self.cluster_assignment):
            label = self.cluster_assignment(entity)
        else:
            label = self.cluster_assignment.get(entity, _FALLBACK_CLUSTER)
        return str(label) if label is not None else _FALLBACK_CLUSTER

    def _partition(self, claims: ClaimMatrix) -> dict[str, list[EntityKey]]:
        clusters: dict[str, list[EntityKey]] = {}
        for entity in claims.entities:
            clusters.setdefault(self._label_of(entity), []).append(entity)
        # Merge tiny clusters into the catch-all.
        merged: dict[str, list[EntityKey]] = {}
        for label, entities in clusters.items():
            if len(entities) < self.min_cluster_entities and label != _FALLBACK_CLUSTER:
                merged.setdefault(_FALLBACK_CLUSTER, []).extend(entities)
            else:
                merged.setdefault(label, []).extend(entities)
        return merged

    # -- fitting ----------------------------------------------------------------------
    def fit(self, claims: ClaimMatrix) -> tuple[np.ndarray, dict[str, ClusterResult]]:
        """Fit every cluster and return ``(combined_scores, per_cluster_results)``.

        ``combined_scores`` is aligned with the input claim matrix's fact ids.
        """
        if claims.num_facts == 0:
            raise EmptyDatasetError("cannot fit on an empty claim matrix")
        partitions = self._partition(claims)
        combined = np.zeros(claims.num_facts, dtype=float)
        outputs: dict[str, ClusterResult] = {}

        for label, entities in partitions.items():
            fact_ids = [
                fact_id
                for entity in entities
                for fact_id in claims.facts_of_entity(entity)
            ]
            if not fact_ids:
                continue
            sub_matrix = claims.restrict_to_facts(fact_ids)
            model = LatentTruthModel(priors=self.priors, iterations=self.iterations, seed=self.seed)
            result = model.fit(sub_matrix)
            ordered_ids = sorted(set(fact_ids))
            combined[ordered_ids] = result.scores
            outputs[label] = ClusterResult(
                cluster=label,
                entities=list(entities),
                result=result,
                fact_ids=ordered_ids,
            )
        return combined, outputs

    @staticmethod
    def quality_divergence(results: Mapping[str, ClusterResult]) -> dict[str, float]:
        """Per-source spread of sensitivity across clusters (max - min).

        Large values indicate entity-dependent quality — the phenomenon this
        extension exists to capture.
        """
        per_source: dict[str, list[float]] = {}
        for cluster_result in results.values():
            quality = cluster_result.source_quality
            if quality is None:
                continue
            for i, name in enumerate(quality.source_names):
                per_source.setdefault(name, []).append(float(quality.sensitivity[i]))
        return {
            name: (max(values) - min(values)) if len(values) > 1 else 0.0
            for name, values in per_source.items()
        }

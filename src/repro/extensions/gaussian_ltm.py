"""Real-valued loss extension (paper Section 7, "Real-valued loss").

For numeric attribute types (release years, populations, running times) a 0/1
error model is too coarse: a source that is off by one is better than one
that is off by a thousand.  The paper sketches replacing the Bernoulli
observation model with a Gaussian around the latent true value, with
per-source quality expressed as an error variance.

:class:`GaussianTruthModel` implements that extension with an
expectation-maximisation-style alternation:

* the latent true value of each entity is the precision-weighted average of
  the claimed values (sources with lower error variance weigh more);
* each source's error variance is re-estimated from its residuals against the
  current truth estimates (with an inverse-gamma prior for stability).

It is the numeric analogue of LTM's "trust good sources more, learn who is
good from the consensus" loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError, EmptyDatasetError

__all__ = ["GaussianClaim", "GaussianTruthResult", "GaussianTruthModel"]


@dataclass(frozen=True)
class GaussianClaim:
    """One numeric claim: ``source`` asserts that ``entity`` has ``value``."""

    entity: str
    value: float
    source: str


@dataclass
class GaussianTruthResult:
    """Fitted output of the Gaussian truth model.

    Attributes
    ----------
    truth_estimates:
        Mapping of entity to the inferred true value.
    truth_uncertainty:
        Mapping of entity to the posterior standard deviation of the estimate.
    source_variance:
        Mapping of source to its inferred error variance (low = reliable).
    iterations:
        Number of EM iterations performed.
    """

    truth_estimates: dict[str, float] = field(default_factory=dict)
    truth_uncertainty: dict[str, float] = field(default_factory=dict)
    source_variance: dict[str, float] = field(default_factory=dict)
    iterations: int = 0

    def source_reliability_ranking(self) -> list[tuple[str, float]]:
        """Sources ordered from most to least reliable (ascending variance)."""
        return sorted(self.source_variance.items(), key=lambda kv: kv[1])


class GaussianTruthModel:
    """EM-style truth discovery for a numeric attribute type.

    Parameters
    ----------
    iterations:
        Number of alternating truth / variance updates.
    prior_variance:
        Inverse-gamma-style prior pseudo-variance for each source (stabilises
        sources with few claims).
    prior_strength:
        Pseudo-count of the variance prior.
    min_variance:
        Lower clamp on source variances (avoids a single source becoming
        infinitely trusted).
    """

    def __init__(
        self,
        iterations: int = 25,
        prior_variance: float = 1.0,
        prior_strength: float = 2.0,
        min_variance: float = 1e-6,
    ):
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if prior_variance <= 0 or prior_strength <= 0:
            raise ConfigurationError("prior_variance and prior_strength must be positive")
        if min_variance <= 0:
            raise ConfigurationError("min_variance must be positive")
        self.iterations = iterations
        self.prior_variance = prior_variance
        self.prior_strength = prior_strength
        self.min_variance = min_variance

    def fit(self, claims: Iterable[GaussianClaim] | Sequence[tuple[str, float, str]]) -> GaussianTruthResult:
        """Fit the model to numeric claims and return truth and quality estimates."""
        normalised: list[GaussianClaim] = []
        for claim in claims:
            if isinstance(claim, GaussianClaim):
                normalised.append(claim)
            else:
                entity, value, source = claim
                normalised.append(GaussianClaim(entity=entity, value=float(value), source=source))
        if not normalised:
            raise EmptyDatasetError("the Gaussian truth model requires at least one claim")

        entities = sorted({c.entity for c in normalised})
        sources = sorted({c.source for c in normalised})
        entity_index = {e: i for i, e in enumerate(entities)}
        source_index = {s: i for i, s in enumerate(sources)}

        entity_ids = np.array([entity_index[c.entity] for c in normalised], dtype=np.int64)
        source_ids = np.array([source_index[c.source] for c in normalised], dtype=np.int64)
        values = np.array([c.value for c in normalised], dtype=float)

        variance = np.full(len(sources), self.prior_variance, dtype=float)
        truth = np.zeros(len(entities), dtype=float)
        uncertainty = np.zeros(len(entities), dtype=float)

        source_claim_counts = np.bincount(source_ids, minlength=len(sources)).astype(float)

        iterations_run = 0
        for iteration in range(self.iterations):
            iterations_run = iteration + 1
            # E-step: precision-weighted truth estimate per entity.
            precision = 1.0 / np.maximum(variance, self.min_variance)
            weights = precision[source_ids]
            weighted_sum = np.zeros(len(entities), dtype=float)
            weight_total = np.zeros(len(entities), dtype=float)
            np.add.at(weighted_sum, entity_ids, weights * values)
            np.add.at(weight_total, entity_ids, weights)
            truth = weighted_sum / np.maximum(weight_total, 1e-12)
            uncertainty = np.sqrt(1.0 / np.maximum(weight_total, 1e-12))

            # M-step: per-source variance from residuals against the
            # *leave-one-out* truth estimate.  Grading a source against an
            # estimate that includes its own claim lets a lucky source grab
            # all the weight and lock the fixed point onto itself; removing
            # its own contribution prevents that collapse.
            loo_weight = weight_total[entity_ids] - weights
            loo_sum = weighted_sum[entity_ids] - weights * values
            loo_truth = np.where(
                loo_weight > 1e-12,
                loo_sum / np.maximum(loo_weight, 1e-12),
                truth[entity_ids],
            )
            residuals = (values - loo_truth) ** 2
            residual_sum = np.zeros(len(sources), dtype=float)
            np.add.at(residual_sum, source_ids, residuals)
            variance = (residual_sum + self.prior_strength * self.prior_variance) / (
                source_claim_counts + self.prior_strength
            )
            variance = np.maximum(variance, self.min_variance)

        return GaussianTruthResult(
            truth_estimates={e: float(truth[entity_index[e]]) for e in entities},
            truth_uncertainty={e: float(uncertainty[entity_index[e]]) for e in entities},
            source_variance={s: float(variance[source_index[s]]) for s in sources},
            iterations=iterations_run,
        )

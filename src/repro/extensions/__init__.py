"""Extensions sketched in the paper's Section 7.

These are the generalisations the paper lists as future directions, built on
top of the core model:

* :class:`~repro.extensions.adversarial.AdversarialSourceFilter` — iteratively
  remove sources whose inferred specificity/precision falls below a
  threshold and re-fit, protecting benign sources from adversarial data.
* :class:`~repro.extensions.gaussian_ltm.GaussianTruthModel` — a real-valued
  loss variant for numeric attributes, replacing the Bernoulli observation
  model with a Gaussian around the latent true value.
* :class:`~repro.extensions.multi_attribute.MultiAttributeLTM` — joint
  modelling of several attribute types with a shared source-quality prior.
* :class:`~repro.extensions.entity_clusters.EntityClusteredLTM` — entity-
  cluster-specific source quality.
"""

from repro.extensions.adversarial import AdversarialFilterReport, AdversarialSourceFilter
from repro.extensions.gaussian_ltm import GaussianClaim, GaussianTruthModel, GaussianTruthResult
from repro.extensions.multi_attribute import AttributeTypeResult, MultiAttributeLTM
from repro.extensions.entity_clusters import EntityClusteredLTM, ClusterResult

__all__ = [
    "AdversarialSourceFilter",
    "AdversarialFilterReport",
    "GaussianClaim",
    "GaussianTruthModel",
    "GaussianTruthResult",
    "MultiAttributeLTM",
    "AttributeTypeResult",
    "EntityClusteredLTM",
    "ClusterResult",
]

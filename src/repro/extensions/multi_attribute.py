"""Joint modelling of multiple attribute types (paper Section 7).

The base model treats each attribute type independently.  The paper suggests
tying them together through source-specific quality priors regularised by a
global prior, so that what is learned about a source's reliability on one
attribute type (say, authors) informs its prior on another (say, publishers).

:class:`MultiAttributeLTM` implements an empirical-Bayes version of that
idea: it fits LTM on every attribute type, pools each source's expected
confusion counts across types into a shared per-source prior (discounted by
``sharing_weight``), and re-fits each type under the shared prior.  Sources
that are consistently reliable get a head start on types where they have
little data — the low-data-volume setting the paper calls out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.core.base import SourceQualityTable, TruthResult
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.core.quality import expected_confusion_counts
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError, EmptyDatasetError

__all__ = ["AttributeTypeResult", "MultiAttributeLTM"]


@dataclass
class AttributeTypeResult:
    """Per-attribute-type output of the joint fit.

    Attributes
    ----------
    attribute_type:
        Name of the attribute type (e.g. ``"author"`` or ``"publisher"``).
    result:
        The LTM result of the final (shared-prior) fit.
    first_pass_result:
        The result of the independent first-pass fit, kept for comparison.
    """

    attribute_type: str
    result: TruthResult
    first_pass_result: TruthResult = field(repr=False, default=None)

    @property
    def source_quality(self) -> SourceQualityTable | None:
        """Source quality of the final fit."""
        return self.result.source_quality


class MultiAttributeLTM:
    """Two-pass joint LTM over several attribute types with quality sharing.

    Parameters
    ----------
    priors:
        Base priors used by every per-type fit.
    sharing_weight:
        Fraction of each source's pooled cross-type expected counts that is
        carried into the second-pass prior (0 disables sharing, 1 shares the
        full pooled counts).
    iterations, seed:
        Sampler settings of the underlying per-type models.
    """

    def __init__(
        self,
        priors: LTMPriors | None = None,
        sharing_weight: float = 0.5,
        iterations: int = 50,
        seed: int | None = 23,
    ):
        if not 0.0 <= sharing_weight <= 1.0:
            raise ConfigurationError("sharing_weight must lie in [0, 1]")
        self.priors = priors if priors is not None else LTMPriors()
        self.sharing_weight = sharing_weight
        self.iterations = iterations
        self.seed = seed

    def fit(self, claims_by_type: Mapping[str, ClaimMatrix]) -> dict[str, AttributeTypeResult]:
        """Fit every attribute type, sharing source quality across them.

        Parameters
        ----------
        claims_by_type:
            Mapping from attribute-type name to its claim matrix.  Sources
            are matched across types by name.
        """
        if not claims_by_type:
            raise EmptyDatasetError("at least one attribute type is required")

        # First pass: independent fits.
        first_pass: dict[str, TruthResult] = {}
        for attribute_type, claims in claims_by_type.items():
            model = LatentTruthModel(priors=self.priors, iterations=self.iterations, seed=self.seed)
            first_pass[attribute_type] = model.fit(claims)

        if self.sharing_weight == 0.0 or len(claims_by_type) == 1:
            return {
                attribute_type: AttributeTypeResult(
                    attribute_type=attribute_type,
                    result=result,
                    first_pass_result=result,
                )
                for attribute_type, result in first_pass.items()
            }

        # Pool each source's expected confusion counts across the *other* types.
        pooled: dict[str, np.ndarray] = {}
        for attribute_type, claims in claims_by_type.items():
            expected = expected_confusion_counts(claims, first_pass[attribute_type].scores)
            for sid, name in enumerate(claims.source_names):
                pooled.setdefault(name, np.zeros((2, 2), dtype=float))
                pooled[name] += expected[sid]

        # Second pass: per-type fits whose priors include the shared counts
        # from every other attribute type (scaled by the sharing weight).
        outputs: dict[str, AttributeTypeResult] = {}
        for attribute_type, claims in claims_by_type.items():
            own_expected = expected_confusion_counts(claims, first_pass[attribute_type].scores)
            shared_counts: dict[str, np.ndarray] = {}
            for sid, name in enumerate(claims.source_names):
                other = pooled[name] - own_expected[sid]
                shared_counts[name] = np.maximum(other, 0.0) * self.sharing_weight
            shared_priors = self.priors.with_learned_quality(claims.source_names, shared_counts)
            model = LatentTruthModel(priors=shared_priors, iterations=self.iterations, seed=self.seed)
            outputs[attribute_type] = AttributeTypeResult(
                attribute_type=attribute_type,
                result=model.fit(claims),
                first_pass_result=first_pass[attribute_type],
            )
        return outputs

    def global_source_quality(
        self, results: Mapping[str, AttributeTypeResult]
    ) -> dict[str, dict[str, float]]:
        """Average each source's quality across attribute types (informational)."""
        sums: dict[str, dict[str, float]] = {}
        counts: dict[str, int] = {}
        for type_result in results.values():
            quality = type_result.source_quality
            if quality is None:
                continue
            for i, name in enumerate(quality.source_names):
                entry = sums.setdefault(name, {"sensitivity": 0.0, "specificity": 0.0})
                entry["sensitivity"] += float(quality.sensitivity[i])
                entry["specificity"] += float(quality.specificity[i])
                counts[name] = counts.get(name, 0) + 1
        return {
            name: {k: v / counts[name] for k, v in entry.items()}
            for name, entry in sums.items()
        }

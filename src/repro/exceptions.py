"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library-specific failures with a single ``except`` clause
while still being able to distinguish finer-grained categories.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "StoreError",
    "DuplicateKeyError",
    "UnknownColumnError",
    "DataModelError",
    "DuplicateRowError",
    "UnknownFactError",
    "UnknownSourceError",
    "EmptyDatasetError",
    "ModelError",
    "NotFittedError",
    "PriorError",
    "ConvergenceWarning",
    "EvaluationError",
    "MissingGroundTruthError",
    "StreamError",
    "ConfigurationError",
    "ArtifactError",
    "ArtifactVersionWarning",
]


class ReproError(Exception):
    """Base class for all exceptions raised by the :mod:`repro` library."""


# ---------------------------------------------------------------------------
# Storage layer
# ---------------------------------------------------------------------------
class StoreError(ReproError):
    """Base class for errors raised by the in-memory relational store."""


class SchemaError(StoreError):
    """A table schema is invalid or a row does not match its table schema."""


class DuplicateKeyError(StoreError):
    """A row violates a unique/primary key constraint."""


class UnknownColumnError(StoreError):
    """A query referenced a column that does not exist in the table."""


# ---------------------------------------------------------------------------
# Data model layer
# ---------------------------------------------------------------------------
class DataModelError(ReproError):
    """Base class for errors in the truth-finding data model."""


class DuplicateRowError(DataModelError):
    """A duplicate (entity, attribute, source) triple was inserted."""


class UnknownFactError(DataModelError):
    """A claim or truth label referenced a fact id that does not exist."""


class UnknownSourceError(DataModelError):
    """An operation referenced a source that does not exist."""


class EmptyDatasetError(DataModelError):
    """An operation requiring data was attempted on an empty dataset."""


# ---------------------------------------------------------------------------
# Model / inference layer
# ---------------------------------------------------------------------------
class ModelError(ReproError):
    """Base class for errors raised by truth-finding models."""


class NotFittedError(ModelError):
    """A result or quality estimate was requested before ``fit`` was called."""


class PriorError(ModelError):
    """A prior specification (Beta pseudo-counts) is invalid."""


class ConvergenceWarning(UserWarning):
    """Raised (as a warning) when an iterative method fails to converge."""


# ---------------------------------------------------------------------------
# Evaluation layer
# ---------------------------------------------------------------------------
class EvaluationError(ReproError):
    """Base class for errors raised by the evaluation harness."""


class MissingGroundTruthError(EvaluationError):
    """An evaluation was attempted on facts without ground-truth labels."""


# ---------------------------------------------------------------------------
# Streaming layer
# ---------------------------------------------------------------------------
class StreamError(ReproError):
    """Base class for errors raised by the streaming integration engine."""


class ConfigurationError(ReproError):
    """A configuration object contained inconsistent or invalid settings."""


# ---------------------------------------------------------------------------
# Serving layer
# ---------------------------------------------------------------------------
class ArtifactError(ReproError):
    """A model artifact is missing, malformed or cannot be (de)serialised."""


class ArtifactVersionWarning(UserWarning):
    """An artifact was written by a different library version than the reader."""

"""Shared type aliases and small value objects used across the library.

The truth-finding data model (paper Section 2) speaks about *entities*,
*attribute values*, *sources*, *facts* and *claims*.  This module pins down
the Python representations used throughout :mod:`repro` so that every
subpackage agrees on what those objects look like.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

__all__ = [
    "EntityKey",
    "AttributeValue",
    "SourceName",
    "FactId",
    "SourceId",
    "Observation",
    "TruthLabel",
    "Triple",
]

# An entity key identifies the real-world object a fact is about, e.g. a book
# ISBN or a movie title.  Any hashable string-like key works.
EntityKey = str

# A single value of the (multi-valued) attribute type under integration,
# e.g. one author name or one director name.
AttributeValue = Union[str, float, int]

# Human readable name of a data source, e.g. "imdb" or "netflix".
SourceName = str

# Integer primary keys assigned by the data model when building fact/claim
# tables.  Fact ids are dense indices in ``range(num_facts)`` and source ids
# are dense indices in ``range(num_sources)``.
FactId = int
SourceId = int

# A claim observation: True means the source asserted the fact (positive
# claim), False means the source asserted the entity but not this fact
# (negative claim).
Observation = bool

# A truth label for a fact.
TruthLabel = bool


@dataclass(frozen=True, slots=True)
class Triple:
    """One row of the raw input database: ``(entity, attribute, source)``.

    This mirrors Definition 1 of the paper: each row states that ``source``
    asserted that ``entity`` has attribute value ``attribute``.

    Attributes
    ----------
    entity:
        Key identifying the entity the assertion is about.
    attribute:
        The asserted attribute value (one element of the multi-valued
        attribute type).
    source:
        Name of the data source making the assertion.
    """

    entity: EntityKey
    attribute: AttributeValue
    source: SourceName

    def as_tuple(self) -> tuple[EntityKey, AttributeValue, SourceName]:
        """Return the triple as a plain ``(entity, attribute, source)`` tuple."""
        return (self.entity, self.attribute, self.source)

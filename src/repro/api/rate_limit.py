"""Per-client token-bucket rate limiting for the API tier.

Classic token bucket: each client key owns a bucket holding up to ``burst``
tokens that refills continuously at ``rate`` tokens/second; a request costs
one token, and a request finding the bucket empty is rejected together with
the number of seconds after which one whole token will have accumulated —
the value the API returns as ``Retry-After``.

The limiter is deliberately clock-injectable (``clock=time.monotonic`` by
default) so tests drive it deterministically, and bounds its own memory: at
most ``max_clients`` buckets are tracked, evicting the least-recently-used
bucket beyond that — an evicted client simply starts over with a full
bucket, which errs on the side of serving.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from repro.exceptions import ConfigurationError

__all__ = ["RateLimiter"]


class RateLimiter:
    """Token buckets keyed by client identity.

    Parameters
    ----------
    rate:
        Sustained tokens (requests) per second granted to each client.
    burst:
        Bucket capacity — the largest instantaneous burst a client may
        spend.  Defaults to ``rate`` (one second's worth).
    clock:
        Monotonic time source, injectable for deterministic tests.
    max_clients:
        Upper bound on tracked buckets (LRU-evicted beyond it).
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        *,
        clock: Callable[[], float] = time.monotonic,
        max_clients: int = 4096,
    ):
        if rate <= 0:
            raise ConfigurationError("rate limit must be positive (omit the limiter to disable)")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else float(rate)
        if self.burst < 1.0:
            raise ConfigurationError("burst must allow at least one request")
        if max_clients < 1:
            raise ConfigurationError("max_clients must be at least 1")
        self._clock = clock
        self._max_clients = int(max_clients)
        #: client -> (tokens, last_refill); ordered by recency of use.
        self._buckets: "OrderedDict[str, tuple[float, float]]" = OrderedDict()

    def check(self, client: str) -> tuple[bool, float]:
        """Spend one token for ``client``.

        Returns ``(allowed, retry_after)``: ``retry_after`` is ``0.0`` when
        allowed, else the seconds until a full token has refilled.
        """
        now = self._clock()
        tokens, updated = self._buckets.pop(client, (self.burst, now))
        tokens = min(self.burst, tokens + (now - updated) * self.rate)
        if tokens >= 1.0:
            allowed, tokens, retry_after = True, tokens - 1.0, 0.0
        else:
            allowed, retry_after = False, (1.0 - tokens) / self.rate
        self._buckets[client] = (tokens, now)
        while len(self._buckets) > self._max_clients:
            self._buckets.popitem(last=False)
        return allowed, retry_after

    def __len__(self) -> int:
        return len(self._buckets)

"""Canonical JSON response codec, shared by the HTTP API and the CLI.

One serializer produces every machine-readable result the library emits over
a wire or a pipe: the :mod:`repro.api` response bodies and the
``repro-truth query --json`` output lines go through :func:`canonical_json`,
so a fact rendered by the CLI is byte-identical to the same fact rendered by
``GET /truth/{entity}`` (modulo the envelope).

Canonical form: sorted keys, compact separators, UTF-8 (no ASCII escaping),
and **no non-standard tokens** — ``NaN`` / ``±Infinity`` are mapped to
``null`` before encoding (the API's "unknown fact" value), never emitted as
the invalid-JSON literals Python's default encoder produces.
"""

from __future__ import annotations

import json
import math
from typing import Any, Mapping

__all__ = ["canonical_json", "encode_json", "sanitize", "fact_row"]


def sanitize(value: Any) -> Any:
    """Recursively map ``value`` onto strict-JSON-safe types.

    Non-finite floats become ``None``; numpy scalars are unwrapped via their
    ``item()``; mappings and sequences recurse.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if hasattr(value, "item") and not isinstance(value, Mapping):
        return sanitize(value.item())
    if isinstance(value, Mapping):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    raise TypeError(f"value of type {type(value).__name__!r} is not JSON-serialisable")


def canonical_json(value: Any) -> str:
    """Render ``value`` as one canonical JSON document (no trailing newline)."""
    return json.dumps(
        sanitize(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=False,
        allow_nan=False,
    )


def encode_json(value: Any) -> bytes:
    """The canonical UTF-8 wire encoding: one JSON document plus ``\\n``."""
    return (canonical_json(value) + "\n").encode("utf-8")


def fact_row(
    entity: str, attribute: str, score: float, threshold: float | None = None
) -> dict[str, Any]:
    """The shared per-fact result object of the API and ``query --json``."""
    row: dict[str, Any] = {
        "entity": str(entity),
        "attribute": str(attribute),
        "score": float(score),
    }
    if threshold is not None:
        row["accepted"] = bool(score >= threshold)
    return row

"""``repro.api`` — the stdlib ASGI network serving tier.

The fifth pillar next to :mod:`repro.engine`, :mod:`repro.io`,
:mod:`repro.serving` and :mod:`repro.parallel`: an HTTP front for the
hot-swappable :class:`~repro.serving.TruthService`, so the reproduction
serves multi-client network traffic instead of in-process calls only.

* :func:`create_app` / :class:`~repro.api.app.TruthAPI` — a dependency-free
  ASGI 3.0 application exposing ``/truth/{entity}``, ``/batch``, ``/top-k``,
  ``/score``, ``/ingest``, ``/refresh``, ``/healthz`` and ``/metrics``, with
  per-client token-bucket rate limiting, idempotency-keyed ingest, request
  ids, structured JSON logs and Prometheus metrics.
* :class:`~repro.api.server.APIServer` — a bundled stdlib ``asyncio``
  HTTP/1.1 server (``repro-truth serve`` needs zero extra installs); any
  external ASGI server runs the same app byte-identically (install the
  ``[api]`` extra for uvicorn).
* :mod:`repro.api.codec` — the canonical JSON serializer shared by the API
  responses and ``repro-truth query --json``.
* :class:`~repro.api.testing.ASGIClient` — an in-process request harness
  for tests and load benchmarks.

Quickstart::

    from repro.api import create_app
    app = create_app("artifacts/movies-v1")     # any artifact directory
    # run under uvicorn: `uvicorn module:app`, or stdlib:
    import asyncio
    from repro.api.server import run
    asyncio.run(run(app, port=8799))
"""

from repro.api.app import Request, Response, TruthAPI, create_app
from repro.api.codec import canonical_json, encode_json, fact_row
from repro.api.idempotency import IdempotencyCache
from repro.api.observability import MetricsRegistry, RequestLogger, new_request_id
from repro.api.rate_limit import RateLimiter
from repro.api.routing import Router
from repro.api.server import APIServer
from repro.api.testing import ASGIClient

__all__ = [
    "TruthAPI",
    "create_app",
    "Request",
    "Response",
    "APIServer",
    "ASGIClient",
    "RateLimiter",
    "IdempotencyCache",
    "MetricsRegistry",
    "RequestLogger",
    "Router",
    "canonical_json",
    "encode_json",
    "fact_row",
    "new_request_id",
]

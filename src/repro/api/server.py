"""A dependency-free asyncio HTTP/1.1 server speaking ASGI to the app.

:class:`APIServer` is the fallback transport that makes ``repro-truth
serve`` work with *zero* extra installs: a small HTTP/1.1 implementation on
:func:`asyncio.start_server` that parses requests, builds an ASGI 3.0 HTTP
scope, drives the application (:class:`~repro.api.app.TruthAPI` or any other
ASGI callable) and writes its response back — keep-alive connections,
``Content-Length`` framing, bounded header/body sizes.

It is intentionally minimal rather than general: no TLS, no chunked request
bodies (501), no websockets — for production traffic install the ``[api]``
extra and run the same app under a real ASGI server (uvicorn etc.); the two
transports serve byte-identical bodies for the same request, which the test
suite pins.
"""

from __future__ import annotations

import asyncio
from http import HTTPStatus
from typing import Any, Awaitable, Callable
from urllib.parse import unquote

__all__ = ["APIServer", "run"]

#: Hard caps keeping one misbehaving client from exhausting the process.
MAX_REQUEST_LINE = 16 * 1024
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 16 * 1024 * 1024

_ASGIApp = Callable[[dict, Callable[[], Awaitable[dict]], Callable[[dict], Awaitable[None]]], Awaitable[None]]


def _reason(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return "Unknown"


class _ParseError(Exception):
    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


class APIServer:
    """Serve an ASGI application over stdlib asyncio HTTP/1.1.

    Usage::

        server = APIServer(app, host="127.0.0.1", port=8799)
        await server.start()          # binds; server.port is the real port
        await server.serve_forever()  # until cancelled
        await server.close()
    """

    def __init__(self, app: _ASGIApp, host: str = "127.0.0.1", port: int = 8799):
        self.app = app
        self.host = host
        self._requested_port = int(port)
        self._server: asyncio.AbstractServer | None = None

    @property
    def port(self) -> int:
        """The actually bound port (differs from the request for port 0)."""
        if self._server is None:
            return self._requested_port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "APIServer":
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self._requested_port,
            limit=MAX_HEADER_BYTES,
        )
        return self

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- connection handling --------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except _ParseError as exc:
                    await self._write_error(writer, exc.status, str(exc))
                    break
                if parsed is None:
                    break  # clean EOF between requests
                method, target, version, headers, body = parsed
                keep_alive = self._keep_alive(version, headers)
                scope = self._build_scope(method, target, version, headers, writer)
                try:
                    status_body = await self._run_app(scope, body)
                except Exception:
                    await self._write_error(writer, 500, "application error")
                    break
                status, response_headers, response_body = status_body
                self._write_response(
                    writer, status, response_headers, response_body, keep_alive
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, list[tuple[bytes, bytes]], bytes] | None:
        try:
            request_line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise _ParseError(431, "request line too large")
        if not request_line:
            return None
        if len(request_line) > MAX_REQUEST_LINE:
            raise _ParseError(431, "request line too large")
        try:
            method, target, version = request_line.decode("latin-1").rstrip("\r\n").split(" ")
        except ValueError:
            raise _ParseError(400, "malformed request line")
        if version not in ("HTTP/1.0", "HTTP/1.1"):
            raise _ParseError(505, "unsupported HTTP version")

        headers: list[tuple[bytes, bytes]] = []
        header_bytes = 0
        while True:
            try:
                line = await reader.readline()
            except (asyncio.LimitOverrunError, ValueError):
                raise _ParseError(431, "request headers too large")
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _ParseError(400, "connection closed inside headers")
            header_bytes += len(line)
            if header_bytes > MAX_HEADER_BYTES:
                raise _ParseError(431, "request headers too large")
            name, sep, value = line.partition(b":")
            if not sep:
                raise _ParseError(400, "malformed header line")
            headers.append((name.strip().lower(), value.strip()))

        header_map = {name: value for name, value in headers}
        if b"transfer-encoding" in header_map:
            raise _ParseError(501, "chunked request bodies are not supported")
        body = b""
        if b"content-length" in header_map:
            try:
                length = int(header_map[b"content-length"])
            except ValueError:
                raise _ParseError(400, "malformed Content-Length")
            if length < 0:
                raise _ParseError(400, "malformed Content-Length")
            if length > MAX_BODY_BYTES:
                raise _ParseError(413, "request body too large")
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _ParseError(400, "connection closed inside body")
        return method, target, version, headers, body

    @staticmethod
    def _keep_alive(version: str, headers: list[tuple[bytes, bytes]]) -> bool:
        connection = dict(headers).get(b"connection", b"").lower()
        if version == "HTTP/1.0":
            return connection == b"keep-alive"
        return connection != b"close"

    def _build_scope(
        self,
        method: str,
        target: str,
        version: str,
        headers: list[tuple[bytes, bytes]],
        writer: asyncio.StreamWriter,
    ) -> dict:
        raw_path, _, query_string = target.partition("?")
        peer = writer.get_extra_info("peername")
        sock = writer.get_extra_info("sockname")
        return {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": version.split("/")[1],
            "method": method.upper(),
            "scheme": "http",
            "path": unquote(raw_path),
            "raw_path": raw_path.encode("latin-1"),
            "query_string": query_string.encode("latin-1"),
            "root_path": "",
            "headers": headers,
            "client": tuple(peer[:2]) if peer else None,
            "server": tuple(sock[:2]) if sock else None,
        }

    async def _run_app(
        self, scope: dict, body: bytes
    ) -> tuple[int, list[tuple[bytes, bytes]], bytes]:
        request_messages = [
            {"type": "http.request", "body": body, "more_body": False},
            {"type": "http.disconnect"},
        ]
        message_iter = iter(request_messages)
        response: dict[str, Any] = {"status": 500, "headers": [], "body": b""}

        async def receive() -> dict:
            try:
                return next(message_iter)
            except StopIteration:
                await asyncio.sleep(3600)  # ASGI receive blocks after disconnect
                raise RuntimeError("unreachable")

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                response["status"] = message["status"]
                response["headers"] = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                response["body"] += message.get("body", b"")

        await self.app(scope, receive, send)
        return response["status"], response["headers"], response["body"]

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        headers: list[tuple[bytes, bytes]],
        body: bytes,
        keep_alive: bool,
    ) -> None:
        lines = [f"HTTP/1.1 {status} {_reason(status)}".encode("latin-1")]
        seen = {name.lower() for name, _ in headers}
        lines.extend(name + b": " + value for name, value in headers)
        if b"content-length" not in seen:
            lines.append(b"content-length: " + str(len(body)).encode("latin-1"))
        if b"connection" not in seen:
            lines.append(b"connection: keep-alive" if keep_alive else b"connection: close")
        writer.write(b"\r\n".join(lines) + b"\r\n\r\n" + body)

    async def _write_error(
        self, writer: asyncio.StreamWriter, status: int, message: str
    ) -> None:
        from repro.api.codec import encode_json

        body = encode_json({"error": "protocol_error", "message": message})
        self._write_response(
            writer,
            status,
            [(b"content-type", b"application/json; charset=utf-8")],
            body,
            keep_alive=False,
        )
        try:
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def run(app: _ASGIApp, host: str = "127.0.0.1", port: int = 8799) -> None:
    """Start an :class:`APIServer` and serve until cancelled."""
    server = APIServer(app, host=host, port=port)
    await server.start()
    try:
        await server.serve_forever()
    finally:
        await server.close()

"""Idempotency-key replay cache for mutating API requests.

``POST /ingest`` is retried by every well-behaved client (networks drop
responses after the server applied the write), so applying it twice must be
harmless.  The contract, modelled on the Stripe-style header protocol:

* a request carrying ``Idempotency-Key: K`` records its response under ``K``
  together with a digest of the request body;
* a replay — same key, same body — returns the *stored* response without
  re-applying the write (the API marks it with ``Idempotency-Replay: true``);
* the same key with a *different* body is a client bug and is refused
  (HTTP 409) rather than silently returning a response for a body the
  client never sent;
* keys expire after ``ttl`` seconds and the cache holds at most
  ``max_keys`` entries (oldest evicted first), so the store cannot grow
  without bound under key-churning clients.

Clock-injectable like :mod:`repro.api.rate_limit` for deterministic tests.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ConfigurationError

__all__ = ["CachedResponse", "IdempotencyCache", "body_digest"]


def body_digest(body: bytes) -> str:
    """Stable digest identifying a request body byte-for-byte."""
    return hashlib.sha256(body).hexdigest()


@dataclass(frozen=True)
class CachedResponse:
    """One stored response: the body digest it answered plus the wire reply."""

    digest: str
    status: int
    body: bytes
    content_type: str
    expires: float


class IdempotencyCache:
    """TTL + capacity bounded store of responses keyed by idempotency key."""

    def __init__(
        self,
        ttl: float = 3600.0,
        *,
        max_keys: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        if ttl <= 0:
            raise ConfigurationError("idempotency ttl must be positive")
        if max_keys < 1:
            raise ConfigurationError("max_keys must be at least 1")
        self.ttl = float(ttl)
        self._max_keys = int(max_keys)
        self._clock = clock
        self._entries: "OrderedDict[str, CachedResponse]" = OrderedDict()

    def lookup(self, key: str, digest: str) -> tuple[CachedResponse | None, bool]:
        """Look up ``key`` for a request whose body hashes to ``digest``.

        Returns ``(cached, conflict)``: a stored response to replay, or
        ``conflict=True`` when the key was used with a different body.
        Expired entries read as absent.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None, False
        if self._clock() >= entry.expires:
            del self._entries[key]
            return None, False
        if entry.digest != digest:
            return None, True
        return entry, False

    def store(self, key: str, digest: str, status: int, body: bytes, content_type: str) -> None:
        """Record the response served for ``key`` (restarting its TTL)."""
        self._entries.pop(key, None)
        self._entries[key] = CachedResponse(
            digest=digest,
            status=int(status),
            body=bytes(body),
            content_type=content_type,
            expires=self._clock() + self.ttl,
        )
        self._evict()

    def _evict(self) -> None:
        now = self._clock()
        expired = [k for k, e in self._entries.items() if now >= e.expires]
        for key in expired:
            del self._entries[key]
        while len(self._entries) > self._max_keys:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        self._evict()
        return len(self._entries)

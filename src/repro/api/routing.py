"""A minimal exact-segment router for the ASGI application.

Patterns are literal paths whose segments may be ``{name}`` placeholders
matching exactly one (percent-decoded) path segment::

    router.add("GET", "/truth/{entity}", handler)
    handler, params = router.match("GET", "/truth/Harry%20Potter")
    params == {"entity": "Harry Potter"}

Matching distinguishes *unknown path* (:class:`NotFound`) from *known path,
wrong verb* (:class:`MethodNotAllowed`, carrying the allowed verbs for the
``Allow`` response header), which is what lets the app answer 404 vs 405
correctly.
"""

from __future__ import annotations

from typing import Any, Callable
from urllib.parse import unquote

__all__ = ["Router", "NotFound", "MethodNotAllowed"]


class NotFound(Exception):
    """No route pattern matches the request path."""


class MethodNotAllowed(Exception):
    """The path matches, but not under the request method."""

    def __init__(self, allowed: tuple[str, ...]):
        super().__init__(f"allowed methods: {', '.join(allowed)}")
        self.allowed = allowed


class _Route:
    __slots__ = ("method", "pattern", "segments", "handler")

    def __init__(self, method: str, pattern: str, handler: Callable[..., Any]):
        self.method = method.upper()
        self.pattern = pattern
        self.segments = tuple(pattern.strip("/").split("/")) if pattern != "/" else ()
        self.handler = handler

    def match(self, segments: tuple[str, ...]) -> dict[str, str] | None:
        if len(segments) != len(self.segments):
            return None
        params: dict[str, str] = {}
        for expected, actual in zip(self.segments, segments):
            if expected.startswith("{") and expected.endswith("}"):
                params[expected[1:-1]] = actual
            elif expected != actual:
                return None
        return params


class Router:
    """Ordered route table with 404/405 discrimination."""

    def __init__(self) -> None:
        self._routes: list[_Route] = []

    def add(self, method: str, pattern: str, handler: Callable[..., Any]) -> None:
        """Register ``handler`` for ``method`` on ``pattern``."""
        self._routes.append(_Route(method, pattern, handler))

    def match(
        self, method: str, path: str
    ) -> tuple[Callable[..., Any], str, dict[str, str]]:
        """Resolve a request to ``(handler, route_pattern, path_params)``.

        ``path`` is the raw request path; segments are percent-decoded
        before matching so ``/truth/Harry%20Potter`` binds
        ``entity="Harry Potter"``.
        """
        segments = (
            tuple(unquote(part) for part in path.strip("/").split("/"))
            if path not in ("", "/")
            else ()
        )
        allowed: list[str] = []
        for route in self._routes:
            params = route.match(segments)
            if params is None:
                continue
            if route.method == method.upper():
                return route.handler, route.pattern, params
            allowed.append(route.method)
        if allowed:
            raise MethodNotAllowed(tuple(dict.fromkeys(allowed)))
        raise NotFound(path)

    def patterns(self) -> list[tuple[str, str]]:
        """All registered ``(method, pattern)`` pairs, registration order."""
        return [(route.method, route.pattern) for route in self._routes]

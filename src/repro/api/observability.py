"""Request observability: structured logs, request ids, Prometheus metrics.

Three small pieces, dependency-free:

* :func:`new_request_id` — 16-hex-char request ids; the API honours an
  incoming ``X-Request-Id`` header (so ids propagate through proxies) and
  echoes the id on every response.
* :class:`RequestLogger` — one canonical-JSON line per request on the
  ``repro.api`` logger (timestamp, request id, method, route, status,
  duration, client, body size), machine-parseable by construction because it
  goes through the same :func:`repro.api.codec.canonical_json` as the API's
  response bodies.
* :class:`MetricsRegistry` — counters / gauges / histograms with label
  support, rendered in the Prometheus text exposition format (version
  0.0.4) by :meth:`MetricsRegistry.render`; backs ``GET /metrics``.

Metric label values are always *route patterns* (``/truth/{entity}``), never
raw paths, so cardinality is bounded by the route table.
"""

from __future__ import annotations

import logging
import secrets
import time
from typing import Callable, Iterable, Mapping

from repro.api.codec import canonical_json

__all__ = [
    "new_request_id",
    "RequestLogger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]

#: Default latency histogram bucket upper bounds, in seconds.
LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5
)


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return secrets.token_hex(8)


class RequestLogger:
    """Structured JSON request logging on the ``repro.api`` logger."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        *,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.logger = logger if logger is not None else logging.getLogger("repro.api")
        self._wall_clock = wall_clock

    def log_request(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        route: str | None,
        status: int,
        duration_s: float,
        client: str,
        body_bytes: int,
    ) -> None:
        """Emit the one-line JSON record of a completed request."""
        record = {
            "ts": round(self._wall_clock(), 6),
            "event": "request",
            "request_id": request_id,
            "method": method,
            "path": path,
            "route": route,
            "status": int(status),
            "duration_ms": round(duration_s * 1000.0, 3),
            "client": client,
            "body_bytes": int(body_bytes),
        }
        level = logging.WARNING if status >= 500 else logging.INFO
        self.logger.log(level, "%s", canonical_json(record))


def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: tuple[tuple[str, str], ...]) -> str:
    if not key:
        return ""
    escaped = ",".join(
        '{}="{}"'.format(name, value.replace("\\", "\\\\").replace('"', '\\"'))
        for name, value in key
    )
    return "{" + escaped + "}"


class Counter:
    """A monotonically increasing labelled counter."""

    kind = "counter"

    def __init__(self, name: str, help_text: str):
        self.name = name
        self.help_text = help_text
        self._values: dict[tuple[tuple[str, str], ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def render(self) -> Iterable[str]:
        for key in sorted(self._values):
            yield f"{self.name}{_render_labels(key)} {_format_value(self._values[key])}"


class Gauge(Counter):
    """A labelled gauge — a counter whose value can also be set outright."""

    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(labels)] = float(value)


class Histogram:
    """A labelled cumulative histogram with fixed bucket bounds."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS,
    ):
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._counts: dict[tuple[tuple[str, str], ...], list[int]] = {}
        self._sums: dict[tuple[tuple[str, str], ...], float] = {}
        self._totals: dict[tuple[tuple[str, str], ...], int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(labels)
        counts = self._counts.setdefault(key, [0] * len(self.buckets))
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                counts[i] += 1
        self._sums[key] = self._sums.get(key, 0.0) + value
        self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        return self._totals.get(_label_key(labels), 0)

    def render(self) -> Iterable[str]:
        for key in sorted(self._totals):
            # observe() increments every bucket whose bound covers the value,
            # so the stored counts are already cumulative (Prometheus form).
            counts = self._counts[key]
            for bound, bucket_count in zip(self.buckets, counts):
                bucket_key = key + (("le", _format_value(bound)),)
                yield f"{self.name}_bucket{_render_labels(bucket_key)} {bucket_count}"
            inf_key = key + (("le", "+Inf"),)
            yield f"{self.name}_bucket{_render_labels(inf_key)} {self._totals[key]}"
            yield f"{self.name}_sum{_render_labels(key)} {_format_value(self._sums[key])}"
            yield f"{self.name}_count{_render_labels(key)} {self._totals[key]}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer():
        return str(int(as_float))
    return repr(as_float)


class MetricsRegistry:
    """A named set of metrics rendered as one Prometheus text document."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def counter(self, name: str, help_text: str) -> Counter:
        return self._get_or_create(name, help_text, Counter)

    def gauge(self, name: str, help_text: str) -> Gauge:
        return self._get_or_create(name, help_text, Gauge)

    def histogram(
        self, name: str, help_text: str, buckets: tuple[float, ...] = LATENCY_BUCKETS
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help_text, buckets)
            self._metrics[name] = metric
        elif not isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is already registered as {metric.kind}")
        return metric

    def _get_or_create(self, name, help_text, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = kind(name, help_text)
            self._metrics[name] = metric
        elif type(metric) is not kind:
            raise TypeError(f"metric {name!r} is already registered as {metric.kind}")
        return metric

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: list[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# HELP {name} {metric.help_text}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

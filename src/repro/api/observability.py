"""Request observability: structured logs, request ids, Prometheus metrics.

Three small pieces, dependency-free:

* :func:`new_request_id` — 16-hex-char request ids; the API honours an
  incoming ``X-Request-Id`` header (so ids propagate through proxies) and
  echoes the id on every response.
* :class:`RequestLogger` — one canonical-JSON line per request on the
  ``repro.api`` logger (timestamp, request id, method, route, status,
  duration, client, body size), machine-parseable by construction because it
  goes through the same :func:`repro.api.codec.canonical_json` as the API's
  response bodies.
* :class:`MetricsRegistry` — counters / gauges / histograms with label
  support, rendered in the Prometheus text exposition format (version
  0.0.4) by :meth:`MetricsRegistry.render`; backs ``GET /metrics``.

The metric primitives (:class:`Counter`, :class:`Gauge`, :class:`Histogram`,
:class:`MetricsRegistry`) live in :mod:`repro.obs.metrics` — the process-wide
metrics home shared with the engine, shard executor, claim store and serving
layers — and are re-exported here unchanged so existing API imports keep
working.

Metric label values are always *route patterns* (``/truth/{entity}``), never
raw paths, so cardinality is bounded by the route table.
"""

from __future__ import annotations

import logging
import secrets
import time
from typing import Callable

from repro.api.codec import canonical_json
from repro.obs.metrics import (  # noqa: F401 — re-exported for compatibility
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    _format_value,
    _label_key,
    _render_labels,
)

__all__ = [
    "new_request_id",
    "RequestLogger",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "LATENCY_BUCKETS",
]


def new_request_id() -> str:
    """A fresh 16-hex-char request id."""
    return secrets.token_hex(8)


class RequestLogger:
    """Structured JSON request logging on the ``repro.api`` logger."""

    def __init__(
        self,
        logger: logging.Logger | None = None,
        *,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.logger = logger if logger is not None else logging.getLogger("repro.api")
        self._wall_clock = wall_clock

    def log_request(
        self,
        *,
        request_id: str,
        method: str,
        path: str,
        route: str | None,
        status: int,
        duration_s: float,
        client: str,
        body_bytes: int,
    ) -> None:
        """Emit the one-line JSON record of a completed request."""
        record = {
            "ts": round(self._wall_clock(), 6),
            "event": "request",
            "request_id": request_id,
            "method": method,
            "path": path,
            "route": route,
            "status": int(status),
            "duration_ms": round(duration_s * 1000.0, 3),
            "client": client,
            "body_bytes": int(body_bytes),
        }
        level = logging.WARNING if status >= 500 else logging.INFO
        self.logger.log(level, "%s", canonical_json(record))

"""In-process ASGI test harness for :mod:`repro.api`.

:class:`ASGIClient` drives any ASGI 3.0 application without sockets: it
builds the same HTTP scope the bundled :class:`~repro.api.server.APIServer`
would (including percent-decoding the path, so the two transports are
interchangeable in parity tests), feeds the body through ``receive`` and
collects the response messages.  Used by the test suite and by the
``benchmarks/test_api_latency.py`` load generator; it is public API so
downstream users can test handlers the same way.
"""

from __future__ import annotations

import json
from typing import Any, Mapping
from urllib.parse import unquote

__all__ = ["ASGIClient", "ClientResponse"]


class ClientResponse:
    """Status, headers and body collected from one ASGI request."""

    def __init__(self, status: int, headers: list[tuple[bytes, bytes]], body: bytes):
        self.status = status
        self.raw_headers = headers
        self.headers = {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in headers
        }
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON."""
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClientResponse(status={self.status}, bytes={len(self.body)})"


class ASGIClient:
    """Socketless client for an ASGI 3.0 app.

    >>> client = ASGIClient(create_app(artifact))        # doctest: +SKIP
    >>> response = await client.get("/healthz")          # doctest: +SKIP
    >>> response.json()["status"]                        # doctest: +SKIP
    'ok'
    """

    def __init__(
        self,
        app,
        *,
        client: tuple[str, int] = ("127.0.0.1", 49152),
        server: tuple[str, int] = ("127.0.0.1", 8799),
    ):
        self.app = app
        self.client = client
        self.server = server

    async def request(
        self,
        method: str,
        target: str,
        *,
        body: bytes | None = None,
        json_body: Any = None,
        headers: Mapping[str, str] | None = None,
    ) -> ClientResponse:
        """Issue one request against the app and collect its response.

        ``target`` is the request target as it would appear on the wire
        (path, optionally percent-encoded, plus ``?query``); ``json_body``
        is encoded with the canonical codec when given.
        """
        if json_body is not None:
            from repro.api.codec import encode_json

            body = encode_json(json_body)
        payload = body if body is not None else b""
        raw_path, _, query_string = target.partition("?")

        header_items = [
            (name.lower().encode("latin-1"), value.encode("latin-1"))
            for name, value in (headers or {}).items()
        ]
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "scheme": "http",
            "path": unquote(raw_path),
            "raw_path": raw_path.encode("latin-1"),
            "query_string": query_string.encode("latin-1"),
            "root_path": "",
            "headers": header_items,
            "client": self.client,
            "server": self.server,
        }
        messages = iter(
            [
                {"type": "http.request", "body": payload, "more_body": False},
                {"type": "http.disconnect"},
            ]
        )

        async def receive() -> dict:
            return next(messages)

        collected: dict[str, Any] = {"status": 500, "headers": [], "body": b""}

        async def send(message: dict) -> None:
            if message["type"] == "http.response.start":
                collected["status"] = message["status"]
                collected["headers"] = list(message.get("headers", []))
            elif message["type"] == "http.response.body":
                collected["body"] += message.get("body", b"")

        await self.app(scope, receive, send)
        return ClientResponse(collected["status"], collected["headers"], collected["body"])

    async def get(self, target: str, **kwargs: Any) -> ClientResponse:
        return await self.request("GET", target, **kwargs)

    async def post(self, target: str, **kwargs: Any) -> ClientResponse:
        return await self.request("POST", target, **kwargs)

"""The ASGI 3.0 truth-serving application.

:class:`TruthAPI` is the network tier over
:class:`~repro.serving.TruthService` — the paper's Section 5.4 train/serve
split made operational: LTM re-trains offline, publishes
:class:`~repro.serving.TruthArtifact` snapshots, and this app serves them
over HTTP with zero-downtime hot swaps.  It is a plain ASGI 3.0 callable —
run it under any ASGI server (``uvicorn repro.api:app``-style via
:func:`create_app`) or under the bundled dependency-free
:mod:`repro.api.server` (``repro-truth serve``).

Endpoints
---------
===============================  ==============================================
``GET /truth/{entity}``          ranked facts of one entity; ``?attribute=``
                                 for an O(1) point lookup, ``?top=`` to limit
``POST /batch``                  vectorised point lookups over JSON pairs
``GET /top-k``                   global or per-entity highest-scored facts
``POST /score``                  closed-form LTMinc scoring of unseen claims
``POST /ingest``                 integrate new triples (idempotency keys) and
                                 hot-swap the served snapshot
``POST /refresh``                hot-swap onto a re-published artifact path
``GET /healthz``                 liveness + served-artifact identity
``GET /metrics``                 Prometheus text metrics
===============================  ==============================================

Operational behaviour:

* **rate limiting** — per-client token bucket
  (:class:`~repro.api.rate_limit.RateLimiter`); clients are identified by
  the ``X-API-Key`` header when present, else by peer address; over-limit
  requests get ``429`` with ``Retry-After``.  ``/healthz`` and ``/metrics``
  are exempt so monitoring never competes with traffic.
* **idempotency** — ``POST /ingest`` honours ``Idempotency-Key``
  (:mod:`repro.api.idempotency`): replays return the stored response with
  ``Idempotency-Replay: true``; key reuse with a different body is a 409.
* **observability** — every request gets an ``X-Request-Id`` (propagated
  from the client when supplied) and one structured JSON log line
  (:mod:`repro.api.observability`); counters and latency histograms are
  exposed at ``/metrics``.
* **hot swap** — ``/ingest`` and ``/refresh`` republish through the atomic
  :meth:`TruthService.refresh`; readers racing a swap see the old or the new
  snapshot in full, never a mixture, and the snapshot generation counter is
  monotonic.  All writer paths serialise on one ``asyncio.Lock``.

Responses are canonical JSON (:mod:`repro.api.codec`) — byte-identical for
the same request regardless of which server fronts the app, which is what
makes the bundled-server-vs-ASGI-harness parity tests possible.
"""

from __future__ import annotations

import asyncio
import dataclasses
import logging
import math
import time
from pathlib import Path
from typing import Any, Awaitable, Callable, Iterable, Mapping

from repro.api.codec import canonical_json, encode_json, fact_row
from repro.api.idempotency import IdempotencyCache, body_digest
from repro.api.observability import (
    MetricsRegistry,
    RequestLogger,
    new_request_id,
)
from repro.api.rate_limit import RateLimiter
from repro.obs.metrics import global_registry
from repro.api.routing import MethodNotAllowed, NotFound, Router
from repro.exceptions import (
    ArtifactError,
    ConfigurationError,
    DataModelError,
    NotFittedError,
    ReproError,
)
from repro.serving.artifact import TruthArtifact
from repro.serving.service import TruthService

__all__ = ["TruthAPI", "Request", "Response", "create_app"]

JSON_CONTENT_TYPE = "application/json; charset=utf-8"
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


@dataclasses.dataclass
class Request:
    """One parsed HTTP request, as handed to endpoint handlers."""

    method: str
    path: str
    params: dict[str, str]
    query: dict[str, str]
    headers: dict[str, str]
    body: bytes
    client: str
    request_id: str

    def json_object(self, *, allow_empty: bool = False) -> dict[str, Any]:
        """The request body parsed as a JSON object (400 on anything else)."""
        import json

        if not self.body:
            if allow_empty:
                return {}
            raise HTTPError(400, "invalid_json", "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HTTPError(400, "invalid_json", f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise HTTPError(400, "invalid_json", "request body must be a JSON object")
        return payload


@dataclasses.dataclass
class Response:
    """One response: status, body bytes and wire headers."""

    status: int
    body: bytes
    content_type: str = JSON_CONTENT_TYPE
    headers: list[tuple[str, str]] = dataclasses.field(default_factory=list)

    @classmethod
    def json(cls, status: int, payload: Any, **headers: str) -> "Response":
        return cls(
            status=status,
            body=encode_json(payload),
            headers=[(k.replace("_", "-"), v) for k, v in headers.items()],
        )


class HTTPError(Exception):
    """An error with a definite HTTP status and machine-readable code."""

    def __init__(
        self, status: int, code: str, message: str, headers: Iterable[tuple[str, str]] = ()
    ):
        super().__init__(message)
        self.status = int(status)
        self.code = code
        self.message = message
        self.headers = list(headers)

    def to_response(self) -> Response:
        response = Response.json(
            self.status, {"error": self.code, "message": self.message}
        )
        response.headers.extend(self.headers)
        return response


def _coerce_text(value: Any, what: str) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return str(value)
    raise HTTPError(400, "invalid_payload", f"{what} must be a string")


def _string_rows(
    payload: Mapping[str, Any], field: str, arity: int, max_items: int
) -> list[tuple[str, ...]]:
    """Validate ``payload[field]`` as a list of ``arity``-string rows."""
    rows = payload.get(field)
    if not isinstance(rows, list):
        raise HTTPError(400, "invalid_payload", f"body must carry a {field!r} list")
    if len(rows) > max_items:
        raise HTTPError(
            413,
            "too_many_items",
            f"{field} carries {len(rows)} rows; the limit is {max_items}",
        )
    out: list[tuple[str, ...]] = []
    for i, row in enumerate(rows):
        if not isinstance(row, (list, tuple)) or len(row) != arity:
            raise HTTPError(
                400,
                "invalid_payload",
                f"{field}[{i}] must be a {arity}-item row",
            )
        out.append(tuple(_coerce_text(cell, f"{field}[{i}][{j}]") for j, cell in enumerate(row)))
    return out


def _int_query(query: Mapping[str, str], name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise HTTPError(400, "invalid_query", f"query parameter {name!r} must be an integer")


class TruthAPI:
    """ASGI 3.0 application serving a :class:`~repro.serving.TruthService`.

    Parameters
    ----------
    service:
        The service to front — a :class:`TruthService`, a
        :class:`~repro.serving.TruthArtifact`, or an artifact directory path
        (which also becomes the default ``POST /refresh`` target).
    rate, burst:
        Per-client token-bucket limit (requests/second and bucket size);
        ``rate=None`` or ``0`` disables limiting.
    idempotency_ttl:
        Seconds an ``Idempotency-Key`` replay stays answerable.
    max_body_bytes, max_items:
        Request body size cap and per-request row cap (413 beyond either).
    clock, wall_clock, request_id_factory, logger:
        Injectable monotonic clock (rate limiter, latency, idempotency TTL),
        wall clock (log timestamps), request-id generator, and logger —
        deterministic tests override these.
    """

    def __init__(
        self,
        service: TruthService | TruthArtifact | str | Path,
        *,
        artifact_path: str | Path | None = None,
        rate: float | None = 100.0,
        burst: float | None = None,
        rate_exempt: tuple[str, ...] = ("/healthz", "/metrics"),
        idempotency_ttl: float = 3600.0,
        max_body_bytes: int = 8 * 1024 * 1024,
        max_items: int = 10_000,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        request_id_factory: Callable[[], str] = new_request_id,
        logger: logging.Logger | None = None,
    ):
        if isinstance(service, (str, Path)):
            artifact_path = service if artifact_path is None else artifact_path
            service = TruthService(service)
        elif isinstance(service, TruthArtifact):
            service = TruthService(service)
        if not isinstance(service, TruthService):
            raise ConfigurationError(
                f"TruthAPI needs a TruthService, TruthArtifact or artifact path, "
                f"got {type(service).__name__}"
            )
        self.service = service
        self._artifact_path = str(artifact_path) if artifact_path is not None else None
        self._clock = clock
        self._limiter = (
            RateLimiter(rate, burst, clock=clock) if rate else None
        )
        self._rate_exempt = frozenset(rate_exempt)
        self._idempotency = IdempotencyCache(idempotency_ttl, clock=clock)
        self._max_body_bytes = int(max_body_bytes)
        self._max_items = int(max_items)
        self._request_id_factory = request_id_factory
        self._log = RequestLogger(logger, wall_clock=wall_clock)
        self._write_lock = asyncio.Lock()
        self._writer_engine = None
        self._generation = 1

        self.metrics = MetricsRegistry()
        self._m_requests = self.metrics.counter(
            "repro_api_requests_total", "Requests served, by method/route/status."
        )
        self._m_latency = self.metrics.histogram(
            "repro_api_request_seconds", "Request wall time in seconds, by route."
        )
        self._m_rate_limited = self.metrics.counter(
            "repro_api_rate_limited_total", "Requests rejected by the rate limiter."
        )
        self._m_replays = self.metrics.counter(
            "repro_api_idempotent_replays_total",
            "Ingest requests answered from the idempotency cache.",
        )
        self._m_ingested = self.metrics.counter(
            "repro_api_ingested_triples_total", "Triples accepted by POST /ingest."
        )
        self._m_refreshes = self.metrics.counter(
            "repro_api_refreshes_total", "Successful snapshot hot swaps."
        )
        self._m_generation = self.metrics.gauge(
            "repro_api_snapshot_generation",
            "Monotonic generation of the served snapshot.",
        )
        self._m_facts = self.metrics.gauge(
            "repro_api_facts", "Facts in the served snapshot."
        )
        self._m_generation.set(self._generation)
        self._m_facts.set(len(self.service))

        self.router = Router()
        self.router.add("GET", "/healthz", self._handle_healthz)
        self.router.add("GET", "/metrics", self._handle_metrics)
        self.router.add("GET", "/truth/{entity}", self._handle_truth)
        self.router.add("POST", "/batch", self._handle_batch)
        self.router.add("GET", "/top-k", self._handle_top_k)
        self.router.add("POST", "/score", self._handle_score)
        self.router.add("POST", "/ingest", self._handle_ingest)
        self.router.add("POST", "/refresh", self._handle_refresh)

    # -- snapshot state -------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic counter of served snapshots (starts at 1, +1 per swap)."""
        return self._generation

    def _publish(self, artifact: TruthArtifact) -> int:
        """Swap the served snapshot (writer lock held) and bump the generation."""
        self.service.refresh(artifact)
        self._generation += 1
        self._m_generation.set(self._generation)
        self._m_facts.set(len(self.service))
        self._m_refreshes.inc()
        return self._generation

    def _ensure_writer(self):
        """The engine behind ``/ingest``, rebuilt lazily from the served artifact.

        The writer scores arriving batches with the closed-form LTMinc
        posterior only (``retrain_every=0``) — full re-training stays an
        offline job whose output is published through ``/refresh``, exactly
        the train/serve split of paper Section 5.4.
        """
        from repro.engine.facade import TruthEngine

        if self._writer_engine is None:
            artifact = self.service.artifact
            config = dataclasses.replace(
                artifact.config, retrain_every=0, export_dir=None
            )
            self._writer_engine = TruthEngine.from_artifact(
                dataclasses.replace(artifact, config=config)
            )
        return self._writer_engine

    # -- ASGI entry point -----------------------------------------------------------
    async def __call__(self, scope: dict, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":
            raise RuntimeError(f"TruthAPI only handles http scopes, got {scope['type']!r}")
        await self._handle_http(scope, receive, send)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _handle_http(self, scope: dict, receive, send) -> None:
        start = self._clock()
        method = scope["method"].upper()
        path = scope.get("path", "/")
        headers = {
            name.decode("latin-1").lower(): value.decode("latin-1")
            for name, value in scope.get("headers", ())
        }
        request_id = headers.get("x-request-id") or self._request_id_factory()
        peer = scope.get("client")
        client = headers.get("x-api-key") or (peer[0] if peer else "anonymous")

        route_pattern = "-"
        try:
            body = await self._read_body(receive)
            # Yield once so many in-flight requests interleave even under
            # purely synchronous handlers (exercised by the refresh race test).
            await asyncio.sleep(0)
            if self._limiter is not None and path not in self._rate_exempt:
                allowed, retry_after = self._limiter.check(client)
                if not allowed:
                    self._m_rate_limited.inc()
                    raise HTTPError(
                        429,
                        "rate_limited",
                        "per-client request rate exceeded",
                        headers=[("Retry-After", str(max(1, math.ceil(retry_after))))],
                    )
            handler, route_pattern, params = self.router.match(method, path)
            request = Request(
                method=method,
                path=path,
                params=params,
                query=self._parse_query(scope.get("query_string", b"")),
                headers=headers,
                body=body,
                client=client,
                request_id=request_id,
            )
            response = await handler(request)
        except HTTPError as exc:
            response = exc.to_response()
        except NotFound:
            response = HTTPError(404, "not_found", f"no route for {path!r}").to_response()
        except MethodNotAllowed as exc:
            response = HTTPError(
                405,
                "method_not_allowed",
                f"{method} is not supported on {path!r}",
                headers=[("Allow", ", ".join(exc.allowed))],
            ).to_response()
        except ReproError as exc:
            response = HTTPError(500, "internal_error", str(exc)).to_response()
            self._log.logger.exception("unhandled library error serving %s %s", method, path)
        except Exception:
            response = HTTPError(
                500, "internal_error", "unexpected error; see server logs"
            ).to_response()
            self._log.logger.exception("unhandled error serving %s %s", method, path)

        duration = self._clock() - start
        self._m_requests.inc(
            method=method, route=route_pattern, status=str(response.status)
        )
        self._m_latency.observe(duration, route=route_pattern)
        self._log.log_request(
            request_id=request_id,
            method=method,
            path=path,
            route=route_pattern if route_pattern != "-" else None,
            status=response.status,
            duration_s=duration,
            client=client,
            body_bytes=len(response.body),
        )
        await self._send_response(send, response, request_id)

    async def _read_body(self, receive) -> bytes:
        chunks: list[bytes] = []
        total = 0
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                raise HTTPError(400, "disconnected", "client disconnected mid-request")
            chunk = message.get("body", b"")
            total += len(chunk)
            if total > self._max_body_bytes:
                raise HTTPError(
                    413,
                    "body_too_large",
                    f"request body exceeds {self._max_body_bytes} bytes",
                )
            chunks.append(chunk)
            if not message.get("more_body", False):
                return b"".join(chunks)

    @staticmethod
    def _parse_query(query_string: bytes) -> dict[str, str]:
        from urllib.parse import parse_qsl

        return dict(parse_qsl(query_string.decode("latin-1"), keep_blank_values=True))

    async def _send_response(self, send, response: Response, request_id: str) -> None:
        headers = [
            (b"content-type", response.content_type.encode("latin-1")),
            (b"x-request-id", request_id.encode("latin-1")),
        ]
        headers.extend(
            (name.encode("latin-1"), value.encode("latin-1"))
            for name, value in response.headers
        )
        await send(
            {
                "type": "http.response.start",
                "status": response.status,
                "headers": headers,
            }
        )
        await send({"type": "http.response.body", "body": response.body})

    # -- endpoint handlers ----------------------------------------------------------
    async def _handle_healthz(self, request: Request) -> Response:
        return Response.json(
            200,
            {
                "status": "ok",
                "generation": self._generation,
                "artifact": self.service.artifact.summary(),
            },
        )

    async def _handle_metrics(self, request: Request) -> Response:
        # One scrape sees both tiers: the per-app request series, then the
        # process-global engine/store/parallel/serving series (when any
        # exist).  The app registry renders first so its output stays
        # byte-identical to the pre-repro.obs exposition.
        body = self.metrics.render()
        global_reg = global_registry()
        if global_reg is not self.metrics and len(global_reg):
            body += global_reg.render()
        return Response(
            status=200,
            body=body.encode("utf-8"),
            content_type=TEXT_CONTENT_TYPE,
        )

    async def _handle_truth(self, request: Request) -> Response:
        snapshot = self.service.snapshot()
        threshold = snapshot.artifact.config.threshold
        entity = request.params["entity"]
        attribute = request.query.get("attribute")
        if attribute is not None:
            score = snapshot.scores.get((entity, attribute))
            if score is None:
                raise HTTPError(
                    404, "unknown_fact", f"no stored fact ({entity!r}, {attribute!r})"
                )
            return Response.json(200, fact_row(entity, attribute, score, threshold))
        ranked = snapshot.entity_top(entity)
        if not ranked:
            raise HTTPError(404, "unknown_entity", f"no stored facts for {entity!r}")
        top = _int_query(request.query, "top", len(ranked))
        facts = [fact_row(entity, attr, score, threshold) for attr, score in ranked[:top]]
        return Response.json(200, {"entity": entity, "facts": facts, "count": len(facts)})

    async def _handle_batch(self, request: Request) -> Response:
        payload = request.json_object()
        pairs = _string_rows(payload, "pairs", 2, self._max_items)
        scores = self.service.batch(pairs) if pairs else []
        return Response.json(
            200,
            {"scores": [float(s) for s in scores], "count": len(pairs)},
        )

    async def _handle_top_k(self, request: Request) -> Response:
        k = _int_query(request.query, "k", 10)
        if k < 0:
            raise HTTPError(400, "invalid_query", "query parameter 'k' must be >= 0")
        entity = request.query.get("entity")
        snapshot = self.service.snapshot()
        threshold = snapshot.artifact.config.threshold
        rows = snapshot.top(k, entity)
        if entity is not None and not snapshot.entity_top(entity):
            raise HTTPError(404, "unknown_entity", f"no stored facts for {entity!r}")
        facts = [fact_row(e, a, s, threshold) for e, a, s in rows]
        return Response.json(200, {"facts": facts, "count": len(facts)})

    async def _handle_score(self, request: Request) -> Response:
        payload = request.json_object()
        triples = _string_rows(payload, "triples", 3, self._max_items)
        if not triples:
            return Response.json(200, {"scores": [], "count": 0})
        try:
            facts = self.service.score_facts(triples)
        except NotFittedError as exc:
            raise HTTPError(422, "not_scorable", str(exc))
        except DataModelError as exc:
            raise HTTPError(400, "invalid_payload", str(exc))
        scores = [facts[(entity, attribute)] for entity, attribute, _ in triples]
        return Response.json(200, {"scores": scores, "count": len(scores)})

    async def _handle_ingest(self, request: Request) -> Response:
        payload = request.json_object()
        triples = _string_rows(payload, "triples", 3, self._max_items)
        if not triples:
            raise HTTPError(400, "invalid_payload", "cannot ingest an empty batch")
        key = request.headers.get("idempotency-key")
        digest = body_digest(request.body)

        async with self._write_lock:
            if key:
                cached, conflict = self._idempotency.lookup(key, digest)
                if conflict:
                    raise HTTPError(
                        409,
                        "idempotency_key_conflict",
                        f"idempotency key {key!r} was already used with a "
                        f"different request body",
                    )
                if cached is not None:
                    self._m_replays.inc()
                    return Response(
                        status=cached.status,
                        body=cached.body,
                        content_type=cached.content_type,
                        headers=[("Idempotency-Replay", "true")],
                    )
            try:
                engine = self._ensure_writer()
                engine.partial_fit(triples)
                artifact = engine.to_artifact(name=self.service.artifact.name)
            except DataModelError as exc:
                raise HTTPError(400, "invalid_payload", str(exc))
            generation = self._publish(artifact)
            self._m_ingested.inc(len(triples))
            response = Response.json(
                200,
                {
                    "ingested": len(triples),
                    "total_facts": len(self.service),
                    "generation": generation,
                },
            )
            if key:
                self._idempotency.store(
                    key, digest, response.status, response.body, response.content_type
                )
            return response

    async def _handle_refresh(self, request: Request) -> Response:
        payload = request.json_object(allow_empty=True)
        path = payload.get("artifact") or self._artifact_path
        if not path:
            raise HTTPError(
                400,
                "no_artifact_path",
                "no artifact path given and the app was not built from one",
            )
        if not isinstance(path, str):
            raise HTTPError(400, "invalid_payload", "'artifact' must be a path string")
        try:
            artifact = TruthArtifact.load(path)
        except ArtifactError as exc:
            raise HTTPError(400, "artifact_error", str(exc))
        async with self._write_lock:
            generation = self._publish(artifact)
            # The next ingest must continue from the freshly published state.
            self._writer_engine = None
            if payload.get("artifact"):
                self._artifact_path = path
        return Response.json(
            200,
            {"generation": generation, "artifact": self.service.artifact.summary()},
        )


def create_app(
    service: TruthService | TruthArtifact | str | Path, **options: Any
) -> TruthAPI:
    """Build a :class:`TruthAPI` — the factory the CLI and ASGI servers use.

    ``service`` may be a live :class:`~repro.serving.TruthService`, a
    :class:`~repro.serving.TruthArtifact`, or an artifact directory path;
    keyword options are forwarded to :class:`TruthAPI`.
    """
    return TruthAPI(service, **options)

"""Prediction-quality metrics for truth-finding methods (paper Table 7).

The paper grades each method's truth predictions on the labelled subset with
one-sided measures (precision, recall, false-positive rate) and two-sided
measures (accuracy, F1), all at a decision threshold of 0.5 unless stated
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.base import TruthResult
from repro.evaluation.confusion import ConfusionMatrix
from repro.exceptions import EvaluationError, MissingGroundTruthError
from repro.types import FactId

__all__ = ["EvaluationMetrics", "evaluate_predictions", "evaluate_scores"]


@dataclass(frozen=True)
class EvaluationMetrics:
    """The metric row reported per method and dataset in Table 7.

    Attributes
    ----------
    precision, recall, false_positive_rate:
        One-sided error measures.
    accuracy, f1:
        Two-sided error measures.
    threshold:
        Decision threshold the predictions were made at.
    support:
        Number of labelled facts graded.
    confusion:
        The underlying confusion matrix.
    """

    precision: float
    recall: float
    false_positive_rate: float
    accuracy: float
    f1: float
    threshold: float
    support: int
    confusion: ConfusionMatrix

    def as_dict(self) -> dict[str, float]:
        """Return the headline metrics as a flat dict (Table 7 row format)."""
        return {
            "precision": self.precision,
            "recall": self.recall,
            "fpr": self.false_positive_rate,
            "accuracy": self.accuracy,
            "f1": self.f1,
        }

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return (
            f"precision={self.precision:.3f} recall={self.recall:.3f} "
            f"fpr={self.false_positive_rate:.3f} accuracy={self.accuracy:.3f} f1={self.f1:.3f}"
        )


def evaluate_predictions(
    predictions: np.ndarray | Sequence[bool],
    labels: np.ndarray | Sequence[bool],
    threshold: float = 0.5,
) -> EvaluationMetrics:
    """Grade Boolean ``predictions`` against Boolean ``labels``."""
    predictions = np.asarray(predictions, dtype=bool)
    labels = np.asarray(labels, dtype=bool)
    if predictions.shape != labels.shape:
        raise EvaluationError(
            f"predictions and labels must align; got {predictions.shape} vs {labels.shape}"
        )
    if predictions.size == 0:
        raise MissingGroundTruthError("cannot evaluate on an empty labelled set")

    tp = float(np.sum(predictions & labels))
    fp = float(np.sum(predictions & ~labels))
    fn = float(np.sum(~predictions & labels))
    tn = float(np.sum(~predictions & ~labels))
    confusion = ConfusionMatrix(
        true_positives=tp, false_positives=fp, false_negatives=fn, true_negatives=tn
    )
    return EvaluationMetrics(
        precision=confusion.precision,
        recall=confusion.recall,
        false_positive_rate=confusion.false_positive_rate,
        accuracy=confusion.accuracy,
        f1=confusion.f1,
        threshold=threshold,
        support=int(predictions.size),
        confusion=confusion,
    )


def evaluate_scores(
    scores: np.ndarray | TruthResult,
    labels: Mapping[FactId, bool] | np.ndarray,
    fact_ids: Sequence[FactId] | None = None,
    threshold: float = 0.5,
) -> EvaluationMetrics:
    """Grade per-fact scores against ground truth at ``threshold``.

    Parameters
    ----------
    scores:
        Either the raw score array or a :class:`~repro.core.base.TruthResult`.
    labels:
        Either a mapping from fact id to truth (graded on its keys, or on
        ``fact_ids`` when given) or a plain Boolean array aligned with
        ``scores``.
    fact_ids:
        When ``labels`` is a mapping, the fact ids to grade (default: all
        labelled fact ids, sorted).
    threshold:
        Decision threshold; scores greater than or equal to it are predicted
        true.
    """
    if isinstance(scores, TruthResult):
        scores = scores.scores
    scores = np.asarray(scores, dtype=float)

    if isinstance(labels, Mapping):
        if fact_ids is None:
            fact_ids = sorted(labels)
        if not fact_ids:
            raise MissingGroundTruthError("no labelled facts to evaluate on")
        missing = [f for f in fact_ids if f not in labels]
        if missing:
            raise MissingGroundTruthError(f"facts {missing[:5]} have no ground-truth label")
        indices = np.asarray(list(fact_ids), dtype=np.int64)
        if indices.max(initial=-1) >= scores.shape[0]:
            raise EvaluationError("a labelled fact id is outside the score array")
        truth = np.array([labels[f] for f in fact_ids], dtype=bool)
        selected = scores[indices]
    else:
        truth = np.asarray(labels, dtype=bool)
        selected = scores
        if truth.shape != selected.shape:
            raise EvaluationError(
                f"labels must align with scores; got {truth.shape} vs {selected.shape}"
            )

    predictions = selected >= threshold
    return evaluate_predictions(predictions, truth, threshold=threshold)

"""Decision-threshold sweeps (paper Figure 2).

The paper plots each method's accuracy as the decision threshold varies from
0 to 1, showing that LTM is stable across thresholds while the conservative
methods peak at very low thresholds and the optimistic ones only at very high
thresholds.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.base import TruthResult
from repro.evaluation.metrics import EvaluationMetrics, evaluate_scores
from repro.exceptions import EvaluationError
from repro.types import FactId

__all__ = ["threshold_sweep", "best_threshold"]


def threshold_sweep(
    result: TruthResult | np.ndarray,
    labels: Mapping[FactId, bool],
    thresholds: Sequence[float] | None = None,
    fact_ids: Sequence[FactId] | None = None,
) -> dict[float, EvaluationMetrics]:
    """Evaluate a method at every threshold in ``thresholds``.

    Parameters
    ----------
    result:
        Fitted result (or raw score array).
    labels:
        Ground-truth labels keyed by fact id.
    thresholds:
        Thresholds to evaluate at; defaults to 0.0, 0.05, ..., 1.0.
    fact_ids:
        Facts to grade (defaults to all labelled facts).

    Returns
    -------
    dict
        Mapping from threshold to :class:`EvaluationMetrics`.
    """
    if thresholds is None:
        thresholds = np.round(np.linspace(0.0, 1.0, 21), 3).tolist()
    out: dict[float, EvaluationMetrics] = {}
    for threshold in thresholds:
        if not 0.0 <= threshold <= 1.0:
            raise EvaluationError(f"thresholds must lie in [0, 1], got {threshold}")
        out[float(threshold)] = evaluate_scores(
            result, labels, fact_ids=fact_ids, threshold=float(threshold)
        )
    return out


def best_threshold(
    sweep: Mapping[float, EvaluationMetrics],
    metric: str = "accuracy",
) -> tuple[float, float]:
    """Return ``(threshold, value)`` maximising ``metric`` over a sweep.

    The paper notes that finding this optimum in practice would require
    supervision; it is reported for analysis only.
    """
    if not sweep:
        raise EvaluationError("cannot select a best threshold from an empty sweep")
    best_t, best_v = None, -np.inf
    for threshold, metrics in sweep.items():
        value = getattr(metrics, metric, None)
        if value is None:
            value = metrics.as_dict().get(metric)
        if value is None:
            raise EvaluationError(f"unknown metric {metric!r}")
        if value > best_v:
            best_t, best_v = threshold, float(value)
    return float(best_t), float(best_v)

"""Per-source confusion matrices and derived quality measures (paper Section 3).

Given ground-truth labels for (a subset of) facts, every source can be graded
as a classifier: its claims are predictions and the labels are the target.
:class:`ConfusionMatrix` holds the four counts of paper Table 5 and exposes
the derived measures of Section 3.1 — precision, accuracy, sensitivity
(recall) and specificity — which are exactly the quantities computed for the
worked example in Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.core.base import SourceQualityTable
from repro.data.dataset import ClaimMatrix
from repro.exceptions import MissingGroundTruthError
from repro.types import FactId

__all__ = ["ConfusionMatrix", "source_confusion_matrices", "source_quality_from_truth"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """True/false positive/negative counts for one classifier (paper Table 5)."""

    true_positives: float
    false_positives: float
    false_negatives: float
    true_negatives: float

    # -- combination ------------------------------------------------------------
    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            true_positives=self.true_positives + other.true_positives,
            false_positives=self.false_positives + other.false_positives,
            false_negatives=self.false_negatives + other.false_negatives,
            true_negatives=self.true_negatives + other.true_negatives,
        )

    @property
    def total(self) -> float:
        """Total number of graded claims."""
        return self.true_positives + self.false_positives + self.false_negatives + self.true_negatives

    # -- derived measures (Section 3.1) -------------------------------------------
    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when the source made no positive claims."""
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom > 0 else 1.0

    @property
    def accuracy(self) -> float:
        """(TP + TN) / total; NaN for an empty matrix."""
        return (self.true_positives + self.true_negatives) / self.total if self.total > 0 else float("nan")

    @property
    def sensitivity(self) -> float:
        """TP / (TP + FN), a.k.a. recall; 1.0 when there were no true facts."""
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom > 0 else 1.0

    @property
    def recall(self) -> float:
        """Alias for :attr:`sensitivity`."""
        return self.sensitivity

    @property
    def specificity(self) -> float:
        """TN / (TN + FP); 1.0 when there were no false facts."""
        denom = self.true_negatives + self.false_positives
        return self.true_negatives / denom if denom > 0 else 1.0

    @property
    def false_positive_rate(self) -> float:
        """FP / (FP + TN) = 1 - specificity."""
        return 1.0 - self.specificity

    @property
    def false_negative_rate(self) -> float:
        """FN / (FN + TP) = 1 - sensitivity."""
        return 1.0 - self.sensitivity

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) > 0 else 0.0

    def as_dict(self) -> dict[str, float]:
        """All counts and derived measures as a flat dict."""
        return {
            "TP": self.true_positives,
            "FP": self.false_positives,
            "FN": self.false_negatives,
            "TN": self.true_negatives,
            "precision": self.precision,
            "accuracy": self.accuracy,
            "sensitivity": self.sensitivity,
            "specificity": self.specificity,
            "f1": self.f1,
        }


def source_confusion_matrices(
    claims: ClaimMatrix,
    labels: Mapping[FactId, bool],
) -> dict[str, ConfusionMatrix]:
    """Confusion matrix of every source against ground-truth ``labels``.

    Only claims about labelled facts are graded; sources with no graded claim
    get an all-zero matrix.

    Raises
    ------
    MissingGroundTruthError
        If ``labels`` is empty.
    """
    if not labels:
        raise MissingGroundTruthError("cannot grade sources without ground-truth labels")

    counts = np.zeros((claims.num_sources, 2, 2), dtype=float)
    label_array = np.full(claims.num_facts, -1, dtype=np.int64)
    for fact_id, value in labels.items():
        label_array[fact_id] = int(bool(value))

    mask = label_array[claims.claim_fact] >= 0
    sources = claims.claim_source[mask]
    truths = label_array[claims.claim_fact[mask]]
    obs = claims.claim_obs[mask].astype(np.int64)
    np.add.at(counts, (sources, truths, obs), 1.0)

    return {
        name: ConfusionMatrix(
            true_positives=float(counts[sid, 1, 1]),
            false_positives=float(counts[sid, 0, 1]),
            false_negatives=float(counts[sid, 1, 0]),
            true_negatives=float(counts[sid, 0, 0]),
        )
        for sid, name in enumerate(claims.source_names)
    }


def source_quality_from_truth(
    claims: ClaimMatrix,
    labels: Mapping[FactId, bool],
) -> SourceQualityTable:
    """Supervised source-quality table computed directly from ground truth.

    This is the supervised counterpart of
    :func:`repro.core.quality.estimate_source_quality`; the paper uses it for
    the worked example of Table 6 and we use it in tests to check that LTM's
    unsupervised estimates recover the true source quality on synthetic data.
    """
    matrices = source_confusion_matrices(claims, labels)
    names = tuple(claims.source_names)
    sensitivity = np.array([matrices[n].sensitivity for n in names])
    specificity = np.array([matrices[n].specificity for n in names])
    precision = np.array([matrices[n].precision for n in names])
    accuracy = np.array([matrices[n].accuracy for n in names])
    return SourceQualityTable(
        source_names=names,
        sensitivity=sensitivity,
        specificity=specificity,
        precision=precision,
        accuracy=accuracy,
    )

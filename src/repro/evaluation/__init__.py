"""Evaluation harness: source-quality measures, truth-finding metrics and comparisons.

This package implements the measures of paper Section 3 (per-source confusion
matrices, precision/accuracy/sensitivity/specificity) and the experimental
protocol of Section 6: precision/recall/false-positive-rate/accuracy/F1 of a
method's predictions on a labelled subset at a decision threshold (Table 7),
threshold sweeps (Figure 2), ROC curves and AUC (Figure 3), the LTMinc
protocol, multi-method comparison tables, and the runtime-linearity regression
of Figure 6.
"""

from repro.evaluation.confusion import ConfusionMatrix, source_confusion_matrices, source_quality_from_truth
from repro.evaluation.metrics import (
    EvaluationMetrics,
    evaluate_predictions,
    evaluate_scores,
)
from repro.evaluation.roc import roc_curve, auc_score, roc_auc_for_result
from repro.evaluation.threshold import threshold_sweep, best_threshold
from repro.evaluation.protocol import (
    EvaluationProtocol,
    MethodEvaluation,
    evaluate_method_on_dataset,
    evaluate_incremental_ltm,
)
from repro.evaluation.comparison import ComparisonTable, compare_methods
from repro.evaluation.scaling import linear_fit, runtime_scaling_study

__all__ = [
    "ConfusionMatrix",
    "source_confusion_matrices",
    "source_quality_from_truth",
    "EvaluationMetrics",
    "evaluate_predictions",
    "evaluate_scores",
    "roc_curve",
    "auc_score",
    "roc_auc_for_result",
    "threshold_sweep",
    "best_threshold",
    "EvaluationProtocol",
    "MethodEvaluation",
    "evaluate_method_on_dataset",
    "evaluate_incremental_ltm",
    "ComparisonTable",
    "compare_methods",
    "linear_fit",
    "runtime_scaling_study",
]

"""The paper's evaluation protocol for single methods.

Two protocols are implemented:

* **Batch protocol** (used for LTM and all baselines): fit the method on the
  full claim matrix, then grade its scores on the labelled facts.
* **Incremental protocol** (used for LTMinc, Section 6.2): fit standard LTM
  on all data *except* the labelled entities, read off the learned source
  quality, and use Equation (3) to predict the labelled entities' facts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.base import TruthMethod, TruthResult
from repro.core.incremental import IncrementalLTM
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.data.dataset import TruthDataset
from repro.evaluation.metrics import EvaluationMetrics, evaluate_scores
from repro.evaluation.roc import roc_auc_for_result
from repro.exceptions import EvaluationError

__all__ = [
    "MethodEvaluation",
    "EvaluationProtocol",
    "evaluate_method_on_dataset",
    "evaluate_incremental_ltm",
]


@dataclass
class MethodEvaluation:
    """Everything measured for one method on one dataset.

    Attributes
    ----------
    method_name:
        Name of the evaluated method.
    dataset_name:
        Name of the dataset.
    metrics:
        Threshold-0.5 metrics (the Table 7 row).
    auc:
        Area under the ROC curve over the labelled facts (Figure 3).
    runtime_seconds:
        Fit time of the method.
    result:
        The underlying fitted :class:`~repro.core.base.TruthResult`.
    """

    method_name: str
    dataset_name: str
    metrics: EvaluationMetrics
    auc: float
    runtime_seconds: float
    result: TruthResult = field(repr=False, default=None)

    def as_row(self) -> dict[str, float | str]:
        """Flatten into a table row (method, precision, recall, fpr, accuracy, f1, auc)."""
        row: dict[str, float | str] = {"method": self.method_name, "dataset": self.dataset_name}
        row.update(self.metrics.as_dict())
        row["auc"] = self.auc
        row["runtime_seconds"] = self.runtime_seconds
        return row


@dataclass(frozen=True)
class EvaluationProtocol:
    """Settings shared across method evaluations.

    Attributes
    ----------
    threshold:
        Decision threshold (0.5 as in the paper's headline results).
    compute_auc:
        Whether to compute the ROC AUC as well.
    """

    threshold: float = 0.5
    compute_auc: bool = True


def evaluate_method_on_dataset(
    method: TruthMethod,
    dataset: TruthDataset,
    protocol: EvaluationProtocol | None = None,
) -> MethodEvaluation:
    """Fit ``method`` on the dataset's claims and grade it on the labelled facts."""
    protocol = protocol or EvaluationProtocol()
    dataset.require_labels()
    result = method.fit(dataset.claims)
    metrics = evaluate_scores(result, dataset.labels, threshold=protocol.threshold)
    auc = float("nan")
    if protocol.compute_auc:
        try:
            auc = roc_auc_for_result(result, dataset.labels)
        except EvaluationError:
            auc = float("nan")
    return MethodEvaluation(
        method_name=method.name,
        dataset_name=dataset.name,
        metrics=metrics,
        auc=auc,
        runtime_seconds=result.runtime_seconds,
        result=result,
    )


def evaluate_incremental_ltm(
    dataset: TruthDataset,
    priors: LTMPriors | None = None,
    iterations: int = 100,
    seed: int | None = 7,
    protocol: EvaluationProtocol | None = None,
) -> MethodEvaluation:
    """The paper's LTMinc protocol (Section 6.2).

    Standard LTM is fitted on every entity *except* the labelled ones; the
    learned per-source sensitivity/specificity is then plugged into
    Equation (3) to predict the labelled entities' facts, which are graded
    against ground truth.
    """
    protocol = protocol or EvaluationProtocol()
    dataset.require_labels()

    training_claims, _ = dataset.split_labelled_entities()
    if training_claims.num_facts == 0:
        raise EvaluationError(
            "the LTMinc protocol requires unlabelled entities to learn source quality from"
        )
    model = LatentTruthModel(priors=priors, iterations=iterations, seed=seed)
    training_result = model.fit(training_claims)

    predictor = IncrementalLTM(training_result.source_quality)
    labelled_matrix, labels, fact_ids = dataset.label_subset_matrix()
    incremental_result = predictor.fit(labelled_matrix)

    # Grade against the labels of the restricted matrix (densely re-indexed).
    metrics = evaluate_scores(
        incremental_result.scores,
        labels,
        threshold=protocol.threshold,
    )
    auc = float("nan")
    if protocol.compute_auc:
        try:
            labelled_ids = {i: bool(v) for i, v in enumerate(labels)}
            auc = roc_auc_for_result(incremental_result, labelled_ids)
        except EvaluationError:
            auc = float("nan")

    # LTMinc's reported runtime is prediction only (Table 9): no sampling.
    return MethodEvaluation(
        method_name="LTMinc",
        dataset_name=dataset.name,
        metrics=metrics,
        auc=auc,
        runtime_seconds=incremental_result.runtime_seconds,
        result=incremental_result,
    )


def labelled_scores(result: TruthResult, dataset: TruthDataset) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: ``(scores, labels)`` arrays over the dataset's labelled facts."""
    fact_ids: Sequence[int] = dataset.labelled_fact_ids
    scores = result.scores_for(fact_ids)
    labels = dataset.labels_array(fact_ids)
    return scores, labels

"""Runtime-scaling study (paper Table 9 and Figure 6).

The paper establishes that LTM's inference cost is linear in the number of
claims by timing it on nested subsets of the movie data and fitting a linear
regression (reporting an R-squared of 0.9913).  This module provides the
subset construction, the timing loop and the regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.base import TruthMethod
from repro.data.dataset import ClaimMatrix
from repro.exceptions import EvaluationError

__all__ = ["LinearFit", "linear_fit", "entity_subsets", "runtime_scaling_study"]


@dataclass(frozen=True)
class LinearFit:
    """Ordinary-least-squares fit ``y ~ slope * x + intercept``.

    Attributes
    ----------
    slope, intercept:
        Fitted coefficients.
    r_squared:
        Goodness of fit; close to 1 indicates the relationship is linear.
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Predicted value at ``x``."""
        return self.slope * x + self.intercept


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Least-squares linear regression of ``y`` on ``x`` with R-squared."""
    x_arr = np.asarray(list(x), dtype=float)
    y_arr = np.asarray(list(y), dtype=float)
    if x_arr.size != y_arr.size:
        raise EvaluationError("x and y must have the same length")
    if x_arr.size < 2:
        raise EvaluationError("linear regression requires at least two points")
    slope, intercept = np.polyfit(x_arr, y_arr, deg=1)
    predictions = slope * x_arr + intercept
    residual = float(((y_arr - predictions) ** 2).sum())
    total = float(((y_arr - y_arr.mean()) ** 2).sum())
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return LinearFit(slope=float(slope), intercept=float(intercept), r_squared=float(r_squared))


def entity_subsets(
    claims: ClaimMatrix,
    fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8, 1.0),
    seed: int | None = 13,
) -> list[ClaimMatrix]:
    """Nested random entity subsets of increasing size (as in Table 9).

    Each subset keeps all facts and claims of the sampled entities, matching
    the paper's construction of the 3k/6k/9k/12k/15k movie subsets.
    """
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise EvaluationError(f"subset fractions must lie in (0, 1], got {fraction}")
    rng = np.random.default_rng(seed)
    entities = list(claims.entities)
    order = rng.permutation(len(entities))
    subsets: list[ClaimMatrix] = []
    for fraction in sorted(fractions):
        count = max(1, int(round(fraction * len(entities))))
        sampled = [entities[i] for i in order[:count]]
        subsets.append(claims.restrict_to_entities(sampled))
    return subsets


def runtime_scaling_study(
    method_factory: Callable[[], TruthMethod],
    subsets: Iterable[ClaimMatrix],
    repeats: int = 1,
) -> tuple[list[dict[str, float]], LinearFit]:
    """Time a method on each subset and regress runtime on the number of claims.

    Parameters
    ----------
    method_factory:
        Zero-argument callable returning a fresh method instance (so each
        timing starts from a clean state).
    subsets:
        Claim matrices of increasing size.
    repeats:
        Number of timed repetitions per subset; the average is used.

    Returns
    -------
    (measurements, fit):
        ``measurements`` is one dict per subset with the number of entities,
        facts, claims and the average runtime; ``fit`` is the linear
        regression of runtime on claims (Figure 6's regression line).
    """
    if repeats <= 0:
        raise EvaluationError("repeats must be positive")
    measurements: list[dict[str, float]] = []
    for subset in subsets:
        runtimes = []
        for _ in range(repeats):
            method = method_factory()
            result = method.fit(subset)
            runtimes.append(result.runtime_seconds)
        measurements.append(
            {
                "entities": float(subset.num_entities),
                "facts": float(subset.num_facts),
                "claims": float(subset.num_claims),
                "runtime_seconds": float(np.mean(runtimes)),
            }
        )
    fit = linear_fit(
        [m["claims"] for m in measurements],
        [m["runtime_seconds"] for m in measurements],
    )
    return measurements, fit

"""ROC curves and AUC (paper Figure 3).

The area under the ROC curve summarises how well a method ranks true facts
above false ones independently of any decision threshold — the paper uses it
to show that LTM's advantage is not an artefact of the 0.5 cut-off.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.base import TruthResult
from repro.exceptions import EvaluationError, MissingGroundTruthError
from repro.types import FactId

__all__ = ["roc_curve", "auc_score", "roc_auc_for_result"]


def roc_curve(
    scores: np.ndarray | Sequence[float],
    labels: np.ndarray | Sequence[bool],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the ROC curve of ``scores`` against Boolean ``labels``.

    Returns ``(false_positive_rates, true_positive_rates, thresholds)`` with
    points ordered from the most permissive threshold to the strictest, and
    including the trivial (0, 0) and (1, 1) end points.
    """
    scores = np.asarray(scores, dtype=float)
    labels = np.asarray(labels, dtype=bool)
    if scores.shape != labels.shape:
        raise EvaluationError(f"scores and labels must align; got {scores.shape} vs {labels.shape}")
    if scores.size == 0:
        raise MissingGroundTruthError("cannot compute a ROC curve on an empty labelled set")

    num_positive = int(labels.sum())
    num_negative = int((~labels).sum())
    if num_positive == 0 or num_negative == 0:
        raise EvaluationError("ROC analysis requires at least one positive and one negative label")

    order = np.argsort(-scores, kind="stable")
    sorted_labels = labels[order]
    sorted_scores = scores[order]

    # Cumulative counts after including each claim, collapsing tied scores.
    tps = np.cumsum(sorted_labels)
    fps = np.cumsum(~sorted_labels)
    distinct = np.where(np.diff(sorted_scores) != 0)[0]
    idx = np.concatenate([distinct, [scores.size - 1]])

    tpr = np.concatenate([[0.0], tps[idx] / num_positive])
    fpr = np.concatenate([[0.0], fps[idx] / num_negative])
    thresholds = np.concatenate([[np.inf], sorted_scores[idx]])
    return fpr, tpr, thresholds


def auc_score(
    scores: np.ndarray | Sequence[float],
    labels: np.ndarray | Sequence[bool],
) -> float:
    """Area under the ROC curve (trapezoidal rule over the curve points)."""
    fpr, tpr, _ = roc_curve(scores, labels)
    return float(np.trapezoid(tpr, fpr))


def roc_auc_for_result(
    result: TruthResult,
    labels: Mapping[FactId, bool],
    fact_ids: Sequence[FactId] | None = None,
) -> float:
    """AUC of a fitted method's scores over the labelled facts."""
    if fact_ids is None:
        fact_ids = sorted(labels)
    if not fact_ids:
        raise MissingGroundTruthError("no labelled facts to evaluate on")
    indices = np.asarray(list(fact_ids), dtype=np.int64)
    truth = np.array([labels[f] for f in fact_ids], dtype=bool)
    return auc_score(result.scores[indices], truth)

"""Multi-method comparison harness (paper Table 7, Figures 2 and 3).

:func:`compare_methods` runs a suite of truth-finding methods on one dataset
and collects, for each, the threshold-0.5 metrics, the ROC AUC and the
runtime; :class:`ComparisonTable` formats the results in the layout of the
paper's Table 7 and provides the per-threshold accuracy curves of Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.base import TruthMethod
from repro.core.priors import LTMPriors
from repro.data.dataset import TruthDataset
from repro.evaluation.protocol import (
    EvaluationProtocol,
    MethodEvaluation,
    evaluate_incremental_ltm,
    evaluate_method_on_dataset,
)
from repro.evaluation.threshold import threshold_sweep
from repro.exceptions import EvaluationError

__all__ = ["ComparisonTable", "compare_methods"]


@dataclass
class ComparisonTable:
    """The results of comparing several methods on one dataset."""

    dataset_name: str
    evaluations: list[MethodEvaluation] = field(default_factory=list)

    def add(self, evaluation: MethodEvaluation) -> None:
        """Append one method's evaluation."""
        self.evaluations.append(evaluation)

    # -- access -------------------------------------------------------------------
    def methods(self) -> list[str]:
        """Names of the evaluated methods, in insertion order."""
        return [e.method_name for e in self.evaluations]

    def evaluation(self, method_name: str) -> MethodEvaluation:
        """Return the evaluation of ``method_name``."""
        for evaluation in self.evaluations:
            if evaluation.method_name == method_name:
                return evaluation
        raise EvaluationError(f"no evaluation recorded for method {method_name!r}")

    def metric(self, method_name: str, metric: str) -> float:
        """Return one metric (``precision``/``recall``/``fpr``/``accuracy``/``f1``/``auc``)."""
        evaluation = self.evaluation(method_name)
        if metric == "auc":
            return evaluation.auc
        value = evaluation.metrics.as_dict().get(metric)
        if value is None:
            raise EvaluationError(f"unknown metric {metric!r}")
        return float(value)

    def ranked_by(self, metric: str = "accuracy", descending: bool = True) -> list[tuple[str, float]]:
        """Methods ranked by ``metric``."""
        pairs = [(name, self.metric(name, metric)) for name in self.methods()]
        return sorted(pairs, key=lambda kv: kv[1], reverse=descending)

    def as_rows(self) -> list[dict[str, float | str]]:
        """One dict per method: the Table 7 row layout plus AUC and runtime."""
        return [e.as_row() for e in self.evaluations]

    def format(self, metrics: Sequence[str] = ("precision", "recall", "fpr", "accuracy", "f1")) -> str:
        """Render the comparison as an aligned text table (like paper Table 7)."""
        header = ["method"] + list(metrics)
        rows = [header]
        for evaluation in self.evaluations:
            values = evaluation.metrics.as_dict()
            rows.append(
                [evaluation.method_name]
                + [f"{values.get(m, float('nan')):.3f}" for m in metrics]
            )
        widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
        lines = ["  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)) for row in rows]
        return "\n".join(lines)

    # -- Figure 2 support ---------------------------------------------------------------
    def accuracy_curves(
        self,
        dataset: TruthDataset,
        thresholds: Sequence[float] | None = None,
    ) -> dict[str, dict[float, float]]:
        """Accuracy-versus-threshold curve of every method (Figure 2)."""
        curves: dict[str, dict[float, float]] = {}
        for evaluation in self.evaluations:
            if evaluation.result is None:
                continue
            if evaluation.method_name == "LTMinc":
                # LTMinc scores live on the labelled-entity matrix; its curve is
                # computed by the protocol that produced it.
                continue
            sweep = threshold_sweep(evaluation.result, dataset.labels, thresholds=thresholds)
            curves[evaluation.method_name] = {t: m.accuracy for t, m in sweep.items()}
        return curves


def compare_methods(
    dataset: TruthDataset,
    methods: Iterable[TruthMethod],
    protocol: EvaluationProtocol | None = None,
    include_incremental: bool = False,
    incremental_kwargs: Mapping[str, object] | None = None,
) -> ComparisonTable:
    """Run every method in ``methods`` on ``dataset`` and collect a comparison table.

    Parameters
    ----------
    dataset:
        The dataset (claims + labels) to evaluate on.
    methods:
        Instantiated truth methods (e.g. from
        :func:`repro.engine.registry.method_suite`).
    protocol:
        Evaluation settings (threshold, AUC).
    include_incremental:
        Whether to additionally run the LTMinc protocol (Section 6.2), which
        requires unlabelled entities to train on.
    incremental_kwargs:
        Keyword arguments forwarded to
        :func:`repro.evaluation.protocol.evaluate_incremental_ltm`
        (``priors``, ``iterations``, ``seed``).
    """
    protocol = protocol or EvaluationProtocol()
    table = ComparisonTable(dataset_name=dataset.name)
    if include_incremental:
        kwargs = dict(incremental_kwargs or {})
        table.add(evaluate_incremental_ltm(dataset, protocol=protocol, **kwargs))
    for method in methods:
        table.add(evaluate_method_on_dataset(method, dataset, protocol=protocol))
    return table

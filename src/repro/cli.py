"""Command-line interface: simulate datasets, integrate any source, compare methods.

The CLI is a thin wrapper over the unified :mod:`repro.engine` /
:mod:`repro.io` APIs; it exists so that a downstream user can reproduce the
core workflow without writing Python:

* ``repro-truth simulate books out.tsv`` — write a simulated book-seller crawl;
* ``repro-truth integrate in.tsv --method ltm`` — run any registered method
  on a triple file and print the merged records and the source-quality report;
* ``repro-truth integrate --source books`` — the same, but reading from any
  dataset-catalog key (or file path) resolved through :mod:`repro.io`;
* ``repro-truth integrate --source movies --shards 4 --backend processes`` —
  the same again, entity-sharded through :mod:`repro.parallel`;
* ``repro-truth compare in.tsv labels.tsv`` — run the full method comparison
  against a ground-truth label file;
* ``repro-truth export books art/`` — fit a method on any catalog key or
  triple file and write a versioned serving artifact (:mod:`repro.serving`);
  with ``--shards N`` the fit runs sharded, and ``--shard-dir parts/``
  additionally publishes the per-shard artifacts;
* ``repro-truth merge merged/ parts/shard_*`` — recombine per-shard
  artifacts into one servable artifact;
* ``repro-truth query art/ "Harry Potter"`` — answer truth queries from a
  saved artifact without re-running inference; ``--json`` emits one
  canonical-JSON object per result (the :mod:`repro.api` response codec,
  so CLI and HTTP results are byte-compatible);
* ``repro-truth serve art/ --port 8799`` — serve an artifact over HTTP
  through the stdlib ASGI server of :mod:`repro.api` (truth / batch /
  top-k / score / ingest endpoints, rate limiting, metrics, hot swap);
* ``repro-truth store load in.tsv claims.db`` — stream a triple file into
  an on-disk claim store (:mod:`repro.store`) without materialising it;
  ``store stats`` prints its counters, ``store compact`` evicts old
  generations, and ``--source store://claims.db`` integrates it
  out-of-core;
* ``repro-truth methods`` — list every registered solver with its metadata;
* ``repro-truth datasets`` — list every catalog dataset with its metadata.

Telemetry (:mod:`repro.obs`) rides along everywhere: ``integrate``,
``export`` and ``serve`` accept ``--telemetry`` (record spans, print the
span tree at the end) and ``--trace-out spans.jsonl`` (stream every span to
a canonical-JSON lines file), and ``repro-truth obs summary|tail`` renders a
recorded trace file after the fact.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.data.claim_builder import build_dataset
from repro.data.loaders import load_labels_csv, load_triples_csv, save_triples_csv
from repro.engine.facade import discover
from repro.engine.registry import default_registry, method_suite
from repro.evaluation.comparison import compare_methods
from repro.exceptions import (
    ArtifactError,
    ConfigurationError,
    DataModelError,
    EmptyDatasetError,
    StoreError,
)
from repro.io.catalog import as_source, default_catalog
from repro.pipeline.report import (
    format_integration_summary,
    format_merged_records,
    format_quality_report,
)
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

__all__ = ["main", "build_parser", "format_method_table", "format_dataset_table"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-truth",
        description="Latent Truth Model truth discovery for data integration",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="generate a simulated dataset")
    simulate.add_argument("kind", choices=["books", "movies"], help="which simulator to run")
    simulate.add_argument("output", help="path of the triple TSV to write")
    simulate.add_argument("--entities", type=int, default=None, help="number of entities to simulate")
    simulate.add_argument("--seed", type=int, default=17, help="random seed")

    integrate = subparsers.add_parser(
        "integrate", help="integrate a triple file or catalog dataset"
    )
    integrate.add_argument(
        "input",
        nargs="?",
        default=None,
        help="triple file with header entity/attribute/source (or a catalog key)",
    )
    integrate.add_argument(
        "--source",
        default=None,
        help="dataset to integrate: a catalog key (see 'repro-truth datasets') or a file path",
    )
    integrate.add_argument(
        "--method",
        default="ltm",
        help="registered truth method to run (see 'repro-truth methods')",
    )
    integrate.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="solver iterations (the method's own default when omitted)",
    )
    integrate.add_argument("--threshold", type=float, default=0.5, help="acceptance threshold")
    integrate.add_argument("--seed", type=int, default=7, help="random seed")
    integrate.add_argument(
        "--kernel",
        choices=["scalar", "blocked", "auto"],
        default=None,
        help="Gibbs sweep kernel for sampling methods (exact-seed identical; "
        "auto picks the fastest)",
    )
    integrate.add_argument("--max-records", type=int, default=20, help="merged records to print")
    _add_execution_arguments(integrate)
    _add_telemetry_arguments(integrate)

    compare = subparsers.add_parser("compare", help="compare all methods against labels")
    compare.add_argument("input", help="triple TSV with header entity/attribute/source")
    compare.add_argument("labels", help="label TSV with header entity/attribute/truth")
    compare.add_argument("--iterations", type=int, default=100, help="Gibbs iterations for LTM")
    compare.add_argument("--seed", type=int, default=7, help="random seed")

    export = subparsers.add_parser(
        "export", help="fit a method and write a versioned serving artifact"
    )
    export.add_argument(
        "source",
        help="dataset to fit: a catalog key (see 'repro-truth datasets') or a file path",
    )
    export.add_argument("output", help="artifact directory to write")
    export.add_argument(
        "--method",
        default="ltm",
        help="registered truth method to fit (see 'repro-truth methods')",
    )
    export.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="solver iterations (the method's own default when omitted)",
    )
    export.add_argument("--threshold", type=float, default=0.5, help="acceptance threshold")
    export.add_argument("--seed", type=int, default=7, help="random seed")
    export.add_argument(
        "--kernel",
        choices=["scalar", "blocked", "auto"],
        default=None,
        help="Gibbs sweep kernel for sampling methods (exact-seed identical; "
        "auto picks the fastest)",
    )
    export.add_argument("--name", default=None, help="artifact name (defaults to the method)")
    _add_execution_arguments(export)
    _add_telemetry_arguments(export)
    export.add_argument(
        "--shard-dir",
        default=None,
        help="with --shards: also write the per-shard artifacts into this directory",
    )

    merge = subparsers.add_parser(
        "merge", help="combine per-shard artifacts into one servable artifact"
    )
    merge.add_argument("output", help="merged artifact directory to write")
    merge.add_argument("shards", nargs="+", help="shard artifact directories (in shard order)")
    merge.add_argument("--name", default=None, help="merged artifact name")

    query = subparsers.add_parser("query", help="answer truth queries from a saved artifact")
    query.add_argument("artifact", help="artifact directory written by 'export'")
    query.add_argument(
        "entity",
        nargs="?",
        default=None,
        help="entity to look up (omit for the artifact's global top facts)",
    )
    query.add_argument(
        "--attribute",
        default=None,
        help="attribute value for a point lookup (requires an entity)",
    )
    query.add_argument("--top", type=int, default=10, help="facts to print")
    query.add_argument(
        "--json",
        action="store_true",
        help="emit one canonical-JSON object per result (machine-readable; "
        "shares the repro.api response codec)",
    )

    serve = subparsers.add_parser(
        "serve", help="serve an artifact over HTTP (stdlib ASGI server, repro.api)"
    )
    serve.add_argument("artifact", help="artifact directory written by 'export'")
    serve.add_argument("--host", default="127.0.0.1", help="interface to bind")
    serve.add_argument("--port", type=int, default=8799, help="port to bind (0 = ephemeral)")
    serve.add_argument(
        "--rate",
        type=float,
        default=100.0,
        help="per-client sustained requests/sec (0 disables rate limiting)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=None,
        help="per-client token-bucket size (default: one second's worth)",
    )
    serve.add_argument(
        "--idempotency-ttl",
        type=float,
        default=3600.0,
        help="seconds an Idempotency-Key replay stays answerable",
    )
    _add_telemetry_arguments(serve)

    store = subparsers.add_parser(
        "store", help="manage on-disk claim stores (repro.store, out-of-core corpora)"
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_load = store_sub.add_parser(
        "load", help="stream a triple file into a claim store (append-only)"
    )
    store_load.add_argument("input", help="triple TSV with header entity/attribute/source")
    store_load.add_argument("store", help="claim-store path (created when missing)")
    store_load.add_argument(
        "--batch-size",
        type=int,
        default=10_000,
        help="rows per ingest batch (bounds loader memory)",
    )
    store_stats = store_sub.add_parser("stats", help="print a claim store's counters")
    store_stats.add_argument("store", help="claim-store path")
    store_compact = store_sub.add_parser(
        "compact", help="evict old generations or time windows, then vacuum"
    )
    store_compact.add_argument("store", help="claim-store path")
    store_compact.add_argument(
        "--keep-last",
        type=int,
        default=None,
        help="keep only the N most recent ingest generations",
    )
    store_compact.add_argument(
        "--older-than",
        type=float,
        default=None,
        help="drop rows ingested before this UNIX timestamp",
    )

    obs_cmd = subparsers.add_parser(
        "obs", help="inspect recorded telemetry traces (repro.obs)"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_summary = obs_sub.add_parser(
        "summary", help="render a span JSONL file as a tree plus per-span aggregates"
    )
    obs_summary.add_argument("trace", help="span JSONL written by --trace-out")
    obs_tail = obs_sub.add_parser(
        "tail", help="print the most recently finished spans of a span JSONL file"
    )
    obs_tail.add_argument("trace", help="span JSONL written by --trace-out")
    obs_tail.add_argument("--last", type=int, default=10, help="spans to print")

    subparsers.add_parser("methods", help="list registered truth methods and their metadata")
    subparsers.add_parser("datasets", help="list catalog datasets and their metadata")
    return parser


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared sharded-execution flags (see ``repro.parallel``)."""
    from repro.engine.config import EXECUTION_BACKENDS

    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="entity shards to fit in parallel (1 = classic single-shard run)",
    )
    parser.add_argument(
        "--backend",
        choices=list(EXECUTION_BACKENDS),
        default="processes",
        help="where shard fits run when --shards > 1 (default: processes)",
    )
    parser.add_argument(
        "--sync-rounds",
        type=int,
        default=1,
        help="quality-sync rounds of the shard merge for LTM-family methods",
    )


def _add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared telemetry flags (see ``repro.obs``)."""
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="record tracing spans and print the span tree when the command finishes",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="stream every finished span to this JSONL file (implies --telemetry; "
        "inspect with 'repro-truth obs summary|tail')",
    )


def _configure_telemetry(args: argparse.Namespace):
    """Install the process-global tracer requested by --telemetry/--trace-out."""
    if not (getattr(args, "telemetry", False) or getattr(args, "trace_out", None)):
        return None
    from repro import obs

    return obs.configure(trace_path=args.trace_out)


def _finish_telemetry(tracer, args: argparse.Namespace) -> None:
    """Print the recorded span tree (if any) and tear the tracer down."""
    if tracer is None:
        return
    from repro import obs
    from repro.obs.render import format_span_summary

    collector = tracer.collector
    spans = collector.spans if collector is not None else []
    if spans:
        print()
        print("Telemetry")
        print("---------")
        print(format_span_summary(spans))
    if getattr(args, "trace_out", None):
        print(f"trace written to {args.trace_out}")
    obs.shutdown()


def _execution_from_args(args: argparse.Namespace):
    """Build the ExecutionConfig requested by --shards/--backend, or None."""
    shards = getattr(args, "shards", 1)
    if shards < 1:
        raise ConfigurationError("--shards must be at least 1")
    if shards == 1:
        return None
    from repro.engine.config import ExecutionConfig

    return ExecutionConfig(
        num_shards=shards,
        backend=args.backend,
        quality_sync_rounds=args.sync_rounds,
    )


def _run_simulate(args: argparse.Namespace) -> int:
    if args.kind == "books":
        config = BookAuthorConfig(seed=args.seed)
        if args.entities:
            config = BookAuthorConfig(
                num_books=args.entities,
                labelled_books=min(100, args.entities),
                seed=args.seed,
            )
        dataset = BookAuthorSimulator(config).generate()
    else:
        config = MovieDirectorConfig(seed=args.seed)
        if args.entities:
            config = MovieDirectorConfig(
                num_movies=args.entities,
                labelled_movies=min(100, args.entities),
                seed=args.seed,
            )
        dataset = MovieDirectorSimulator(config).generate()

    # Write the dataset's raw triples (its positive claims) through the
    # DataSource view of the simulated dataset.
    from repro.io.sources import DatasetSource

    source = DatasetSource(dataset)
    count = save_triples_csv(source.iter_triples(), args.output)
    print(f"wrote {count} triples ({dataset.claims.num_facts} facts, "
          f"{dataset.claims.num_sources} sources) to {args.output}")
    return 0


def _run_integrate(args: argparse.Namespace) -> int:
    tracer = _configure_telemetry(args)
    try:
        return _integrate(args)
    finally:
        _finish_telemetry(tracer, args)


def _integrate(args: argparse.Namespace) -> int:
    if (args.input is None) == (args.source is None):
        print(
            "error: give exactly one of a positional input file or --source",
            file=sys.stderr,
        )
        return 2
    spec = _resolve_method_spec(args.method)
    if spec is None:
        return 2
    # Pass the sampler settings only to methods that take them, and only when
    # the user asked for them (so each method keeps its own iteration
    # default); for LTM, omitting priors selects the data-adaptive defaults
    # (LTMPriors.adaptive).
    params = {}
    if args.iterations is not None and spec.accepts("iterations"):
        params["iterations"] = args.iterations
    if spec.accepts("seed"):
        params["seed"] = args.seed
    if args.kernel is not None and spec.accepts("kernel"):
        params["kernel"] = args.kernel
    try:
        execution = _execution_from_args(args)
        if args.source is not None:
            # --source resolves catalog-first (keys shadow same-named files).
            source = as_source(args.source)
        else:
            # The positional input keeps the historical file-first semantics:
            # a local file named like a catalog key still means the file.
            path = Path(args.input)
            source = as_source(path) if path.exists() else as_source(args.input)
        if execution is not None:
            # Entity-sharded run through repro.parallel (run_integration
            # routes the fit through the engine's executor path).
            from repro.pipeline.integrate import run_integration

            result = run_integration(
                source,
                method=args.method,
                threshold=args.threshold,
                execution=execution,
                **params,
            )
        else:
            result = discover(source, method=args.method, threshold=args.threshold, **params)
    except (ConfigurationError, DataModelError, EmptyDatasetError, StoreError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(format_integration_summary(result))
    execution_info = (
        result.truth_result.extras.get("execution") if result.truth_result else None
    )
    if execution_info:
        print(
            f"execution: {execution_info['num_shards']} entity shards on the "
            f"{execution_info['backend']!r} backend"
        )
    print()
    print("Merged records")
    print("--------------")
    print(format_merged_records(result.merged_records, limit=args.max_records))
    if result.source_quality is not None:
        print()
        print("Source quality")
        print("--------------")
        print(format_quality_report(result.source_quality, top=20))
    return 0


def _resolve_method_spec(method: str):
    """Resolve ``method`` to a fittable claim-based spec, or print an error."""
    registry = default_registry()
    try:
        spec = registry.spec(method)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if not spec.claim_based:
        print(
            f"error: method {spec.key!r} does not consume (entity, attribute, source) "
            f"triples and cannot be fitted on a triple source",
            file=sys.stderr,
        )
        return None
    if spec.requires_quality:
        print(
            f"error: method {spec.key!r} needs previously learned source quality; "
            f"run '--method ltm' instead",
            file=sys.stderr,
        )
        return None
    return spec


def _run_export(args: argparse.Namespace) -> int:
    tracer = _configure_telemetry(args)
    try:
        return _export(args)
    finally:
        _finish_telemetry(tracer, args)


def _export(args: argparse.Namespace) -> int:
    from repro.engine.facade import TruthEngine

    spec = _resolve_method_spec(args.method)
    if spec is None:
        return 2
    params = {}
    if args.iterations is not None and spec.accepts("iterations"):
        params["iterations"] = args.iterations
    if spec.accepts("seed"):
        params["seed"] = args.seed
    if args.kernel is not None and spec.accepts("kernel"):
        params["kernel"] = args.kernel
    try:
        execution = _execution_from_args(args)
        if args.shard_dir is not None and execution is None:
            print("error: --shard-dir requires --shards > 1", file=sys.stderr)
            return 2
        # Positional input keeps integrate's file-first semantics: a local
        # file named like a catalog key still means the file.
        path = Path(args.source)
        source = as_source(path) if path.exists() else as_source(args.source)
        engine_kwargs = {"execution": execution} if execution is not None else {}
        engine = TruthEngine(
            method=args.method, threshold=args.threshold, **engine_kwargs, **params
        )
        engine.fit(source)
        artifact = engine.to_artifact(name=args.name)
        path = artifact.save(args.output)
        shard_paths = []
        if args.shard_dir is not None:
            shard_root = Path(args.shard_dir)
            for shard in engine.shard_artifacts(name=args.name):
                index = shard.extras["shard"]["index"]
                shard_paths.append(shard.save(shard_root / f"shard_{index:02d}"))
    except (ArtifactError, ConfigurationError, DataModelError, EmptyDatasetError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    info = artifact.summary()
    print(
        f"wrote artifact {info['name']!r} (method {info['method']}, "
        f"{info['facts']} facts, {info['entities']} entities, "
        f"{info['sources']} sources, schema v{info['schema_version']}, "
        f"repro {info['repro_version']}) to {path}"
    )
    for shard_path in shard_paths:
        print(f"wrote shard artifact {shard_path}")
    return 0


def _run_merge(args: argparse.Namespace) -> int:
    from repro.parallel import merge_artifacts

    try:
        artifact = merge_artifacts(args.shards, name=args.name)
        path = artifact.save(args.output)
    except (ArtifactError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    info = artifact.summary()
    print(
        f"merged {len(args.shards)} shard artifact(s) into {info['name']!r} "
        f"({info['facts']} facts, {info['entities']} entities, "
        f"{info['sources']} sources) at {path}"
    )
    return 0


def _run_query(args: argparse.Namespace) -> int:
    """Exit codes (pinned by tests): 0 found, 1 no matching fact, 2 bad input."""
    from repro.serving.service import TruthService

    if args.attribute is not None and args.entity is None:
        print("error: --attribute requires an entity", file=sys.stderr)
        return 2
    try:
        service = TruthService(args.artifact)
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    as_json = getattr(args, "json", False)
    if not as_json:
        info = service.stats()
        print(
            f"artifact {info['name']!r}: method {info['method']}, {info['facts']} facts, "
            f"{info['entities']} entities, schema v{info['schema_version']}"
        )
    threshold = service.artifact.config.threshold

    def emit(entity: str, attribute: str, score: float, with_verdict: bool = True) -> None:
        if as_json:
            # One canonical-JSON object per line — the same fact encoding the
            # repro.api HTTP endpoints serve (codec shared via fact_row).
            from repro.api.codec import canonical_json, fact_row

            print(canonical_json(fact_row(entity, attribute, score, threshold)))
        elif with_verdict:
            verdict = "accepted" if score >= threshold else "rejected"
            print(f"{entity}\t{attribute}\t{score:.4f}\t{verdict}")
        else:
            print(f"{entity}\t{attribute}\t{score:.4f}")

    if args.attribute is not None:
        try:
            score = service.truth_of(args.entity, args.attribute)
        except KeyError:
            print(f"no stored fact ({args.entity!r}, {args.attribute!r})", file=sys.stderr)
            return 1
        emit(args.entity, args.attribute, score)
        return 0
    if args.entity is not None:
        ranked = service.lookup(args.entity)
        if not ranked:
            print(f"no stored facts for entity {args.entity!r}", file=sys.stderr)
            return 1
        for attribute, score in ranked[: args.top]:
            emit(args.entity, attribute, score)
        return 0
    for entity, attribute, score in service.top_k(args.top):
        emit(entity, attribute, score, with_verdict=False)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    tracer = _configure_telemetry(args)
    try:
        return _serve_command(args)
    finally:
        _finish_telemetry(tracer, args)


def _serve_command(args: argparse.Namespace) -> int:
    """Serve an artifact over HTTP with the bundled stdlib ASGI server."""
    import asyncio
    import contextlib
    import signal

    from repro.api import create_app
    from repro.api.server import APIServer

    try:
        app = create_app(
            args.artifact,
            rate=args.rate if args.rate > 0 else None,
            burst=args.burst,
            idempotency_ttl=args.idempotency_ttl,
        )
    except (ArtifactError, ConfigurationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    async def _serve() -> None:
        server = APIServer(app, host=args.host, port=args.port)
        await server.start()
        info = app.service.artifact.summary()
        print(
            f"serving artifact {info['name']!r} (method {info['method']}, "
            f"{info['facts']} facts) on http://{args.host}:{server.port}",
            flush=True,
        )
        print(
            "endpoints: /truth/{entity} /batch /top-k /score /ingest /refresh "
            "/healthz /metrics",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    # SIGTERM shuts down as cleanly as Ctrl-C: supervisors (and the CI smoke
    # test) stop the server with `kill -TERM` and expect exit code 0.
    with contextlib.suppress(ValueError):  # not the main thread
        signal.signal(signal.SIGTERM, signal.default_int_handler)
    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    return 0


def _run_store(args: argparse.Namespace) -> int:
    """The ``store load | stats | compact`` out-of-core subcommands."""
    from repro.data.loaders import iter_triples_csv
    from repro.store import ClaimStore

    try:
        if args.store_command == "load":
            # iter_triples_csv streams, ClaimStore.append batches: the load
            # holds at most --batch-size rows in memory at once.
            with ClaimStore(args.store) as store:
                count = store.append(
                    iter_triples_csv(args.input), batch_size=args.batch_size
                )
                info = store.stats()
            print(
                f"loaded {count} triples from {args.input} into {args.store} "
                f"(generation {info['generations']}; now {info['triples']} triples, "
                f"{info['entities']} entities, {info['sources']} sources)"
            )
            return 0
        if args.store_command == "stats":
            with ClaimStore(args.store, read_only=True) as store:
                info = dict(store.stats())
                generations = store.generations()
            print(
                f"claim store {info['path']} (schema v{info['schema_version']}): "
                f"{info['triples']} triples, {info['entities']} entities, "
                f"{info['sources']} sources, {info['generations']} generation(s)"
            )
            if generations:
                rows = [
                    (str(g["generation"]), str(g["rows"]), f"{g['ingested_at']:.0f}")
                    for g in generations
                ]
                print(_format_table(("generation", "rows", "ingested_at"), rows))
            return 0
        if args.keep_last is None and args.older_than is None:
            print(
                "error: store compact needs --keep-last and/or --older-than",
                file=sys.stderr,
            )
            return 2
        with ClaimStore(args.store) as store:
            deleted = store.compact(
                keep_last=args.keep_last, older_than=args.older_than
            )
            info = store.stats()
        print(
            f"evicted {deleted} triples from {args.store}; "
            f"{info['triples']} triples across {info['entities']} entities remain"
        )
        return 0
    except (DataModelError, StoreError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _run_compare(args: argparse.Namespace) -> int:
    raw = load_triples_csv(args.input)
    labels = load_labels_csv(args.labels)
    dataset = build_dataset(raw, truth=labels, name=args.input)
    if not dataset.labels:
        print("error: none of the labelled (entity, attribute) pairs appear in the data", file=sys.stderr)
        return 2
    suite = method_suite(iterations=args.iterations, seed=args.seed)
    # The LTMinc protocol needs unlabelled entities to learn source quality from;
    # skip it when every entity in the file is labelled.
    labelled_entities = {dataset.claims.fact(f).entity for f in dataset.labels}
    include_incremental = len(labelled_entities) < dataset.claims.num_entities
    table = compare_methods(
        dataset,
        suite,
        include_incremental=include_incremental,
        incremental_kwargs={"iterations": args.iterations, "seed": args.seed},
    )
    print(table.format())
    return 0


def _format_table(header: tuple[str, ...], rows: list[tuple[str, ...]]) -> str:
    """Fixed-width rendering with the last column left unpadded."""
    fixed = len(header) - 1
    widths = [max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(fixed)]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(fixed)) + "  " + header[fixed],
        "  ".join("-" * widths[i] for i in range(fixed)) + "  " + "-" * len(header[fixed]),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(fixed)) + "  " + row[fixed])
    return "\n".join(lines)


def format_method_table() -> str:
    """A fixed-width table of every registered method and its metadata."""
    rows = [
        (
            spec.key,
            spec.display_name,
            "yes" if spec.supports_incremental else "no",
            "yes" if spec.supports_quality else "no",
            spec.output_range,
            spec.summary,
        )
        for spec in default_registry().specs()
    ]
    header = ("method", "display", "incremental", "quality", "scores", "description")
    return _format_table(header, rows)


def format_dataset_table() -> str:
    """A fixed-width table of every catalog dataset and its metadata."""
    rows = [
        (
            spec.key,
            spec.kind,
            "yes" if spec.has_labels else "no",
            "yes" if spec.streams else "no",
            ", ".join(spec.aliases) if spec.aliases else "-",
            spec.summary,
        )
        for spec in default_catalog().specs()
    ]
    header = ("dataset", "kind", "labels", "streaming", "aliases", "description")
    return _format_table(header, rows)


def _run_obs(args: argparse.Namespace) -> int:
    """The ``obs summary | tail`` trace-inspection subcommands."""
    from repro.obs.render import format_span_line, format_span_summary, load_spans

    try:
        spans = load_spans(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.obs_command == "summary":
        print(format_span_summary(spans))
        return 0
    if args.last < 1:
        print("error: --last must be at least 1", file=sys.stderr)
        return 2
    if not spans:
        print("(no spans)")
        return 0
    for span in spans[-args.last:]:
        print(format_span_line(span))
    return 0


def _run_methods(args: argparse.Namespace) -> int:
    print(format_method_table())
    return 0


def _run_datasets(args: argparse.Namespace) -> int:
    print(format_dataset_table())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "integrate":
        return _run_integrate(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "export":
        return _run_export(args)
    if args.command == "merge":
        return _run_merge(args)
    if args.command == "query":
        return _run_query(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "store":
        return _run_store(args)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "methods":
        return _run_methods(args)
    if args.command == "datasets":
        return _run_datasets(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line interface: simulate datasets, integrate triple files, compare methods.

The CLI is a thin wrapper over the unified :mod:`repro.engine` API; it exists
so that a downstream user can reproduce the core workflow without writing
Python:

* ``repro-truth simulate books out.tsv`` — write a simulated book-seller crawl;
* ``repro-truth integrate in.tsv --method ltm`` — run any registered method
  on a triple file and print the merged records and the source-quality report;
* ``repro-truth compare in.tsv labels.tsv`` — run the full method comparison
  against a ground-truth label file;
* ``repro-truth methods`` — list every registered solver with its metadata.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.baselines import default_method_suite
from repro.data.claim_builder import build_dataset
from repro.data.loaders import load_labels_csv, load_triples_csv, save_triples_csv
from repro.engine.facade import discover
from repro.engine.registry import default_registry
from repro.evaluation.comparison import compare_methods
from repro.exceptions import ConfigurationError, EmptyDatasetError
from repro.pipeline.report import (
    format_integration_summary,
    format_merged_records,
    format_quality_report,
)
from repro.synth.books import BookAuthorConfig, BookAuthorSimulator
from repro.synth.movies import MovieDirectorConfig, MovieDirectorSimulator

__all__ = ["main", "build_parser", "format_method_table"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-truth",
        description="Latent Truth Model truth discovery for data integration",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="generate a simulated dataset")
    simulate.add_argument("kind", choices=["books", "movies"], help="which simulator to run")
    simulate.add_argument("output", help="path of the triple TSV to write")
    simulate.add_argument("--entities", type=int, default=None, help="number of entities to simulate")
    simulate.add_argument("--seed", type=int, default=17, help="random seed")

    integrate = subparsers.add_parser("integrate", help="integrate a triple TSV")
    integrate.add_argument("input", help="triple TSV with header entity/attribute/source")
    integrate.add_argument(
        "--method",
        default="ltm",
        help="registered truth method to run (see 'repro-truth methods')",
    )
    integrate.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="solver iterations (the method's own default when omitted)",
    )
    integrate.add_argument("--threshold", type=float, default=0.5, help="acceptance threshold")
    integrate.add_argument("--seed", type=int, default=7, help="random seed")
    integrate.add_argument("--max-records", type=int, default=20, help="merged records to print")

    compare = subparsers.add_parser("compare", help="compare all methods against labels")
    compare.add_argument("input", help="triple TSV with header entity/attribute/source")
    compare.add_argument("labels", help="label TSV with header entity/attribute/truth")
    compare.add_argument("--iterations", type=int, default=100, help="Gibbs iterations for LTM")
    compare.add_argument("--seed", type=int, default=7, help="random seed")

    subparsers.add_parser("methods", help="list registered truth methods and their metadata")
    return parser


def _run_simulate(args: argparse.Namespace) -> int:
    if args.kind == "books":
        config = BookAuthorConfig(seed=args.seed)
        if args.entities:
            config = BookAuthorConfig(
                num_books=args.entities,
                labelled_books=min(100, args.entities),
                seed=args.seed,
            )
        dataset = BookAuthorSimulator(config).generate()
    else:
        config = MovieDirectorConfig(seed=args.seed)
        if args.entities:
            config = MovieDirectorConfig(
                num_movies=args.entities,
                labelled_movies=min(100, args.entities),
                seed=args.seed,
            )
        dataset = MovieDirectorSimulator(config).generate()

    # Re-derive raw triples from the positive claims of the simulated dataset.
    from repro.types import Triple

    matrix = dataset.claims
    triples = [
        Triple(matrix.fact(int(f)).entity, matrix.fact(int(f)).attribute, matrix.source_names[int(s)])
        for f, s, o in zip(matrix.claim_fact, matrix.claim_source, matrix.claim_obs)
        if o
    ]
    count = save_triples_csv(triples, args.output)
    print(f"wrote {count} triples ({dataset.claims.num_facts} facts, "
          f"{dataset.claims.num_sources} sources) to {args.output}")
    return 0


def _run_integrate(args: argparse.Namespace) -> int:
    raw = load_triples_csv(args.input)
    registry = default_registry()
    try:
        spec = registry.spec(args.method)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not spec.claim_based:
        print(
            f"error: method {spec.key!r} does not consume (entity, attribute, source) "
            f"triples and cannot be run via 'integrate'",
            file=sys.stderr,
        )
        return 2
    if spec.requires_quality:
        print(
            f"error: method {spec.key!r} needs previously learned source quality; "
            f"run '--method ltm' instead",
            file=sys.stderr,
        )
        return 2
    # Pass the sampler settings only to methods that take them, and only when
    # the user asked for them (so each method keeps its own iteration
    # default); for LTM, omitting priors selects the data-adaptive defaults
    # (LTMPriors.adaptive).
    params = {}
    if args.iterations is not None and spec.accepts("iterations"):
        params["iterations"] = args.iterations
    if spec.accepts("seed"):
        params["seed"] = args.seed
    try:
        result = discover(raw, method=args.method, threshold=args.threshold, **params)
    except (ConfigurationError, EmptyDatasetError, TypeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(format_integration_summary(result))
    print()
    print("Merged records")
    print("--------------")
    print(format_merged_records(result.merged_records, limit=args.max_records))
    if result.source_quality is not None:
        print()
        print("Source quality")
        print("--------------")
        print(format_quality_report(result.source_quality, top=20))
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    raw = load_triples_csv(args.input)
    labels = load_labels_csv(args.labels)
    dataset = build_dataset(raw, truth=labels, name=args.input)
    if not dataset.labels:
        print("error: none of the labelled (entity, attribute) pairs appear in the data", file=sys.stderr)
        return 2
    suite = default_method_suite(iterations=args.iterations, seed=args.seed)
    # The LTMinc protocol needs unlabelled entities to learn source quality from;
    # skip it when every entity in the file is labelled.
    labelled_entities = {dataset.claims.fact(f).entity for f in dataset.labels}
    include_incremental = len(labelled_entities) < dataset.claims.num_entities
    table = compare_methods(
        dataset,
        suite,
        include_incremental=include_incremental,
        incremental_kwargs={"iterations": args.iterations, "seed": args.seed},
    )
    print(table.format())
    return 0


def format_method_table() -> str:
    """A fixed-width table of every registered method and its metadata."""
    specs = default_registry().specs()
    rows = [
        (
            spec.key,
            spec.display_name,
            "yes" if spec.supports_incremental else "no",
            "yes" if spec.supports_quality else "no",
            spec.output_range,
            spec.summary,
        )
        for spec in specs
    ]
    header = ("method", "display", "incremental", "quality", "scores", "description")
    widths = [max(len(header[i]), *(len(row[i]) for row in rows)) for i in range(5)]
    lines = [
        "  ".join(header[i].ljust(widths[i]) for i in range(5)) + "  " + header[5],
        "  ".join("-" * widths[i] for i in range(5)) + "  " + "-" * len(header[5]),
    ]
    for row in rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(5)) + "  " + row[5])
    return "\n".join(lines)


def _run_methods(args: argparse.Namespace) -> int:
    print(format_method_table())
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "simulate":
        return _run_simulate(args)
    if args.command == "integrate":
        return _run_integrate(args)
    if args.command == "compare":
        return _run_compare(args)
    if args.command == "methods":
        return _run_methods(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

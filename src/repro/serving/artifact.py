"""Versioned, portable on-disk snapshots of a fitted engine.

A :class:`TruthArtifact` is the serving-side counterpart of a fitted
:class:`~repro.engine.TruthEngine`: everything the closed-form LTMinc
deployment of paper Section 5.4 needs to score traffic — the engine
configuration (method key, hyperparameters, RNG seed), the learned
:class:`~repro.core.base.SourceQualityTable`, the per-fact truth posteriors
and the entity / attribute / source index maps — written as a
self-describing directory::

    artifact/
      manifest.json   # schema version, library version, config, sizes
      arrays.npz      # fact_entity, fact_attribute, fact_score,
                      # source_names, sensitivity, specificity, precision,
                      # accuracy (quality arrays only when learned)

Design constraints, in order:

* **Round-trip fidelity** — ``TruthEngine.load(save(engine))`` must be
  score-identical to the saved engine (pinned per catalog dataset by the
  test suite).
* **Determinism** — two fits with the same seed produce *byte-identical*
  artifact payloads, so artifacts can be content-addressed and diffed.  The
  manifest is canonical JSON (sorted keys) and the ``.npz`` member is
  written through a fixed-timestamp zip writer instead of
  :func:`numpy.savez` (which stamps members with the current time).
* **Forward compatibility** — the manifest carries ``schema_version``;
  :func:`register_migration` installs upgrade hooks so old artifacts keep
  loading, and a library-version mismatch warns
  (:class:`~repro.exceptions.ArtifactVersionWarning`) instead of crashing.

:class:`~repro.serving.service.TruthService` consumes artifacts for
query serving; :meth:`~repro.engine.TruthEngine.save` /
:meth:`~repro.engine.TruthEngine.load` / to_artifact are the engine-side
entry points.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
import json
import warnings
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

import numpy as np

from repro.core.base import SourceQualityTable
from repro.core.priors import BetaPrior, LTMPriors
from repro.engine.config import EngineConfig
from repro.exceptions import ArtifactError, ArtifactVersionWarning
from repro.obs import get_tracer

__all__ = [
    "SCHEMA_VERSION",
    "TruthArtifact",
    "register_migration",
    "load_artifact",
]

#: Current artifact schema version.  Bump when the manifest layout or the
#: array set changes, and register a migration for the old version.
SCHEMA_VERSION = 1

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"

#: Fixed zip member timestamp (the zip epoch) so payloads are byte-stable.
_ZIP_EPOCH = (1980, 1, 1, 0, 0, 0)

#: Registered manifest upgraders: ``schema_version -> hook`` where the hook
#: maps a manifest dict at that version to the next version's layout.
_MIGRATIONS: dict[int, Callable[[dict], dict]] = {}


def register_migration(
    from_version: int, hook: Callable[[dict], dict], replace: bool = False
) -> None:
    """Install ``hook`` to upgrade manifests written at ``from_version``.

    Hooks are applied in sequence at load time until the manifest reaches
    :data:`SCHEMA_VERSION`; each hook receives the manifest dict and must
    return the dict upgraded by exactly one version (bumping its
    ``schema_version`` field itself).
    """
    if from_version >= SCHEMA_VERSION:
        raise ArtifactError(
            f"cannot register a migration from schema version {from_version}: "
            f"current version is {SCHEMA_VERSION}"
        )
    if not replace and from_version in _MIGRATIONS:
        raise ArtifactError(
            f"a migration from schema version {from_version} is already registered"
        )
    _MIGRATIONS[from_version] = hook


def _migrate(manifest: dict) -> dict:
    """Upgrade ``manifest`` to :data:`SCHEMA_VERSION` through registered hooks."""
    version = manifest.get("schema_version")
    if not isinstance(version, int):
        raise ArtifactError("artifact manifest has no integer 'schema_version'")
    while version < SCHEMA_VERSION:
        hook = _MIGRATIONS.get(version)
        if hook is None:
            raise ArtifactError(
                f"artifact schema version {version} is older than "
                f"{SCHEMA_VERSION} and no migration is registered for it"
            )
        manifest = hook(dict(manifest))
        new_version = manifest.get("schema_version")
        if not isinstance(new_version, int) or new_version <= version:
            raise ArtifactError(
                f"migration from schema version {version} did not advance the "
                f"manifest (got {new_version!r})"
            )
        version = new_version
    if version > SCHEMA_VERSION:
        raise ArtifactError(
            f"artifact schema version {version} is newer than this library's "
            f"{SCHEMA_VERSION}; upgrade repro to read it"
        )
    return manifest


# ---------------------------------------------------------------------------
# Config parameter (de)serialisation
# ---------------------------------------------------------------------------
# EngineConfig.params may hold rich objects (LTMPriors, SourceQualityTable);
# they are encoded with explicit type tags so artifacts stay plain JSON.
def _encode_param(value: Any) -> Any:
    if isinstance(value, BetaPrior):
        return {"__type__": "BetaPrior", "positive": value.positive, "negative": value.negative}
    if isinstance(value, LTMPriors):
        return {
            "__type__": "LTMPriors",
            "false_positive": _encode_param(value.false_positive),
            "sensitivity": _encode_param(value.sensitivity),
            "truth": _encode_param(value.truth),
            "per_source": {
                name: [_encode_param(fp), _encode_param(sens)]
                for name, (fp, sens) in value.per_source.items()
            },
        }
    if isinstance(value, SourceQualityTable):
        return {
            "__type__": "SourceQualityTable",
            "source_names": list(value.source_names),
            "sensitivity": [float(x) for x in value.sensitivity],
            "specificity": [float(x) for x in value.specificity],
            "precision": [float(x) for x in value.precision],
            "accuracy": [float(x) for x in value.accuracy],
        }
    if isinstance(value, np.ndarray):
        return {"__type__": "ndarray", "values": value.tolist()}
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): _encode_param(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_param(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ArtifactError(
        f"value of type {type(value).__name__!r} is not artifact-serialisable; "
        f"use JSON-safe values in EngineConfig.params and artifact extras"
    )


def _decode_param(value: Any) -> Any:
    if isinstance(value, dict):
        tag = value.get("__type__")
        if tag == "BetaPrior":
            return BetaPrior(positive=value["positive"], negative=value["negative"])
        if tag == "LTMPriors":
            return LTMPriors(
                false_positive=_decode_param(value["false_positive"]),
                sensitivity=_decode_param(value["sensitivity"]),
                truth=_decode_param(value["truth"]),
                per_source={
                    name: (_decode_param(pair[0]), _decode_param(pair[1]))
                    for name, pair in value.get("per_source", {}).items()
                },
            )
        if tag == "SourceQualityTable":
            return SourceQualityTable(
                source_names=tuple(value["source_names"]),
                sensitivity=np.asarray(value["sensitivity"], dtype=float),
                specificity=np.asarray(value["specificity"], dtype=float),
                precision=np.asarray(value["precision"], dtype=float),
                accuracy=np.asarray(value["accuracy"], dtype=float),
            )
        if tag == "ndarray":
            return np.asarray(value["values"])
        return {k: _decode_param(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode_param(v) for v in value]
    return value


# JSON maps NaN to the non-standard token 'NaN' by default; keep it (allow_nan)
# but make emission canonical for byte-stable manifests.
def _canonical_json(data: Any) -> str:
    return json.dumps(data, sort_keys=True, indent=2, ensure_ascii=False) + "\n"


def _deterministic_npz(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialise ``arrays`` as an ``.npz`` with byte-stable content.

    :func:`numpy.savez` stamps each zip member with the current wall clock,
    which breaks artifact determinism; this writer pins the zip epoch and
    stores members uncompressed in sorted key order.
    """
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_STORED) as archive:
        for key in sorted(arrays):
            payload = io.BytesIO()
            np.save(payload, np.asarray(arrays[key]), allow_pickle=False)
            info = zipfile.ZipInfo(f"{key}.npy", date_time=_ZIP_EPOCH)
            archive.writestr(info, payload.getvalue())
    return buffer.getvalue()


@dataclass
class TruthArtifact:
    """A fitted engine's serving state, decoupled from the process that fit it.

    Attributes
    ----------
    config:
        The :class:`~repro.engine.config.EngineConfig` the engine was built
        from (method key, hyperparameters including seed and priors,
        execution options).
    fact_entity, fact_attribute, fact_score:
        Parallel per-fact arrays: entity key, attribute value (as text) and
        truth posterior, position = fact id of the saved fit.
    quality:
        The learned :class:`~repro.core.base.SourceQualityTable`, or ``None``
        for methods that do not estimate source quality (e.g. voting).
    name:
        Free-form artifact name (defaults to the method key).
    schema_version, repro_version:
        Layout version of the artifact and the library version that wrote it.
    extras:
        Small JSON-safe metadata (e.g. streaming step counters).
    """

    config: EngineConfig
    fact_entity: np.ndarray
    fact_attribute: np.ndarray
    fact_score: np.ndarray
    quality: SourceQualityTable | None = None
    name: str = ""
    schema_version: int = SCHEMA_VERSION
    repro_version: str = ""
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.fact_entity = np.asarray(self.fact_entity, dtype=str)
        self.fact_attribute = np.asarray(self.fact_attribute, dtype=str)
        self.fact_score = np.asarray(self.fact_score, dtype=float)
        if not (
            self.fact_entity.shape == self.fact_attribute.shape == self.fact_score.shape
        ) or self.fact_score.ndim != 1:
            raise ArtifactError(
                "fact_entity, fact_attribute and fact_score must be parallel "
                "one-dimensional arrays"
            )
        if not self.name:
            self.name = self.config.method
        if not self.repro_version:
            from repro import __version__

            self.repro_version = __version__

    # -- introspection ------------------------------------------------------------
    @property
    def num_facts(self) -> int:
        """Number of facts carried by the artifact."""
        return int(self.fact_score.shape[0])

    @property
    def method(self) -> str:
        """Registry key of the method that produced the artifact."""
        return self.config.method

    @property
    def seed(self) -> int | None:
        """The RNG seed recorded in the config (``None`` when unseeded)."""
        seed = self.config.params.get("seed")
        return int(seed) if seed is not None else None

    def fact_scores(self) -> dict[tuple[str, str], float]:
        """Mapping of ``(entity, attribute)`` to truth posterior."""
        return {
            (str(e), str(a)): float(s)
            for e, a, s in zip(self.fact_entity, self.fact_attribute, self.fact_score)
        }

    def summary(self) -> dict[str, Any]:
        """Size and identity statistics, for display and logging."""
        return {
            "name": self.name,
            "method": self.method,
            "schema_version": self.schema_version,
            "repro_version": self.repro_version,
            "seed": self.seed,
            "facts": self.num_facts,
            "entities": len(set(self.fact_entity.tolist())),
            "sources": self.quality.num_sources if self.quality is not None else 0,
            "has_quality": self.quality is not None,
        }

    # -- serialisation ------------------------------------------------------------
    def manifest(self) -> dict[str, Any]:
        """The JSON-safe manifest describing this artifact."""
        return {
            "schema_version": self.schema_version,
            "repro_version": self.repro_version,
            "name": self.name,
            "seed": self.seed,
            "config": {
                **self.config.to_dict(),
                "params": {k: _encode_param(v) for k, v in self.config.params.items()},
            },
            "counts": {
                "facts": self.num_facts,
                "entities": len(set(self.fact_entity.tolist())),
                "sources": self.quality.num_sources if self.quality is not None else 0,
            },
            "has_quality": self.quality is not None,
            "arrays": ARRAYS_NAME,
            "extras": {k: _encode_param(v) for k, v in self.extras.items()},
        }

    def arrays(self) -> dict[str, np.ndarray]:
        """The numeric payload written to ``arrays.npz``."""
        out: dict[str, np.ndarray] = {
            "fact_entity": self.fact_entity,
            "fact_attribute": self.fact_attribute,
            "fact_score": self.fact_score,
        }
        if self.quality is not None:
            out["source_names"] = np.asarray(self.quality.source_names, dtype=str)
            out["sensitivity"] = np.asarray(self.quality.sensitivity, dtype=float)
            out["specificity"] = np.asarray(self.quality.specificity, dtype=float)
            out["precision"] = np.asarray(self.quality.precision, dtype=float)
            out["accuracy"] = np.asarray(self.quality.accuracy, dtype=float)
        return out

    def payload(self) -> dict[str, bytes]:
        """The artifact's full byte payload, keyed by file name.

        Byte-identical for identical fitted state — the determinism contract
        the test suite pins.  The manifest records the SHA-256 of the array
        payload so :meth:`load` can detect a manifest/arrays mismatch (e.g.
        an in-place overwrite caught mid-way).
        """
        arrays_bytes = _deterministic_npz(self.arrays())
        manifest = self.manifest()
        manifest["arrays_sha256"] = hashlib.sha256(arrays_bytes).hexdigest()
        return {
            MANIFEST_NAME: _canonical_json(manifest).encode("utf-8"),
            ARRAYS_NAME: arrays_bytes,
        }

    def save(self, path: str | Path) -> Path:
        """Write the artifact directory at ``path`` and return it.

        The directory is created (parents included); an existing artifact at
        the same path is overwritten atomically file-by-file (write to a
        temporary sibling, then :func:`os.replace`), with the manifest
        replaced *last* as the commit record — a reader never sees a
        half-written file, and a new manifest is never paired with old
        arrays.  A reader racing an in-place overwrite can still observe
        the *old* manifest with *new* arrays; :meth:`load` detects that
        tear through the manifest's recorded array digest (and fact count)
        and fails with a pointed
        :class:`~repro.exceptions.ArtifactError` rather than serving mixed
        state.  For lock-free hot swaps, publish each version to a fresh
        directory (as the streaming ``export_dir`` loop does) and
        :meth:`~repro.serving.service.TruthService.refresh` onto it.
        """
        target = Path(path)
        with get_tracer().span(
            "artifact.save",
            path=str(target),
            artifact=self.name,
            facts=int(self.fact_score.shape[0]),
        ):
            payload = self.payload()
            try:
                target.mkdir(parents=True, exist_ok=True)
                for file_name in sorted(payload, key=lambda name: name == MANIFEST_NAME):
                    temp = target / (file_name + ".tmp")
                    temp.write_bytes(payload[file_name])
                    temp.replace(target / file_name)
            except OSError as exc:
                raise ArtifactError(
                    f"cannot write artifact to {str(target)!r}: {exc}"
                ) from exc
            return target

    @classmethod
    def load(cls, path: str | Path) -> "TruthArtifact":
        """Read an artifact directory written by :meth:`save`.

        Applies registered schema migrations, and warns with
        :class:`~repro.exceptions.ArtifactVersionWarning` (instead of
        failing) when the artifact was written by a different library
        version.
        """
        with get_tracer().span("artifact.load", path=str(path)) as span:
            artifact = cls._load(path)
            span.set(
                artifact=artifact.name, facts=int(artifact.fact_score.shape[0])
            )
            return artifact

    @classmethod
    def _load(cls, path: str | Path) -> "TruthArtifact":
        """The :meth:`load` body, reporting into the ambient span."""
        target = Path(path)
        manifest_path = target / MANIFEST_NAME
        if not manifest_path.is_file():
            raise ArtifactError(
                f"{str(target)!r} is not a truth artifact (no {MANIFEST_NAME})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ArtifactError(f"artifact manifest {str(manifest_path)!r} is not valid JSON") from exc
        except OSError as exc:
            raise ArtifactError(
                f"cannot read artifact manifest {str(manifest_path)!r}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise ArtifactError("artifact manifest must be a JSON object")
        manifest = _migrate(manifest)

        from repro import __version__

        written_by = manifest.get("repro_version", "<unknown>")
        if written_by != __version__:
            warnings.warn(
                f"artifact {str(target)!r} was written by repro {written_by}, "
                f"reading with {__version__}; scores are reproducible only "
                f"under the writing version",
                ArtifactVersionWarning,
                stacklevel=2,
            )

        arrays_path = target / str(manifest.get("arrays", ARRAYS_NAME))
        # Artifacts are portable and may come from untrusted places: never
        # follow a manifest-controlled path outside the artifact directory.
        if not arrays_path.resolve().is_relative_to(target.resolve()):
            raise ArtifactError(
                f"artifact manifest references an array payload outside the "
                f"artifact directory: {manifest.get('arrays')!r}"
            )
        if not arrays_path.is_file():
            raise ArtifactError(f"artifact is missing its array payload {arrays_path.name!r}")
        try:
            arrays_bytes = arrays_path.read_bytes()
        except OSError as exc:
            raise ArtifactError(
                f"cannot read artifact array payload {str(arrays_path)!r}: {exc}"
            ) from exc
        declared_digest = manifest.get("arrays_sha256")
        if (
            declared_digest is not None
            and hashlib.sha256(arrays_bytes).hexdigest() != declared_digest
        ):
            raise ArtifactError(
                f"artifact array payload {arrays_path.name!r} does not match the "
                f"manifest's recorded digest; the artifact was likely caught "
                f"mid-overwrite — re-save it, or publish versions to fresh "
                f"directories instead of overwriting in place"
            )
        try:
            with np.load(io.BytesIO(arrays_bytes), allow_pickle=False) as data:
                arrays = {key: data[key] for key in data.files}
        except (zipfile.BadZipFile, ValueError, OSError) as exc:
            raise ArtifactError(
                f"artifact array payload {str(arrays_path)!r} is corrupt: {exc}"
            ) from exc
        for required in ("fact_entity", "fact_attribute", "fact_score"):
            if required not in arrays:
                raise ArtifactError(f"artifact arrays are missing {required!r}")
        declared_facts = manifest.get("counts", {}).get("facts")
        actual_facts = int(arrays["fact_score"].shape[0])
        if declared_facts is not None and int(declared_facts) != actual_facts:
            raise ArtifactError(
                f"artifact manifest declares {declared_facts} facts but the array "
                f"payload has {actual_facts}; the artifact was likely caught "
                f"mid-overwrite — re-save it, or publish versions to fresh "
                f"directories instead of overwriting in place"
            )

        quality: SourceQualityTable | None = None
        if manifest.get("has_quality"):
            for required in ("source_names", "sensitivity", "specificity", "precision"):
                if required not in arrays:
                    raise ArtifactError(f"artifact arrays are missing {required!r}")
            try:
                quality = SourceQualityTable(
                    source_names=tuple(str(s) for s in arrays["source_names"]),
                    sensitivity=arrays["sensitivity"].astype(float),
                    specificity=arrays["specificity"].astype(float),
                    precision=arrays["precision"].astype(float),
                    accuracy=arrays["accuracy"].astype(float) if "accuracy" in arrays else None,
                )
            except Exception as exc:
                raise ArtifactError(
                    f"artifact quality arrays are inconsistent: {exc}"
                ) from exc

        raw_config = dict(manifest.get("config", {}))
        try:
            raw_config["params"] = {
                k: _decode_param(v) for k, v in raw_config.get("params", {}).items()
            }
            # Tolerate manifests from configs with fewer/more fields than this
            # version knows: unknown keys are dropped, missing ones default.
            known = {f.name for f in dataclasses.fields(EngineConfig)}
            config = EngineConfig(**{k: v for k, v in raw_config.items() if k in known})
        except Exception as exc:
            raise ArtifactError(
                f"artifact manifest carries an invalid engine config: {exc}"
            ) from exc
        return cls(
            config=config,
            fact_entity=arrays["fact_entity"],
            fact_attribute=arrays["fact_attribute"],
            fact_score=arrays["fact_score"],
            quality=quality,
            name=manifest.get("name", ""),
            schema_version=SCHEMA_VERSION,
            repro_version=str(written_by),
            extras={k: _decode_param(v) for k, v in manifest.get("extras", {}).items()},
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TruthArtifact(name={self.name!r}, method={self.method!r}, "
            f"facts={self.num_facts}, quality={self.quality is not None})"
        )


def load_artifact(path: str | Path) -> TruthArtifact:
    """Module-level alias of :meth:`TruthArtifact.load`."""
    return TruthArtifact.load(path)

"""The hot-swappable truth query layer.

:class:`TruthService` is the serve-side of the train/serve split the paper's
Section 5.4 recommends ("standard LTM be infrequently run offline to update
source quality and LTMinc be deployed for online prediction"): it loads a
:class:`~repro.serving.artifact.TruthArtifact` and answers

* **point** queries — :meth:`TruthService.truth_of` — in O(1) via a hash
  index over ``(entity, attribute)``;
* **batch** queries — :meth:`TruthService.batch` — vectorised over pairs;
* **top-k** queries — :meth:`TruthService.top_k` — globally or per entity,
  with per-entity results served through an LRU cache;
* **unseen claims** — :meth:`TruthService.score` — via the closed-form
  LTMinc posterior (Equation 3) under the stored quality table, with
  prior-mean cold-start quality for sources the training run never saw.

All query state lives in one immutable snapshot object; :meth:`refresh`
swaps the snapshot atomically (copy-on-write), so a re-train can publish a
new artifact while in-flight queries keep reading the old one — no locks,
no torn reads.

Build one with :func:`serve`, which accepts an artifact path, a fitted
:class:`~repro.engine.TruthEngine`, a :class:`TruthArtifact`, or anything
:func:`repro.io.as_source` accepts (catalog key, triple file, iterable), in
which case it trains first.

Sharded training plugs in unchanged: an engine fitted with
``ExecutionConfig(num_shards=N)`` (see :mod:`repro.parallel`) exports one
merged artifact with identical query semantics, and per-shard artifacts
(:meth:`~repro.engine.TruthEngine.shard_artifacts`) recombine with
:func:`repro.parallel.merge_artifacts` into an artifact this service loads
like any other.

To serve this layer over the network, front it with :mod:`repro.api` — a
dependency-free ASGI application (``repro.api.create_app``, CLI:
``repro-truth serve``) exposing the point / batch / top-k / score paths as
HTTP endpoints, with rate limiting, idempotent ingest and metrics; its
hot-swap endpoints republish through :meth:`TruthService.refresh` and take
multi-read-consistent views via :meth:`TruthService.snapshot`.
"""

from __future__ import annotations

import time
from functools import lru_cache
from pathlib import Path
from typing import Any, Iterable, Sequence

import numpy as np

from repro.core.base import SourceQualityTable
from repro.core.incremental import IncrementalLTM, prior_mean_predictor
from repro.core.priors import LTMPriors
from repro.data.claim_builder import bulk_build_claim_matrix
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ArtifactError, NotFittedError
from repro.obs import engine_metrics, get_tracer
from repro.serving.artifact import MANIFEST_NAME, TruthArtifact
from repro.types import Triple

__all__ = ["TruthService", "serve"]


class _Snapshot:
    """One immutable, fully-indexed view of an artifact.

    Everything a query touches hangs off this object, so replacing the
    service's snapshot reference is the entire publish step of a refresh.
    """

    __slots__ = (
        "artifact",
        "scores",
        "by_entity",
        "predictor",
        "priors",
        "entity_top",
    )

    def __init__(self, artifact: TruthArtifact, cache_size: int):
        self.artifact = artifact
        # (entity, attribute) -> score: the O(1) point-lookup index.
        self.scores: dict[tuple[str, str], float] = artifact.fact_scores()
        # entity -> [(attribute, score), ...] in fact order.
        self.by_entity: dict[str, list[tuple[str, float]]] = {}
        for (entity, attribute), score in self.scores.items():
            self.by_entity.setdefault(entity, []).append((attribute, score))

        self.priors = self._resolved_priors(artifact)
        self.predictor = self._build_predictor(artifact, self.priors)

        # Per-entity ranked results are memoised per snapshot: the cache
        # dies with the snapshot, so a refresh can never serve stale ranks.
        # Close over the index dict, not the snapshot itself — a `self`
        # closure would cycle snapshot -> cache -> snapshot and keep retired
        # snapshots alive until a full GC pass.
        by_entity = self.by_entity

        @lru_cache(maxsize=cache_size)
        def entity_top(entity: str) -> tuple[tuple[str, float], ...]:
            ranked = sorted(by_entity.get(entity, ()), key=lambda item: -item[1])
            return tuple(ranked)

        self.entity_top = entity_top

    def top(self, k: int, entity: str | None = None) -> list[tuple[str, str, float]]:
        """The ``k`` highest-scored facts of *this* snapshot (see ``top_k``)."""
        if entity is not None:
            name = str(entity)
            return [(name, attr, score) for attr, score in self.entity_top(name)[:k]]
        artifact = self.artifact
        k = min(int(k), artifact.num_facts)
        if k <= 0:
            return []
        order = np.argpartition(-artifact.fact_score, k - 1)[:k]
        order = order[np.argsort(-artifact.fact_score[order], kind="stable")]
        return [
            (
                str(artifact.fact_entity[i]),
                str(artifact.fact_attribute[i]),
                float(artifact.fact_score[i]),
            )
            for i in order
        ]

    @staticmethod
    def _resolved_priors(artifact: TruthArtifact) -> LTMPriors:
        priors = artifact.config.params.get("priors")
        return priors if isinstance(priors, LTMPriors) else LTMPriors()

    @staticmethod
    def _build_predictor(
        artifact: TruthArtifact, priors: LTMPriors
    ) -> IncrementalLTM | None:
        if artifact.quality is None:
            return None
        # Cold-start contract: sources unseen at fit time are scored at the
        # prior-mean quality rather than erroring (see TruthService.score).
        return prior_mean_predictor(artifact.quality, priors)


class TruthService:
    """Query layer over a versioned truth artifact.

    Parameters
    ----------
    artifact:
        A :class:`~repro.serving.artifact.TruthArtifact` or the path of a
        saved artifact directory.
    cache_size:
        Size of the per-entity LRU cache used by entity-scoped
        :meth:`top_k` / :meth:`lookup` queries.

    Examples
    --------
    >>> from repro.engine import TruthEngine
    >>> from repro.serving import TruthService
    >>> engine = TruthEngine(method="voting").fit("paper_example")
    >>> service = TruthService(engine.to_artifact())
    >>> round(service.truth_of("Harry Potter", "Johnny Depp"), 2)
    0.33
    """

    def __init__(self, artifact: TruthArtifact | str | Path, cache_size: int = 4096):
        if isinstance(artifact, (str, Path)):
            artifact = TruthArtifact.load(artifact)
        if not isinstance(artifact, TruthArtifact):
            raise ArtifactError(
                f"TruthService needs a TruthArtifact or artifact path, "
                f"got {type(artifact).__name__}"
            )
        self._cache_size = int(cache_size)
        self._snapshot = _Snapshot(artifact, self._cache_size)
        self._generation = 1
        self._published_at = time.time()
        engine_metrics().snapshot_generation.set(self._generation)

    # -- snapshot management --------------------------------------------------------
    @property
    def artifact(self) -> TruthArtifact:
        """The artifact currently being served."""
        return self._snapshot.artifact

    def snapshot(self) -> _Snapshot:
        """An atomic read view of the currently served state.

        Every attribute of the returned object — ``artifact``, ``scores``,
        ``entity_top``, ``top`` — belongs to *one* published snapshot, so a
        caller making several reads (a score *and* the threshold that
        judges it, say) sees a consistent state even if a concurrent
        :meth:`refresh` swaps the service mid-sequence.  This is the seam
        the :mod:`repro.api` HTTP tier reads through.
        """
        return self._snapshot

    def refresh(self, artifact: TruthArtifact | str | Path) -> "TruthService":
        """Atomically swap in a new artifact (copy-on-write snapshot).

        The replacement snapshot is fully built — indexes, predictor, a
        fresh LRU cache — before the single reference assignment that
        publishes it, so queries racing a refresh see either the old or the
        new state in full, never a mixture.

        Each refresh advances the ``repro_serving_snapshot_generation``
        gauge and records how long the previous snapshot was live in
        ``repro_serving_artifact_age_seconds`` (see :mod:`repro.obs`).
        """
        tracer = get_tracer()
        with tracer.span("service.refresh") as span:
            if isinstance(artifact, (str, Path)):
                artifact = TruthArtifact.load(artifact)
            self._snapshot = _Snapshot(artifact, self._cache_size)
            self._generation += 1
            now = time.time()
            metrics = engine_metrics()
            metrics.snapshot_generation.set(self._generation)
            metrics.artifact_age_seconds.set(max(0.0, now - self._published_at))
            self._published_at = now
            span.set(
                artifact=artifact.name,
                facts=len(artifact.fact_score),
                generation=self._generation,
            )
        return self

    # -- point / batch lookups ------------------------------------------------------
    def truth_of(
        self, entity: str, attribute: str, default: float | None = None
    ) -> float:
        """The stored truth posterior of ``(entity, attribute)`` — O(1).

        Unknown facts return ``default`` when given, else raise ``KeyError``.
        """
        snapshot = self._snapshot
        score = snapshot.scores.get((str(entity), str(attribute)))
        if score is not None:
            return score
        if default is not None:
            return default
        raise KeyError(f"unknown fact ({entity!r}, {attribute!r})")

    def __contains__(self, pair: object) -> bool:
        if not (isinstance(pair, tuple) and len(pair) == 2):
            return False
        return (str(pair[0]), str(pair[1])) in self._snapshot.scores

    def batch(
        self,
        pairs: Iterable[tuple[str, str]],
        default: float = float("nan"),
    ) -> np.ndarray:
        """Vectorised point lookup: one score per ``(entity, attribute)`` pair.

        Unknown facts score ``default`` (NaN unless overridden).
        """
        snapshot = self._snapshot
        scores = snapshot.scores
        return np.array(
            [scores.get((str(e), str(a)), default) for e, a in pairs], dtype=float
        )

    def lookup(self, entity: str) -> list[tuple[str, float]]:
        """All stored attributes of ``entity`` ranked by decreasing score."""
        return list(self._snapshot.entity_top(str(entity)))

    def top_k(self, k: int = 10, entity: str | None = None) -> list[tuple[str, str, float]]:
        """The ``k`` highest-scored facts, globally or for one entity.

        Returns ``(entity, attribute, score)`` tuples in decreasing score
        order.  Entity-scoped queries hit the per-snapshot LRU cache.
        """
        return self._snapshot.top(k, entity)

    def merged_records(self, threshold: float | None = None) -> dict[str, list[str]]:
        """Entity -> accepted attribute values at ``threshold``.

        Defaults to the acceptance threshold stored in the artifact's
        engine config.
        """
        snapshot = self._snapshot
        if threshold is None:
            threshold = snapshot.artifact.config.threshold
        merged: dict[str, list[str]] = {}
        for (entity, attribute), score in snapshot.scores.items():
            if score >= threshold:
                merged.setdefault(entity, []).append(attribute)
        return merged

    # -- scoring unseen claims ------------------------------------------------------
    def score(
        self, data: "Iterable[Triple | tuple] | ClaimMatrix"
    ) -> np.ndarray:
        """Score *new* claims with the closed-form LTMinc posterior (Eq. 3).

        Uses the artifact's stored source-quality table; claims from sources
        the training run never saw fall back to the prior-mean quality
        (sensitivity ``priors.sensitivity.mean``, specificity
        ``1 - priors.false_positive.mean``) — the documented cold-start
        behaviour, shared with
        :meth:`repro.engine.TruthEngine.predict_proba`.

        Raises
        ------
        NotFittedError
            If the artifact's method did not learn source quality
            (e.g. voting) — there is nothing to score unseen claims with.
        """
        snapshot = self._snapshot
        if snapshot.predictor is None:
            raise NotFittedError(
                f"artifact {snapshot.artifact.name!r} carries no source-quality "
                f"table (method {snapshot.artifact.method!r}); export from a "
                f"quality-estimating method (e.g. 'ltm') to score new claims"
            )
        claims = data if isinstance(data, ClaimMatrix) else bulk_build_claim_matrix(data)
        return snapshot.predictor.fit(claims).scores

    def score_facts(
        self, data: "Iterable[Triple | tuple] | ClaimMatrix"
    ) -> dict[tuple[str, str], float]:
        """Like :meth:`score`, returned as ``(entity, attribute) -> score``."""
        claims = data if isinstance(data, ClaimMatrix) else bulk_build_claim_matrix(data)
        scores = self.score(claims)
        return {
            (fact.entity, str(fact.attribute)): float(scores[fact.fact_id])
            for fact in claims.facts
        }

    # -- introspection ---------------------------------------------------------------
    @property
    def quality(self) -> SourceQualityTable | None:
        """The source-quality table being served (``None`` for quality-less methods)."""
        return self._snapshot.artifact.quality

    def entities(self) -> list[str]:
        """Distinct entities with stored facts, in fact order."""
        return list(self._snapshot.by_entity)

    def __len__(self) -> int:
        return self._snapshot.artifact.num_facts

    def stats(self) -> dict[str, Any]:
        """Serving statistics: artifact identity, sizes, cache state."""
        snapshot = self._snapshot
        info = snapshot.artifact.summary()
        cache = snapshot.entity_top.cache_info()
        info["cache"] = {
            "hits": cache.hits,
            "misses": cache.misses,
            "size": cache.currsize,
            "max_size": cache.maxsize,
        }
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        artifact = self._snapshot.artifact
        return (
            f"TruthService(artifact={artifact.name!r}, method={artifact.method!r}, "
            f"facts={artifact.num_facts})"
        )


def serve(
    data: Any,
    *,
    method: str = "ltm",
    cache_size: int = 4096,
    **params: Any,
) -> TruthService:
    """Build a :class:`TruthService` from anything servable.

    Accepted inputs, in resolution order:

    * a :class:`TruthArtifact` or a saved artifact directory path — served
      directly;
    * a fitted :class:`~repro.engine.TruthEngine` — exported and served;
    * anything :func:`repro.io.as_source` accepts — a dataset-catalog key
      (``serve("books")``), a triple file, a :class:`~repro.io.DataSource`
      or a triple iterable — trained with ``method`` / ``params`` first,
      then served.

    The last form is the catalog-to-serving path: every dataset key that can
    feed :meth:`~repro.engine.TruthEngine.fit` can also be served.
    """
    from repro.engine.facade import TruthEngine

    if isinstance(data, TruthArtifact):
        return TruthService(data, cache_size=cache_size)
    if isinstance(data, TruthEngine):
        return TruthService(data.to_artifact(), cache_size=cache_size)
    if isinstance(data, (str, Path)):
        path = Path(data)
        if (path / MANIFEST_NAME).is_file():
            return TruthService(TruthArtifact.load(path), cache_size=cache_size)
    engine = TruthEngine(method=method, **params).fit(data)
    return TruthService(engine.to_artifact(), cache_size=cache_size)

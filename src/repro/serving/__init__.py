"""Model serving (the library's third pillar, next to engine and io).

:mod:`repro.engine` trains, :mod:`repro.io` feeds, and this package serves:
it decouples *answering truth queries* from *running inference*, which is
the split the paper itself recommends for deployment (Section 5.4: run LTM
offline to update source quality, deploy the closed-form LTMinc for online
prediction).

* :class:`~repro.serving.artifact.TruthArtifact` — a versioned, portable
  on-disk snapshot of a fitted engine: config + seed + library version in
  JSON, learned quality / fact posteriors / index maps in ``.npz``.
  Produced by :meth:`repro.engine.TruthEngine.save` /
  ``to_artifact``, restored by :meth:`repro.engine.TruthEngine.load`.
* :class:`~repro.serving.service.TruthService` — a hot-swappable query
  layer: O(1) point lookups, batch and top-k queries, closed-form scoring
  of unseen claims, and atomic :meth:`~repro.serving.service.TruthService.refresh`
  snapshot swaps while a re-train publishes the next artifact.
* :func:`~repro.serving.service.serve` — one-liner from anything servable
  (artifact path, fitted engine, catalog key, triple file) to a running
  service.

Quickstart::

    >>> from repro.engine import TruthEngine
    >>> from repro.serving import TruthService
    >>> engine = TruthEngine(method="voting").fit("paper_example")
    >>> path = engine.save("/tmp/doctest-artifact")         # doctest: +SKIP
    >>> service = TruthService(path)                        # doctest: +SKIP
"""

from repro.serving.artifact import (
    SCHEMA_VERSION,
    TruthArtifact,
    load_artifact,
    register_migration,
)
from repro.serving.service import TruthService, serve

__all__ = [
    "SCHEMA_VERSION",
    "TruthArtifact",
    "TruthService",
    "load_artifact",
    "register_migration",
    "serve",
]

"""Convergence diagnostics for the collapsed Gibbs sampler.

The paper's Figure 5 studies how quickly LTM reaches its final accuracy as a
function of the number of Gibbs iterations, reporting the mean and a 95%
confidence interval over repeated runs.  This module provides the statistics
that experiment needs plus a simple flip-rate-based convergence check usable
without ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.gibbs import GibbsTrace
from repro.exceptions import EvaluationError

__all__ = ["ConvergenceReport", "mean_and_confidence_interval", "assess_convergence"]


@dataclass(frozen=True)
class ConvergenceReport:
    """Summary of a sampler run's convergence behaviour.

    Attributes
    ----------
    converged:
        Whether the flip rate dropped below ``threshold`` and stayed there
        for the trailing ``window`` iterations.
    final_flip_rate:
        Average fraction of facts flipped per sweep over the trailing window.
    iterations:
        Total number of sweeps performed.
    """

    converged: bool
    final_flip_rate: float
    iterations: int


def mean_and_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """Mean and normal-approximation confidence interval of ``values``.

    Returns ``(mean, lower, upper)``.  With a single value the interval
    collapses to the point.  This is the statistic plotted in Figure 5
    (mean accuracy with 95% error bars over repeated runs).
    """
    values = np.asarray(list(values), dtype=float)
    if values.size == 0:
        raise EvaluationError("cannot summarise an empty sequence of values")
    mean = float(values.mean())
    if values.size == 1:
        return mean, mean, mean
    # Normal approximation; z = 1.96 for 95%, generalised via the error function inverse.
    from math import sqrt

    z = _z_score(confidence)
    half_width = z * float(values.std(ddof=1)) / sqrt(values.size)
    return mean, mean - half_width, mean + half_width


def _z_score(confidence: float) -> float:
    """Two-sided z score for the given confidence level (normal approximation)."""
    if not 0.0 < confidence < 1.0:
        raise EvaluationError(f"confidence must be in (0, 1), got {confidence}")
    # Inverse error function via Newton iterations on erf (avoids a scipy dependency).
    from math import erf, sqrt

    target = confidence
    low, high = 0.0, 10.0
    for _ in range(100):
        mid = (low + high) / 2.0
        if erf(mid / sqrt(2.0)) < target:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def assess_convergence(
    trace: GibbsTrace,
    num_facts: int,
    threshold: float = 0.02,
    window: int = 5,
) -> ConvergenceReport:
    """Declare convergence when the flip rate stays below ``threshold``.

    Parameters
    ----------
    trace:
        The sampling trace returned by the Gibbs sampler.
    num_facts:
        Number of facts in the fitted claim matrix.
    threshold:
        Maximum average fraction of facts allowed to flip per sweep.
    window:
        Number of trailing sweeps over which the flip rate is averaged.
    """
    if num_facts <= 0:
        raise EvaluationError("num_facts must be positive")
    rates = trace.flip_fraction(num_facts)
    if not rates:
        return ConvergenceReport(converged=False, final_flip_rate=float("nan"), iterations=0)
    tail = rates[-window:] if len(rates) >= window else rates
    final_rate = float(np.mean(tail))
    return ConvergenceReport(
        converged=final_rate <= threshold,
        final_flip_rate=final_rate,
        iterations=len(rates),
    )

"""Prior specifications for the Latent Truth Model.

The paper places Beta priors on each source's false-positive rate
(``alpha0 = (alpha_{0,1}, alpha_{0,0})`` — prior false-positive and
true-negative pseudo-counts), on each source's sensitivity
(``alpha1 = (alpha_{1,1}, alpha_{1,0})`` — prior true-positive and
false-negative pseudo-counts) and a Beta prior on each fact's prior truth
probability (``beta = (beta_1, beta_0)``).

:class:`LTMPriors` holds these and expands them into the ``(S, 2, 2)`` array
of per-source pseudo-counts the collapsed Gibbs sampler consumes, optionally
with per-source overrides (paper Section 4.2.1, "prior knowledge about the
quality of some specific data sources") and with learned-quality carry-over
for incremental retraining (Section 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.exceptions import PriorError

__all__ = ["BetaPrior", "LTMPriors"]


@dataclass(frozen=True, slots=True)
class BetaPrior:
    """A Beta prior expressed as ``(positive, negative)`` pseudo-counts.

    For quality priors, ``positive`` is the pseudo-count of observation=True
    claims and ``negative`` the pseudo-count of observation=False claims.
    For the truth prior, ``positive`` is the prior true count ``beta_1`` and
    ``negative`` the prior false count ``beta_0``.
    """

    positive: float
    negative: float

    def __post_init__(self) -> None:
        if self.positive <= 0 or self.negative <= 0:
            raise PriorError(
                f"Beta pseudo-counts must be strictly positive, got ({self.positive}, {self.negative})"
            )

    @property
    def mean(self) -> float:
        """Prior expectation ``positive / (positive + negative)``."""
        return self.positive / (self.positive + self.negative)

    @property
    def total(self) -> float:
        """Prior strength (total pseudo-count)."""
        return self.positive + self.negative

    def as_array(self) -> np.ndarray:
        """Return ``[negative, positive]`` indexed by observation value (0/1)."""
        return np.array([self.negative, self.positive], dtype=float)

    @classmethod
    def from_mean(cls, mean: float, strength: float) -> "BetaPrior":
        """Build a prior with the given expectation and total pseudo-count."""
        if not 0.0 < mean < 1.0:
            raise PriorError(f"prior mean must be in (0, 1), got {mean}")
        if strength <= 0:
            raise PriorError(f"prior strength must be positive, got {strength}")
        return cls(positive=mean * strength, negative=(1.0 - mean) * strength)


@dataclass
class LTMPriors:
    """The complete prior specification of the Latent Truth Model.

    Attributes
    ----------
    false_positive:
        Beta prior on each source's false-positive rate (the paper's
        ``alpha0``).  ``positive`` is the prior false-positive count
        ``alpha_{0,1}`` and ``negative`` the prior true-negative count
        ``alpha_{0,0}``.  The paper recommends a strong prior favouring high
        specificity (e.g. ``(10, 1000)``) so the model cannot flip all truths.
    sensitivity:
        Beta prior on each source's sensitivity (the paper's ``alpha1``).
        ``positive`` is the prior true-positive count ``alpha_{1,1}`` and
        ``negative`` the prior false-negative count ``alpha_{1,0}``.  A weak
        uniform prior (e.g. ``(50, 50)``) reflects that missing data is
        common.
    truth:
        Beta prior on the per-fact prior truth probability (the paper's
        ``beta = (beta_1, beta_0)``).
    per_source:
        Optional per-source overrides: mapping from source name to a pair
        ``(false_positive_prior, sensitivity_prior)``.
    """

    false_positive: BetaPrior = field(default_factory=lambda: BetaPrior(10.0, 1000.0))
    sensitivity: BetaPrior = field(default_factory=lambda: BetaPrior(50.0, 50.0))
    truth: BetaPrior = field(default_factory=lambda: BetaPrior(10.0, 10.0))
    per_source: dict[str, tuple[BetaPrior, BetaPrior]] = field(default_factory=dict)

    # -- canonical configurations ----------------------------------------------
    @classmethod
    def paper_book_defaults(cls) -> "LTMPriors":
        """Priors the paper uses for the book-author dataset: alpha0=(10,1000)."""
        return cls(
            false_positive=BetaPrior(10.0, 1000.0),
            sensitivity=BetaPrior(50.0, 50.0),
            truth=BetaPrior(10.0, 10.0),
        )

    @classmethod
    def paper_movie_defaults(cls) -> "LTMPriors":
        """Priors the paper uses for the movie-director dataset: alpha0=(100,10000)."""
        return cls(
            false_positive=BetaPrior(100.0, 10000.0),
            sensitivity=BetaPrior(50.0, 50.0),
            truth=BetaPrior(10.0, 10.0),
        )

    @classmethod
    def uniform(cls) -> "LTMPriors":
        """Fully uninformative priors (useful for synthetic-data studies)."""
        return cls(
            false_positive=BetaPrior(1.0, 1.0),
            sensitivity=BetaPrior(1.0, 1.0),
            truth=BetaPrior(1.0, 1.0),
        )

    @classmethod
    def scaled_to(cls, num_facts: int, specificity_mean: float = 0.99) -> "LTMPriors":
        """Priors whose specificity pseudo-counts scale with the data size.

        The paper notes the specificity prior counts "should be at the same
        scale as the number of facts to become effective".
        """
        strength = max(float(num_facts), 10.0)
        return cls(
            false_positive=BetaPrior.from_mean(1.0 - specificity_mean, strength),
            sensitivity=BetaPrior(50.0, 50.0),
            truth=BetaPrior(10.0, 10.0),
        )

    @classmethod
    def adaptive(
        cls,
        claims,
        specificity_mean: float = 0.99,
        strength_factor: float = 0.5,
    ) -> "LTMPriors":
        """Priors whose specificity strength adapts to the claims-per-source ratio.

        The paper scales the specificity pseudo-counts with the dataset
        ("at the same scale as the number of facts"), choosing ``(10, 1000)``
        for the book data and ``(100, 10000)`` for the movie data.  Relative
        to how much evidence each source contributes, those two choices are
        very different: the book prior outweighs any single seller's claims
        while the movie prior is dominated by each source's ~9000 claims.

        This constructor encodes the rule we found robust across both
        regimes: a prior strength of ``strength_factor`` times the average
        number of claims per source (with a floor of 10), so the prior is
        strong enough to forbid the all-flipped solution but weak enough for
        per-source false-positive rates to be learned from the data.

        Parameters
        ----------
        claims:
            A :class:`~repro.data.dataset.ClaimMatrix` (only its size is used).
        specificity_mean:
            Prior expected specificity.
        strength_factor:
            Fraction of the average per-source claim count used as the prior
            pseudo-count total.
        """
        claims_per_source = claims.num_claims / max(claims.num_sources, 1)
        strength = max(10.0, strength_factor * claims_per_source)
        return cls(
            false_positive=BetaPrior.from_mean(1.0 - specificity_mean, strength),
            sensitivity=BetaPrior(50.0, 50.0),
            truth=BetaPrior(10.0, 10.0),
        )

    # -- expansion to sampler arrays ------------------------------------------------
    def beta_array(self) -> np.ndarray:
        """Return ``[beta_0, beta_1]`` indexed by truth value."""
        return np.array([self.truth.negative, self.truth.positive], dtype=float)

    def alpha_array(self, source_names: Sequence[str]) -> np.ndarray:
        """Expand the priors to per-source pseudo-counts ``alpha[s, i, j]``.

        ``alpha[s, 0, 1]`` is the prior false-positive count of source ``s``,
        ``alpha[s, 0, 0]`` its prior true-negative count, ``alpha[s, 1, 1]``
        its prior true-positive count and ``alpha[s, 1, 0]`` its prior
        false-negative count — exactly the ``alpha_{i,j}`` of Equation (2).
        """
        num_sources = len(source_names)
        alpha = np.empty((num_sources, 2, 2), dtype=float)
        alpha[:, 0, 1] = self.false_positive.positive
        alpha[:, 0, 0] = self.false_positive.negative
        alpha[:, 1, 1] = self.sensitivity.positive
        alpha[:, 1, 0] = self.sensitivity.negative
        for name, (fp_prior, sens_prior) in self.per_source.items():
            if name not in source_names:
                continue
            sid = list(source_names).index(name)
            alpha[sid, 0, 1] = fp_prior.positive
            alpha[sid, 0, 0] = fp_prior.negative
            alpha[sid, 1, 1] = sens_prior.positive
            alpha[sid, 1, 0] = sens_prior.negative
        return alpha

    def with_source_prior(
        self,
        source_name: str,
        false_positive: BetaPrior,
        sensitivity: BetaPrior,
    ) -> "LTMPriors":
        """Return a copy with an additional per-source prior override."""
        per_source = dict(self.per_source)
        per_source[source_name] = (false_positive, sensitivity)
        return LTMPriors(
            false_positive=self.false_positive,
            sensitivity=self.sensitivity,
            truth=self.truth,
            per_source=per_source,
        )

    def with_learned_quality(
        self,
        source_names: Sequence[str],
        expected_counts: np.ndarray | Mapping[str, np.ndarray],
    ) -> "LTMPriors":
        """Carry learned quality counts over as priors for incremental retraining.

        Implements the paper's Section 5.4: "for each source we use
        ``E[n_{s,i,j}] + alpha_{i,j}`` as its quality prior to replace
        ``alpha_{i,j}``".

        Parameters
        ----------
        source_names:
            Source names aligned with ``expected_counts``.
        expected_counts:
            Either an ``(S, 2, 2)`` array of expected confusion counts or a
            mapping from source name to a ``(2, 2)`` array.
        """
        per_source = dict(self.per_source)
        if isinstance(expected_counts, Mapping):
            items = expected_counts.items()
        else:
            counts = np.asarray(expected_counts, dtype=float)
            if counts.shape != (len(source_names), 2, 2):
                raise PriorError(
                    f"expected counts must have shape ({len(source_names)}, 2, 2), got {counts.shape}"
                )
            items = zip(source_names, counts)
        for name, count in items:
            count = np.asarray(count, dtype=float)
            fp_prior = BetaPrior(
                positive=self.false_positive.positive + max(count[0, 1], 0.0),
                negative=self.false_positive.negative + max(count[0, 0], 0.0),
            )
            sens_prior = BetaPrior(
                positive=self.sensitivity.positive + max(count[1, 1], 0.0),
                negative=self.sensitivity.negative + max(count[1, 0], 0.0),
            )
            per_source[name] = (fp_prior, sens_prior)
        return LTMPriors(
            false_positive=self.false_positive,
            sensitivity=self.sensitivity,
            truth=self.truth,
            per_source=per_source,
        )

"""Source confusion-count bookkeeping for the collapsed Gibbs sampler.

The collapsed sampler of Algorithm 1 never materialises the quality
parameters; it only needs, for every source ``s``, the counts
``n[s, i, j]`` — the number of that source's claims whose referred fact
currently has truth ``i`` and whose observation is ``j``.  :class:`SourceCounts`
maintains those counts incrementally as truth assignments change.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import ClaimMatrix
from repro.exceptions import ModelError

__all__ = ["SourceCounts"]


class SourceCounts:
    """Incrementally-maintained per-source confusion counts ``n[s, i, j]``.

    ``i`` indexes the current truth assignment of the claim's fact (0/1) and
    ``j`` the claim's observation (0/1), so ``n[s, 1, 1]`` is the source's
    current true-positive count, ``n[s, 0, 1]`` its false-positive count,
    ``n[s, 1, 0]`` its false-negative count and ``n[s, 0, 0]`` its
    true-negative count.
    """

    def __init__(self, num_sources: int):
        if num_sources <= 0:
            raise ModelError("SourceCounts requires at least one source")
        self.num_sources = num_sources
        self.counts = np.zeros((num_sources, 2, 2), dtype=np.int64)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_assignment(cls, claims: ClaimMatrix, truth: np.ndarray) -> "SourceCounts":
        """Build counts for ``claims`` under the truth assignment ``truth``.

        Parameters
        ----------
        claims:
            The claim matrix.
        truth:
            Boolean/integer array of length ``num_facts`` with the current
            truth assignment of every fact.
        """
        truth = np.asarray(truth)
        if truth.shape != (claims.num_facts,):
            raise ModelError(
                f"truth assignment must have shape ({claims.num_facts},), got {truth.shape}"
            )
        instance = cls(claims.num_sources)
        claim_truth = truth[claims.claim_fact].astype(np.int64)
        obs = claims.claim_obs.astype(np.int64)
        np.add.at(instance.counts, (claims.claim_source, claim_truth, obs), 1)
        return instance

    # -- incremental updates -------------------------------------------------------
    def move_fact(
        self,
        sources: np.ndarray,
        observations: np.ndarray,
        old_truth: int,
        new_truth: int,
    ) -> None:
        """Move one fact's claims from truth bucket ``old_truth`` to ``new_truth``.

        ``sources`` and ``observations`` are the claim arrays of the fact; a
        source appears at most once per fact so plain ``np.add.at`` is exact.
        """
        if old_truth == new_truth:
            return
        obs = observations.astype(np.int64)
        np.add.at(self.counts, (sources, old_truth, obs), -1)
        np.add.at(self.counts, (sources, new_truth, obs), 1)

    def add_fact(self, sources: np.ndarray, observations: np.ndarray, truth: int) -> None:
        """Add one fact's claims under truth bucket ``truth``."""
        np.add.at(self.counts, (sources, truth, observations.astype(np.int64)), 1)

    def remove_fact(self, sources: np.ndarray, observations: np.ndarray, truth: int) -> None:
        """Remove one fact's claims from truth bucket ``truth``."""
        np.add.at(self.counts, (sources, truth, observations.astype(np.int64)), -1)

    # -- views -----------------------------------------------------------------------
    @property
    def true_positives(self) -> np.ndarray:
        """Per-source true-positive count ``n[s, 1, 1]``."""
        return self.counts[:, 1, 1]

    @property
    def false_positives(self) -> np.ndarray:
        """Per-source false-positive count ``n[s, 0, 1]``."""
        return self.counts[:, 0, 1]

    @property
    def false_negatives(self) -> np.ndarray:
        """Per-source false-negative count ``n[s, 1, 0]``."""
        return self.counts[:, 1, 0]

    @property
    def true_negatives(self) -> np.ndarray:
        """Per-source true-negative count ``n[s, 0, 0]``."""
        return self.counts[:, 0, 0]

    def totals_by_truth(self) -> np.ndarray:
        """Return ``n[s, i, 0] + n[s, i, 1]`` with shape ``(S, 2)``."""
        return self.counts.sum(axis=2)

    def total(self) -> int:
        """Total number of claims accounted for."""
        return int(self.counts.sum())

    def copy(self) -> "SourceCounts":
        """Return an independent copy of the counts."""
        clone = SourceCounts(self.num_sources)
        clone.counts = self.counts.copy()
        return clone

    def verify_non_negative(self) -> None:
        """Raise :class:`~repro.exceptions.ModelError` if any count went negative.

        A negative count indicates an inconsistent sequence of incremental
        updates and would silently corrupt the sampler's conditional
        distributions.
        """
        if (self.counts < 0).any():
            raise ModelError("source confusion counts became negative; inconsistent updates")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceCounts(num_sources={self.num_sources}, total={self.total()})"

"""Incremental truth finding — the paper's LTMinc (Section 5.4, Equation 3).

When data arrives as a stream, refitting the full model on every batch is
wasteful.  The paper proposes two lighter alternatives:

1. **Quality carry-over**: keep the learned expected confusion counts as
   priors (``E[n_{s,i,j}] + alpha_{i,j}``) and fit LTM only on the new data —
   implemented by :meth:`repro.core.model.LatentTruthModel.learned_quality_priors`
   together with :meth:`repro.core.priors.LTMPriors.with_learned_quality`.
2. **Closed-form prediction** (LTMinc): assume source quality is unchanged in
   the medium term and compute each new fact's posterior truth probability
   directly from the learned sensitivity/specificity via Equation (3) — no
   sampling at all, which is why LTMinc is nearly as fast as Voting in the
   paper's Table 9.

:class:`IncrementalLTM` implements the second approach.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SourceQualityTable, TruthMethod, TruthResult
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ModelError

__all__ = [
    "posterior_truth_probability",
    "posterior_truth_probability_arrays",
    "IncrementalLTM",
    "prior_mean_predictor",
]


def posterior_truth_probability_arrays(
    claim_fact: np.ndarray,
    claim_source: np.ndarray,
    claim_obs: np.ndarray,
    num_facts: int,
    sensitivity: np.ndarray,
    specificity: np.ndarray,
    truth_prior: tuple[float, float] = (0.5, 0.5),
) -> np.ndarray:
    """Equation (3) on raw claim arrays (see :func:`posterior_truth_probability`).

    This array form is what the sharded reducer
    (:mod:`repro.parallel.merge`) uses to re-score a shard's facts under the
    globally merged source quality without rebuilding a
    :class:`~repro.data.dataset.ClaimMatrix`.  ``claim_source`` must index
    into the quality arrays (which may cover more sources than the shard
    mentions).
    """
    sensitivity = np.asarray(sensitivity, dtype=float)
    specificity = np.asarray(specificity, dtype=float)
    if sensitivity.shape != specificity.shape or sensitivity.ndim != 1:
        raise ModelError("sensitivity and specificity must be parallel per-source arrays")
    if claim_source.size and int(claim_source.max()) >= sensitivity.shape[0]:
        raise ModelError("claim references a source id outside the quality arrays")
    beta1, beta0 = float(truth_prior[0]), float(truth_prior[1])
    if beta1 <= 0 or beta0 <= 0:
        raise ModelError("truth prior weights must be positive")

    eps = 1e-12
    phi1 = np.clip(sensitivity, eps, 1 - eps)
    phi0 = np.clip(1.0 - specificity, eps, 1 - eps)

    obs = claim_obs.astype(float)
    src = claim_source

    log_true = obs * np.log(phi1[src]) + (1 - obs) * np.log(1 - phi1[src])
    log_false = obs * np.log(phi0[src]) + (1 - obs) * np.log(1 - phi0[src])

    log_p_true = np.full(num_facts, np.log(beta1))
    log_p_false = np.full(num_facts, np.log(beta0))
    np.add.at(log_p_true, claim_fact, log_true)
    np.add.at(log_p_false, claim_fact, log_false)

    # Normalise in log space for numerical stability.
    max_log = np.maximum(log_p_true, log_p_false)
    p_true = np.exp(log_p_true - max_log)
    p_false = np.exp(log_p_false - max_log)
    return p_true / (p_true + p_false)


def posterior_truth_probability(
    claims: ClaimMatrix,
    sensitivity: np.ndarray,
    specificity: np.ndarray,
    truth_prior: tuple[float, float] = (0.5, 0.5),
) -> np.ndarray:
    """Equation (3): per-fact truth posterior under fixed source quality.

    For each fact ``f`` with claims ``c`` from sources ``s_c``::

        p(t_f = 1 | o, s)  proportional to  beta_1 * prod_c phi1_s^{o_c} (1 - phi1_s)^{1 - o_c}
        p(t_f = 0 | o, s)  proportional to  beta_0 * prod_c phi0_s^{o_c} (1 - phi0_s)^{1 - o_c}

    where ``phi1_s`` is the sensitivity of ``s`` and ``phi0_s`` its
    false-positive rate (``1 - specificity``).

    Parameters
    ----------
    claims:
        Claims over the facts to score.  Source ids must index into the
        quality arrays.
    sensitivity, specificity:
        Per-source quality estimates (e.g. from a previous LTM fit).
    truth_prior:
        ``(beta_1, beta_0)`` prior weights of true and false.

    Returns
    -------
    numpy.ndarray
        Posterior probability of truth per fact.
    """
    sensitivity = np.asarray(sensitivity, dtype=float)
    specificity = np.asarray(specificity, dtype=float)
    if sensitivity.shape != (claims.num_sources,) or specificity.shape != (claims.num_sources,):
        raise ModelError(
            "sensitivity and specificity must be per-source arrays matching the claim matrix"
        )
    return posterior_truth_probability_arrays(
        claims.claim_fact,
        claims.claim_source,
        claims.claim_obs,
        claims.num_facts,
        sensitivity,
        specificity,
        truth_prior=truth_prior,
    )


def prior_mean_predictor(
    source_quality: SourceQualityTable, priors: LTMPriors
) -> "IncrementalLTM":
    """An LTMinc predictor whose cold-start defaults are the prior means.

    This is the shared serving contract of
    :meth:`repro.engine.TruthEngine.predict_proba` and
    :meth:`repro.serving.TruthService.score`: claims from sources unseen at
    fit time are scored under the prior-mean quality — sensitivity
    ``priors.sensitivity.mean``, specificity
    ``1 - priors.false_positive.mean`` — instead of failing.
    """
    return IncrementalLTM(
        source_quality,
        truth_prior=(priors.truth.positive, priors.truth.negative),
        default_sensitivity=priors.sensitivity.mean,
        default_specificity=1.0 - priors.false_positive.mean,
    )


class IncrementalLTM(TruthMethod):
    """LTMinc: closed-form truth prediction from previously learned source quality.

    Parameters
    ----------
    source_quality:
        A :class:`~repro.core.base.SourceQualityTable` produced by a previous
        :class:`~repro.core.model.LatentTruthModel` fit.  Sources in the new
        data that are missing from the table fall back to ``default_sensitivity``
        / ``default_specificity``.
    truth_prior:
        ``(beta_1, beta_0)`` prior weights, defaulting to the uniform prior
        the paper uses.
    default_sensitivity, default_specificity:
        Quality assumed for previously unseen sources.
    """

    name = "LTMinc"

    def __init__(
        self,
        source_quality: SourceQualityTable,
        truth_prior: tuple[float, float] = (10.0, 10.0),
        default_sensitivity: float = 0.5,
        default_specificity: float = 0.99,
    ):
        super().__init__()
        self.source_quality = source_quality
        self.truth_prior = truth_prior
        self.default_sensitivity = default_sensitivity
        self.default_specificity = default_specificity

    @classmethod
    def from_model(cls, model_result: TruthResult, **kwargs) -> "IncrementalLTM":
        """Build an incremental predictor from a fitted LTM result."""
        if model_result.source_quality is None:
            raise ModelError("the supplied result carries no source-quality table")
        return cls(model_result.source_quality, **kwargs)

    def _aligned_quality(self, claims: ClaimMatrix) -> tuple[np.ndarray, np.ndarray]:
        """Map the stored quality table onto the claim matrix's source ids."""
        known = {name: i for i, name in enumerate(self.source_quality.source_names)}
        sensitivity = np.full(claims.num_sources, self.default_sensitivity, dtype=float)
        specificity = np.full(claims.num_sources, self.default_specificity, dtype=float)
        for sid, name in enumerate(claims.source_names):
            j = known.get(name)
            if j is not None:
                sensitivity[sid] = self.source_quality.sensitivity[j]
                specificity[sid] = self.source_quality.specificity[j]
        return sensitivity, specificity

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        sensitivity, specificity = self._aligned_quality(claims)
        scores = posterior_truth_probability(
            claims, sensitivity, specificity, truth_prior=self.truth_prior
        )
        quality = SourceQualityTable(
            source_names=tuple(claims.source_names),
            sensitivity=sensitivity,
            specificity=specificity,
            precision=np.full(claims.num_sources, np.nan),
        )
        return TruthResult(
            method=self.name,
            scores=scores,
            source_quality=quality,
            extras={"truth_prior": self.truth_prior},
        )

"""Shared solver interfaces: truth methods, truth results and quality tables.

Every truth-finding method in the library — the Latent Truth Model, its
incremental and positive-only variants, and all seven baselines — implements
the same :class:`TruthMethod` interface and returns a :class:`TruthResult`.
The comparison harness (paper Table 7, Figures 2-3) and the runtime study
(Table 9, Figure 6) are written once against these types.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.data.dataset import ClaimMatrix
from repro.exceptions import EvaluationError, NotFittedError

__all__ = ["SourceQualityTable", "TruthResult", "TruthMethod", "timed_fit"]


@dataclass
class SourceQualityTable:
    """Per-source quality estimates (paper Section 3 and Table 8).

    All arrays are indexed by dense source id and aligned with
    ``source_names``.

    Attributes
    ----------
    source_names:
        Source names, position = source id.
    sensitivity:
        Estimated sensitivity (recall) per source: P(claim true | fact true).
    specificity:
        Estimated specificity per source: P(claim false | fact false).
    precision:
        Estimated precision per source: P(fact true | claim true).
    accuracy:
        Estimated accuracy per source (optional; NaN when not computed).
    """

    source_names: tuple[str, ...]
    sensitivity: np.ndarray
    specificity: np.ndarray
    precision: np.ndarray
    accuracy: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.source_names)
        for name in ("sensitivity", "specificity", "precision"):
            arr = getattr(self, name)
            if arr.shape != (n,):
                raise EvaluationError(
                    f"{name} must have shape ({n},), got {arr.shape}"
                )
        if self.accuracy is None:
            self.accuracy = np.full(n, np.nan)
        elif self.accuracy.shape != (n,):
            raise EvaluationError(
                f"accuracy must have shape ({n},), got {self.accuracy.shape}"
            )

    @property
    def num_sources(self) -> int:
        """Number of sources covered by the table."""
        return len(self.source_names)

    @property
    def false_positive_rate(self) -> np.ndarray:
        """1 - specificity per source."""
        return 1.0 - self.specificity

    @property
    def false_negative_rate(self) -> np.ndarray:
        """1 - sensitivity per source."""
        return 1.0 - self.sensitivity

    def of(self, source_name: str) -> dict[str, float]:
        """Return the quality measures of one source as a dict."""
        try:
            sid = self.source_names.index(source_name)
        except ValueError as exc:
            raise EvaluationError(f"unknown source {source_name!r}") from exc
        return {
            "sensitivity": float(self.sensitivity[sid]),
            "specificity": float(self.specificity[sid]),
            "precision": float(self.precision[sid]),
            "accuracy": float(self.accuracy[sid]),
        }

    def ranked_by_sensitivity(self) -> list[tuple[str, float, float]]:
        """Sources sorted by decreasing sensitivity, as ``(name, sens, spec)``.

        This is the presentation used in the paper's Table 8.
        """
        order = np.argsort(-self.sensitivity)
        return [
            (self.source_names[i], float(self.sensitivity[i]), float(self.specificity[i]))
            for i in order
        ]

    def as_rows(self) -> list[dict[str, float | str]]:
        """Return one dict per source, convenient for tabular display."""
        return [
            {
                "source": name,
                "sensitivity": float(self.sensitivity[i]),
                "specificity": float(self.specificity[i]),
                "precision": float(self.precision[i]),
                "accuracy": float(self.accuracy[i]),
            }
            for i, name in enumerate(self.source_names)
        ]


@dataclass
class TruthResult:
    """The output of fitting a truth-finding method to a claim matrix.

    Attributes
    ----------
    method:
        Name of the method that produced the result.
    scores:
        Per-fact truth probability (or normalised confidence score in
        ``[0, 1]`` for heuristic baselines), indexed by fact id.
    source_quality:
        Optional per-source quality table (methods that model quality).
    runtime_seconds:
        Wall-clock fit time.
    extras:
        Method-specific diagnostics (e.g. Gibbs traces, iteration counts).
    """

    method: str
    scores: np.ndarray
    source_quality: SourceQualityTable | None = None
    runtime_seconds: float = 0.0
    extras: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.scores = np.asarray(self.scores, dtype=float)
        if self.scores.ndim != 1:
            raise EvaluationError("scores must be a one-dimensional array over facts")

    @property
    def num_facts(self) -> int:
        """Number of facts scored."""
        return int(self.scores.shape[0])

    def predictions(self, threshold: float = 0.5) -> np.ndarray:
        """Boolean truth predictions at ``threshold`` (score >= threshold => true)."""
        return self.scores >= threshold

    def scores_for(self, fact_ids: Sequence[int]) -> np.ndarray:
        """Scores restricted to ``fact_ids`` (in that order)."""
        return self.scores[np.asarray(list(fact_ids), dtype=np.int64)]

    def top_facts(self, k: int = 10) -> list[tuple[int, float]]:
        """The ``k`` facts with the highest scores, as ``(fact_id, score)``."""
        order = np.argsort(-self.scores)[:k]
        return [(int(i), float(self.scores[i])) for i in order]


class TruthMethod(abc.ABC):
    """Abstract interface implemented by every truth-finding method.

    Subclasses implement :meth:`_fit` and set :attr:`name`.  The public
    :meth:`fit` wraps it with timing and records the fitted result so that
    :meth:`result` can be called afterwards.
    """

    #: Human-readable method name used in comparison tables.
    name: str = "method"

    def __init__(self) -> None:
        self._result: TruthResult | None = None

    @abc.abstractmethod
    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        """Fit the method to ``claims`` and return a result (no timing needed)."""

    def fit(self, claims: ClaimMatrix) -> TruthResult:
        """Fit the method to ``claims``; returns a timed :class:`TruthResult`."""
        start = time.perf_counter()
        result = self._fit(claims)
        result.runtime_seconds = time.perf_counter() - start
        result.method = self.name
        self._result = result
        return result

    def result(self) -> TruthResult:
        """Return the result of the last :meth:`fit` call.

        Raises
        ------
        NotFittedError
            If :meth:`fit` has not been called yet.
        """
        if self._result is None:
            raise NotFittedError(f"{self.name} has not been fitted yet")
        return self._result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def timed_fit(method: TruthMethod, claims: ClaimMatrix) -> tuple[TruthResult, float]:
    """Fit ``method`` on ``claims`` and return ``(result, runtime_seconds)``."""
    result = method.fit(claims)
    return result, result.runtime_seconds


def validate_scores(scores: np.ndarray, num_facts: int, method: str) -> np.ndarray:
    """Clip scores into [0, 1] and verify their length; helper for solvers."""
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (num_facts,):
        raise EvaluationError(
            f"{method}: expected scores of shape ({num_facts},), got {scores.shape}"
        )
    return np.clip(scores, 0.0, 1.0)


def normalise_scores(scores: np.ndarray) -> np.ndarray:
    """Normalise arbitrary non-negative confidence scores into [0, 1] by the maximum.

    Several baselines (HubAuthority, AvgLog, Investment, PooledInvestment)
    produce unbounded credit scores; the paper thresholds them after
    normalisation, which is what makes those methods look conservative at a
    0.5 threshold.  Zero or negative maxima map everything to zero.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        return scores
    maximum = scores.max()
    if maximum <= 0:
        return np.zeros_like(scores)
    return np.clip(scores / maximum, 0.0, 1.0)

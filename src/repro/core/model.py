"""The public Latent Truth Model API.

:class:`LatentTruthModel` is the main entry point of the library: fit it to a
:class:`~repro.data.dataset.ClaimMatrix` and it returns a
:class:`~repro.core.base.TruthResult` carrying posterior truth probabilities
for every fact, MAP source-quality estimates (sensitivity/specificity/
precision per source) and sampling diagnostics.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.base import TruthMethod, TruthResult
from repro.core.gibbs import CollapsedGibbsSampler, GibbsConfig
from repro.core.priors import LTMPriors
from repro.core.quality import estimate_source_quality, expected_confusion_counts
from repro.data.dataset import ClaimMatrix

__all__ = ["LatentTruthModel"]


class LatentTruthModel(TruthMethod):
    """Bayesian truth discovery with two-sided source quality (the paper's LTM).

    Parameters
    ----------
    priors:
        Prior specification.  When omitted, :meth:`LTMPriors.adaptive` is
        applied to the claim matrix at fit time: a strong-but-data-relative
        specificity prior, a uniform sensitivity prior and a uniform truth
        prior.  Pass :meth:`repro.core.priors.LTMPriors.paper_book_defaults`
        / :meth:`~repro.core.priors.LTMPriors.paper_movie_defaults` to use the
        paper's fixed pseudo-counts instead.
    iterations, burn_in, thin:
        Sampling schedule.  The paper observes convergence within roughly 50
        iterations; the default of 100 iterations with burn-in 20 and
        thinning 5 follows its main experiments.
    seed:
        Random seed for reproducible fits.
    kernel:
        Gibbs sweep implementation: ``"scalar"``, ``"blocked"`` or ``"auto"``
        (the default — pick the fastest).  Kernels are exact-seed
        bit-identical; the choice affects wall-clock only.

    Examples
    --------
    >>> from repro import LatentTruthModel, build_claim_matrix
    >>> claims = build_claim_matrix([
    ...     ("Harry Potter", "Daniel Radcliffe", "imdb"),
    ...     ("Harry Potter", "Emma Watson", "imdb"),
    ...     ("Harry Potter", "Daniel Radcliffe", "netflix"),
    ... ])
    >>> result = LatentTruthModel(iterations=50, seed=0).fit(claims)
    >>> result.scores.shape
    (2,)
    """

    name = "LTM"

    def __init__(
        self,
        priors: LTMPriors | None = None,
        iterations: int = 100,
        burn_in: int | None = None,
        thin: int | None = None,
        seed: int | None = None,
        kernel: str = "auto",
    ):
        super().__init__()
        self.priors = priors
        if burn_in is None or thin is None:
            schedule = GibbsConfig.paper_schedule(iterations, seed=seed)
            burn_in = schedule.burn_in if burn_in is None else burn_in
            thin = schedule.thin if thin is None else thin
        self.config = GibbsConfig(
            iterations=iterations, burn_in=burn_in, thin=thin, seed=seed, kernel=kernel
        )

    # -- fitting -------------------------------------------------------------------
    def resolved_priors(self, claims: ClaimMatrix) -> LTMPriors:
        """The priors actually used for ``claims`` (adaptive when none were given)."""
        if self.priors is not None:
            return self.priors
        return LTMPriors.adaptive(claims)

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        priors = self.resolved_priors(claims)
        sampler = CollapsedGibbsSampler(priors=priors, config=self.config)
        scores, counts, trace = sampler.run(claims)
        quality = estimate_source_quality(claims, scores, priors)
        expected_counts = expected_confusion_counts(claims, scores)
        return TruthResult(
            method=self.name,
            scores=scores,
            source_quality=quality,
            extras={
                "trace": trace,
                "final_counts": counts.counts.copy(),
                "expected_counts": expected_counts,
                "iterations": self.config.iterations,
                "burn_in": self.config.burn_in,
                "thin": self.config.thin,
                "priors": priors,
            },
        )

    # -- convenience ------------------------------------------------------------------
    def fit_with_checkpoints(
        self, claims: ClaimMatrix, checkpoints: Sequence[int]
    ) -> tuple[TruthResult, dict[int, np.ndarray]]:
        """Fit and additionally return running score snapshots at ``checkpoints``.

        Used by the convergence study (Figure 5): the snapshots are the
        truth-probability estimates the model would report if sampling were
        stopped at each checkpoint iteration.
        """
        priors = self.resolved_priors(claims)
        sampler = CollapsedGibbsSampler(priors=priors, config=self.config)
        scores, counts, trace = sampler.run(claims, checkpoints=checkpoints)
        quality = estimate_source_quality(claims, scores, priors)
        result = TruthResult(
            method=self.name,
            scores=scores,
            source_quality=quality,
            extras={"trace": trace, "final_counts": counts.counts.copy()},
        )
        self._result = result
        return result, dict(trace.checkpoint_scores)

    def learned_quality_priors(self, claims: ClaimMatrix) -> LTMPriors:
        """Return priors with this fit's expected counts folded in (Section 5.4).

        Requires :meth:`fit` to have been called.  The returned priors can be
        passed to a new :class:`LatentTruthModel` (or to
        :class:`~repro.core.incremental.IncrementalLTM`) to integrate a new
        batch of data while retaining what was learned about the sources.
        """
        result = self.result()
        expected = result.extras.get("expected_counts")
        if expected is None:
            expected = expected_confusion_counts(claims, result.scores)
        priors = result.extras.get("priors") or self.resolved_priors(claims)
        return priors.with_learned_quality(claims.source_names, expected)

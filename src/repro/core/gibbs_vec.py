"""Blocked, table-driven Gibbs kernel — the fast path of Algorithm 1.

The collapsed sampler's per-fact conditional (Equation 2) only ever evaluates
``log(m + alpha)`` for integer occupancies ``m`` bounded by each source's
claim count, so every transcendental the sampler can possibly need is known
ahead of time.  :class:`KernelTables` precomputes them once per fit into flat
lookup tables; from then on a sweep is pure integer indexing plus IEEE-754
adds and subtracts.  Because the scalar kernel in :mod:`repro.core.gibbs`
reads the *same* tables and accumulates per-fact terms in the same
left-to-right order, the two kernels make bit-identical flip decisions for
the same seed — not merely statistically equivalent chains.

The blocked kernel itself layers three execution strategies over one exact
semantics (process facts in an order equivalent to the scalar ``0..F-1``
sweep):

* a :class:`BlockSchedule` — an order-preserving greedy colouring of the
  fact–source conflict graph.  Facts in one block share no source, so their
  flip decisions and count updates are mutually independent; blocks are
  processed in colour order, and because the colouring preserves the index
  order of conflicting facts, block-order execution is exactly equivalent to
  the scalar sweep.
* a vectorised **pre-pass**: under the sweep-start counts, every fact's
  Equation-2 log-ratio is computed in one numpy gather + ``np.add.reduceat``
  over the CSR claim layout.  A pre-pass decision stays valid until some
  earlier flip touches one of the fact's sources; a bitmask of dirty sources
  tracks exactly that, so clean blocks commit their pre-passed flips
  wholesale while invalidated facts are re-evaluated exactly.
* an adaptive **dense sweep**: on conflict-dense corpora the dirty mask
  saturates after a few flips and nearly every fact is re-evaluated anyway.
  The kernel notices (pre-pass survival rate below 25%) and skips the
  pre-pass for the next few sweeps, running a tight table-walk over all
  facts instead — probing again periodically so sparse or converged chains
  regain the vectorised path.  Skipping the pre-pass never changes results:
  re-evaluation is the ground truth the pre-pass merely caches.

When numba is installed (the optional ``[jit]`` extra), the dense sweep is
additionally compiled; :mod:`repro.core._jit` degrades silently to the pure
python walk when it is not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.obs import get_tracer
from repro.core.counts import SourceCounts
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix

__all__ = ["KernelTables", "BlockSchedule", "run_blocked"]

# Pre-pass survival rate below which the next sweeps skip straight to the
# dense walk, and how many sweeps pass before the pre-pass is probed again.
_PREPASS_MIN_HIT_RATE = 0.25
_PREPASS_PROBE_EVERY = 8


class KernelTables:
    """Shared canonical arithmetic of both Gibbs kernels.

    For every source ``s`` (with ``d_s`` claims), truth value ``t`` and
    observation ``o`` the tables hold::

        log_num[num_offset(s, t, o) + m] = log(m + alpha[s, t, o])   m in [0, d_s]
        log_den[den_offset(s, t) + m]    = log(m + alpha_sum[s, t])  m in [0, d_s]

    and per claim ``i`` the precomputed index bases for both truth values, so
    a claim's Equation-2 contribution under current truth ``t`` is::

        (log_num[num_base[t][i] + n - 1] - log_den[den_base[t][i] + N - 1])
      - (log_num[num_base[1-t][i] + n'] - log_den[den_base[1-t][i] + N'])

    where ``n``/``N`` are the claim's bucket count and bucket total under
    ``t`` (gathered through ``count_idx``/``total_idx`` from the flattened
    confusion counts).  All kernels evaluate exactly this expression — the
    only floating-point operations after construction are subtractions and
    left-to-right additions, which IEEE-754 defines identically for numpy
    float64 and python floats.
    """

    def __init__(self, claims: ClaimMatrix, priors: LTMPriors):
        num_sources = claims.num_sources
        alpha = priors.alpha_array(claims.source_names)  # (S, 2, 2)
        alpha_sum = alpha.sum(axis=2)  # (S, 2)
        per_source = claims.claim_counts_per_source()
        lengths = per_source + 1  # occupancies 0..d_s inclusive

        # Table layout: per source a block of 4 (respectively 2) sub-tables,
        # one per (t, o) (respectively t), each ``lengths[s]`` long.
        num_offsets = np.concatenate(([0], np.cumsum(4 * lengths)))[:-1]
        den_offsets = np.concatenate(([0], np.cumsum(2 * lengths)))[:-1]
        source_ids4 = np.repeat(np.arange(num_sources), 4 * lengths)
        position4 = np.arange(int((4 * lengths).sum())) - np.repeat(num_offsets, 4 * lengths)
        sub4 = position4 // np.repeat(lengths, 4 * lengths)  # t * 2 + o
        occupancy4 = position4 % np.repeat(lengths, 4 * lengths)
        self.log_num = np.log(occupancy4 + alpha[source_ids4, sub4 // 2, sub4 % 2])
        source_ids2 = np.repeat(np.arange(num_sources), 2 * lengths)
        position2 = np.arange(int((2 * lengths).sum())) - np.repeat(den_offsets, 2 * lengths)
        sub2 = position2 // np.repeat(lengths, 2 * lengths)  # t
        occupancy2 = position2 % np.repeat(lengths, 2 * lengths)
        self.log_den = np.log(occupancy2 + alpha_sum[source_ids2, sub2])

        claim_source = claims.claim_source
        claim_obs = np.asarray(claims.claim_obs, dtype=np.int64)
        claim_lengths = lengths[claim_source]
        self.num_base = [
            num_offsets[claim_source] + (t * 2 + claim_obs) * claim_lengths for t in (0, 1)
        ]
        self.den_base = [den_offsets[claim_source] + t * claim_lengths for t in (0, 1)]
        # Flattened (S, 2, 2) confusion-count and (S, 2) total indices.
        self.count_idx = [(claim_source * 2 + t) * 2 + claim_obs for t in (0, 1)]
        self.total_idx = [claim_source * 2 + t for t in (0, 1)]

        log_beta = np.log(priors.beta_array())
        # delta_log_beta[t] = log beta_t - log beta_{1-t}: the prior part of
        # the current-vs-other log-ratio.
        self.delta_log_beta = np.array(
            [log_beta[0] - log_beta[1], log_beta[1] - log_beta[0]]
        )
        self.prior_true = priors.truth.mean

    @staticmethod
    def switch_thresholds(uniforms: np.ndarray) -> np.ndarray:
        """Per-fact flip thresholds for one sweep's uniform draws.

        The scalar rule "flip when ``u < 1 / (1 + exp(delta))``" is exactly
        "flip when ``delta < log((1 - u) / u)``" (both sides strictly
        monotone); evaluating the right-hand side once per sweep as a single
        whole-array call keeps the two kernels' arithmetic identical and
        removes every per-fact ``exp``.  ``u == 0.0`` maps to ``+inf``
        (always flip), matching the scalar rule.
        """
        with np.errstate(divide="ignore"):
            return np.log((1.0 - uniforms) / uniforms)


@dataclass(frozen=True)
class BlockSchedule:
    """Conflict-free, order-preserving block schedule over the claimed facts.

    Greedy level colouring: a fact's colour is the smallest level above every
    earlier conflicting fact, i.e. the length of the longest conflict chain
    ending at it.  This guarantees two invariants the kernel relies on:

    * facts of one block are pairwise conflict-free (no shared source);
    * conflicting facts keep their index order across blocks, so colour-order
      execution is exactly equivalent to the scalar ``0..F-1`` sweep.

    By Mirsky's theorem the number of blocks equals the longest conflict
    chain — no order-preserving schedule can use fewer.

    Attributes
    ----------
    order:
        Claimed fact ids, grouped by block, ascending within each block.
    block_ptr:
        CSR boundaries into ``order``: block ``b`` is
        ``order[block_ptr[b]:block_ptr[b + 1]]``.
    fact_masks:
        Per fact, the bitmask of its claiming sources (0 for claimless facts).
    block_masks:
        Per block, the union of its facts' source masks.
    all_sources_mask:
        Union of every block mask (used to detect dirty saturation).
    """

    order: np.ndarray
    block_ptr: np.ndarray
    fact_masks: list
    block_masks: list
    all_sources_mask: int

    @property
    def num_blocks(self) -> int:
        return len(self.block_masks)

    @classmethod
    def build(cls, claims: ClaimMatrix) -> "BlockSchedule":
        fact_ptr = claims.fact_ptr.tolist()
        claim_source = claims.claim_source.tolist()
        num_facts = claims.num_facts

        fact_masks = [0] * num_facts
        next_free = [0] * claims.num_sources
        claimed: list[int] = []
        colours: list[int] = []
        for fact in range(num_facts):
            start, stop = fact_ptr[fact], fact_ptr[fact + 1]
            if start == stop:
                continue
            mask = 0
            colour = 0
            for i in range(start, stop):
                source = claim_source[i]
                mask |= 1 << source
                level = next_free[source]
                if level > colour:
                    colour = level
            fact_masks[fact] = mask
            claimed.append(fact)
            colours.append(colour)
            above = colour + 1
            for i in range(start, stop):
                next_free[claim_source[i]] = above
        if claimed:
            claimed_arr = np.asarray(claimed, dtype=np.int64)
            colour_arr = np.asarray(colours, dtype=np.int64)
            order = claimed_arr[np.lexsort((claimed_arr, colour_arr))]
            num_blocks = int(colour_arr.max()) + 1
            sizes = np.bincount(colour_arr, minlength=num_blocks)
            block_ptr = np.concatenate(([0], np.cumsum(sizes)))
        else:
            order = np.empty(0, dtype=np.int64)
            block_ptr = np.zeros(1, dtype=np.int64)
        order_list = order.tolist()
        block_ptr_list = block_ptr.tolist()
        block_masks = []
        all_mask = 0
        for b in range(len(block_ptr_list) - 1):
            mask = 0
            for k in range(block_ptr_list[b], block_ptr_list[b + 1]):
                mask |= fact_masks[order_list[k]]
            block_masks.append(mask)
            all_mask |= mask
        return cls(
            order=order,
            block_ptr=block_ptr,
            fact_masks=fact_masks,
            block_masks=block_masks,
            all_sources_mask=all_mask,
        )

    def blocks(self) -> list[np.ndarray]:
        """The schedule as a list of fact-id arrays, in execution order."""
        return [
            self.order[self.block_ptr[b] : self.block_ptr[b + 1]]
            for b in range(self.num_blocks)
        ]


def run_blocked(
    priors: LTMPriors,
    config: "GibbsConfig",
    claims: ClaimMatrix,
    initial_truth: np.ndarray | None = None,
    checkpoints: Sequence[int] = (),
    callback: Callable[[int, np.ndarray], None] | None = None,
) -> tuple[np.ndarray, SourceCounts, "GibbsTrace"]:
    """Run the blocked kernel; same contract and chain as the scalar sampler.

    For a fixed seed this produces bit-identical scores, counts, trace flip
    sequences and checkpoint snapshots to
    :meth:`repro.core.gibbs.CollapsedGibbsSampler.run` with
    ``kernel="scalar"`` — the parity suite pins this on every catalog
    dataset.
    """
    from repro.core.gibbs import CollapsedGibbsSampler, GibbsTrace

    rng = np.random.default_rng(config.seed)
    num_facts = claims.num_facts
    truth = CollapsedGibbsSampler._initial_assignment(num_facts, initial_truth, rng)

    tables = KernelTables(claims, priors)
    schedule = BlockSchedule.build(claims)

    counts = SourceCounts.from_assignment(claims, truth)
    counts_list = counts.counts.reshape(-1).tolist()
    totals_list = counts.counts.sum(axis=2).reshape(-1).tolist()

    fact_ptr = claims.fact_ptr
    num_claims = claims.num_claims
    claim_fact = claims.claim_fact
    log_num, log_den = tables.log_num, tables.log_den
    num_base0, num_base1 = tables.num_base
    den_base0, den_base1 = tables.den_base
    count_idx0, count_idx1 = tables.count_idx
    total_idx0, total_idx1 = tables.total_idx
    delta_log_beta = tables.delta_log_beta
    dlb0, dlb1 = float(delta_log_beta[0]), float(delta_log_beta[1])
    prior_true = tables.prior_true

    # Python-side mirrors for the table walk.
    log_num_list, log_den_list = log_num.tolist(), log_den.tolist()
    nb0l, nb1l = num_base0.tolist(), num_base1.tolist()
    db0l, db1l = den_base0.tolist(), den_base1.tolist()
    ci0l, ci1l = count_idx0.tolist(), count_idx1.tolist()
    ti0l, ti1l = total_idx0.tolist(), total_idx1.tolist()
    fact_ptr_list = fact_ptr.tolist()

    # Per-fact claim rows for the walk: 8-tuples of table/count indices in the
    # roles (num_cur, count_cur, den_cur, total_cur, num_oth, count_oth,
    # den_oth, total_oth) — one list per truth value, claims in CSR order so
    # the left-to-right accumulation matches ``np.add.reduceat``'s
    # per-segment order exactly.
    rows_true: list = [None] * num_facts
    rows_false: list = [None] * num_facts
    order_list = schedule.order.tolist()
    for fact in order_list:
        as_true = []
        as_false = []
        for i in range(fact_ptr_list[fact], fact_ptr_list[fact + 1]):
            as_true.append((nb1l[i], ci1l[i], db1l[i], ti1l[i], nb0l[i], ci0l[i], db0l[i], ti0l[i]))
            as_false.append((nb0l[i], ci0l[i], db0l[i], ti0l[i], nb1l[i], ci1l[i], db1l[i], ti1l[i]))
        rows_true[fact] = as_true
        rows_false[fact] = as_false

    fact_masks = schedule.fact_masks
    block_masks = schedule.block_masks
    block_ptr_list = schedule.block_ptr.tolist()
    num_blocks = schedule.num_blocks
    all_sources_mask = schedule.all_sources_mask
    num_claimed = len(order_list)
    claimless = [
        f for f in range(num_facts) if fact_ptr_list[f] == fact_ptr_list[f + 1]
    ]
    # reduceat needs in-range segment starts; empty trailing segments are
    # claimless facts whose pre-pass value is never consulted.
    segment_starts = np.minimum(fact_ptr[:-1], max(num_claims - 1, 0))

    from repro.core._jit import dense_sweep_compiled

    jit_sweep = dense_sweep_compiled()
    jit_state = None
    if jit_sweep is not None and num_claimed:
        walk_ptr = np.zeros(num_claimed + 1, dtype=np.int64)
        for k, fact in enumerate(order_list):
            walk_ptr[k + 1] = walk_ptr[k] + fact_ptr_list[fact + 1] - fact_ptr_list[fact]
        gather = np.concatenate(
            [np.arange(fact_ptr_list[f], fact_ptr_list[f + 1]) for f in order_list]
        )
        jit_state = (
            walk_ptr,
            schedule.order,
            num_base1[gather], count_idx1[gather], den_base1[gather], total_idx1[gather],
            num_base0[gather], count_idx0[gather], den_base0[gather], total_idx0[gather],
        )

    truth_list = truth.tolist()
    score_sum = np.zeros(num_facts, dtype=float)
    samples = 0
    trace = GibbsTrace(kernel="blocked", block_count=num_blocks)
    checkpoint_set = set(int(c) for c in checkpoints)

    tracer = get_tracer()
    traced = tracer.enabled
    chunk = max(1, config.iterations // 10)
    chunk_start = tracer.now() if traced else 0.0
    chunk_first = 0
    chunk_flips = 0

    skip_countdown = 0
    for iteration in range(config.iterations):
        uniforms = rng.random(num_facts)
        thresholds = KernelTables.switch_thresholds(uniforms)
        uniforms_list = uniforms.tolist()
        thresholds_list = thresholds.tolist()
        flips = 0

        # Claimless facts depend on the prior alone; their decisions commute
        # with every claimed fact's.
        for fact in claimless:
            new_truth = 1 if uniforms_list[fact] < prior_true else 0
            if new_truth != truth_list[fact]:
                truth_list[fact] = new_truth
                flips += 1

        run_prepass = num_claimed > 0 and skip_countdown == 0
        if run_prepass:
            # Vectorised Equation-2 pre-pass under the sweep-start counts.
            counts_arr = np.asarray(counts_list, dtype=np.int64)
            totals_arr = np.asarray(totals_list, dtype=np.int64)
            truth_arr = np.asarray(truth_list, dtype=np.int64)
            claim_truth = truth_arr[claim_fact]
            is_true = claim_truth == 1
            nb_cur = np.where(is_true, num_base1, num_base0)
            nb_oth = np.where(is_true, num_base0, num_base1)
            db_cur = np.where(is_true, den_base1, den_base0)
            db_oth = np.where(is_true, den_base0, den_base1)
            ci_cur = np.where(is_true, count_idx1, count_idx0)
            ci_oth = np.where(is_true, count_idx0, count_idx1)
            ti_cur = np.where(is_true, total_idx1, total_idx0)
            ti_oth = np.where(is_true, total_idx0, total_idx1)
            terms = (
                log_num[nb_cur + (counts_arr[ci_cur] - 1)]
                - log_den[db_cur + (totals_arr[ti_cur] - 1)]
            ) - (
                log_num[nb_oth + counts_arr[ci_oth]]
                - log_den[db_oth + totals_arr[ti_oth]]
            )
            deltas = np.add.reduceat(terms, segment_starts) + delta_log_beta[truth_arr]
            stale_flip = deltas < thresholds
            stale_list = stale_flip.tolist()
            block_flip_counts = np.add.reduceat(
                stale_flip[schedule.order].astype(np.int64), schedule.block_ptr[:-1]
            ).tolist()

            stale_hits = 0
            dirty = 0
            dense_from = None
            for b in range(num_blocks):
                lo, hi = block_ptr_list[b], block_ptr_list[b + 1]
                if not (block_masks[b] & dirty):
                    # Clean block: every pre-passed decision is still valid.
                    if not block_flip_counts[b]:
                        stale_hits += hi - lo
                        continue
                    for k in range(lo, hi):
                        fact = order_list[k]
                        stale_hits += 1
                        if stale_list[fact]:
                            current = truth_list[fact]
                            rows = rows_true[fact] if current else rows_false[fact]
                            for _, ci_c, _, ti_c, _, ci_o, _, ti_o in rows:
                                counts_list[ci_c] -= 1
                                counts_list[ci_o] += 1
                                totals_list[ti_c] -= 1
                                totals_list[ti_o] += 1
                            truth_list[fact] = 1 - current
                            dirty |= fact_masks[fact]
                            flips += 1
                else:
                    for k in range(lo, hi):
                        fact = order_list[k]
                        mask = fact_masks[fact]
                        if mask & dirty:
                            current = truth_list[fact]
                            rows = rows_true[fact] if current else rows_false[fact]
                            acc = 0.0
                            for a, cb, c, tb, e, co, h, to in rows:
                                acc += (
                                    log_num_list[a + counts_list[cb] - 1]
                                    - log_den_list[c + totals_list[tb] - 1]
                                ) - (
                                    log_num_list[e + counts_list[co]]
                                    - log_den_list[h + totals_list[to]]
                                )
                            flip = (acc + (dlb1 if current else dlb0)) < thresholds_list[fact]
                        else:
                            stale_hits += 1
                            flip = stale_list[fact]
                        if flip:
                            current = truth_list[fact]
                            rows = rows_true[fact] if current else rows_false[fact]
                            for _, ci_c, _, ti_c, _, ci_o, _, ti_o in rows:
                                counts_list[ci_c] -= 1
                                counts_list[ci_o] += 1
                                totals_list[ti_c] -= 1
                                totals_list[ti_o] += 1
                            truth_list[fact] = 1 - current
                            dirty |= mask
                            flips += 1
                if dirty == all_sources_mask and b + 1 < num_blocks:
                    # Every source is dirty: no later stale decision can
                    # survive, so finish the sweep with the dense walk.
                    dense_from = block_ptr_list[b + 1]
                    break
            if dense_from is not None:
                flips += _dense_walk(
                    order_list, dense_from, num_claimed, truth_list, rows_true,
                    rows_false, counts_list, totals_list, log_num_list,
                    log_den_list, dlb0, dlb1, thresholds_list,
                )
            if stale_hits < _PREPASS_MIN_HIT_RATE * num_claimed:
                skip_countdown = _PREPASS_PROBE_EVERY - 1
        elif num_claimed:
            if skip_countdown:
                skip_countdown -= 1
            if jit_state is not None:
                counts_arr = np.asarray(counts_list, dtype=np.int64)
                totals_arr = np.asarray(totals_list, dtype=np.int64)
                truth_arr = np.asarray(truth_list, dtype=np.int64)
                flips += int(
                    jit_sweep(
                        *jit_state, log_num, log_den, counts_arr, totals_arr,
                        truth_arr, thresholds, dlb0, dlb1,
                    )
                )
                counts_list = counts_arr.tolist()
                totals_list = totals_arr.tolist()
                truth_list = truth_arr.tolist()
            else:
                flips += _dense_walk(
                    order_list, 0, num_claimed, truth_list, rows_true,
                    rows_false, counts_list, totals_list, log_num_list,
                    log_den_list, dlb0, dlb1, thresholds_list,
                )

        trace.flips_per_iteration.append(flips)
        if traced:
            chunk_flips += flips
            if (iteration + 1) % chunk == 0 or iteration == config.iterations - 1:
                sweeps = iteration - chunk_first + 1
                tracer.record(
                    "gibbs.iteration",
                    chunk_start,
                    end=tracer.now(),
                    first_iteration=chunk_first,
                    iterations=sweeps,
                    flips=chunk_flips,
                    flip_fraction=round(chunk_flips / (sweeps * num_facts), 6),
                )
                chunk_start = tracer.now()
                chunk_first = iteration + 1
                chunk_flips = 0

        sampling = (
            iteration >= config.burn_in
            and (iteration - config.burn_in) % config.thin == 0
        )
        need_array = sampling or callback is not None or iteration in checkpoint_set
        if need_array:
            truth_arr = np.asarray(truth_list, dtype=np.int64)
        if sampling:
            score_sum += truth_arr
            samples += 1
        if iteration in checkpoint_set:
            running = score_sum / samples if samples else truth_arr.astype(float)
            trace.checkpoint_scores[iteration] = running.copy()
        if callback is not None:
            callback(iteration, truth_arr)

    trace.samples_collected = samples
    if samples:
        scores = score_sum / samples
    else:
        scores = np.asarray(truth_list, dtype=float)
    counts.counts[:] = np.asarray(counts_list, dtype=np.int64).reshape(
        claims.num_sources, 2, 2
    )
    counts.verify_non_negative()
    return scores, counts, trace


def _dense_walk(
    order_list: list,
    start: int,
    stop: int,
    truth_list: list,
    rows_true: list,
    rows_false: list,
    counts_list: list,
    totals_list: list,
    log_num_list: list,
    log_den_list: list,
    dlb0: float,
    dlb1: float,
    thresholds_list: list,
) -> int:
    """Exact sequential table walk over ``order_list[start:stop]``.

    This is the semantic ground truth of the kernel: re-evaluate every fact's
    Equation-2 log-ratio against the live counts and flip in place.  The
    pre-pass and dirty-mask machinery above are pure caching layers over it.
    """
    flips = 0
    for k in range(start, stop):
        fact = order_list[k]
        current = truth_list[fact]
        rows = rows_true[fact] if current else rows_false[fact]
        acc = 0.0
        for a, cb, c, tb, e, co, h, to in rows:
            acc += (
                log_num_list[a + counts_list[cb] - 1]
                - log_den_list[c + totals_list[tb] - 1]
            ) - (
                log_num_list[e + counts_list[co]]
                - log_den_list[h + totals_list[to]]
            )
        if (acc + (dlb1 if current else dlb0)) < thresholds_list[fact]:
            for _, ci_c, _, ti_c, _, ci_o, _, ti_o in rows:
                counts_list[ci_c] -= 1
                counts_list[ci_o] += 1
                totals_list[ti_c] -= 1
                totals_list[ti_o] += 1
            truth_list[fact] = 1 - current
            flips += 1
    return flips

"""The Latent Truth Model (LTM) — the paper's primary contribution.

This package implements:

* the generative model of Section 4 (two-sided source quality as Beta-
  distributed sensitivity and false-positive rate, latent per-fact truth,
  Bernoulli claim observations);
* the collapsed Gibbs sampler of Section 5.2 / Algorithm 1, with burn-in and
  thinning, running in time linear in the number of claims — in two
  exact-seed bit-identical kernels: a scalar reference sweep and a blocked,
  table-driven fast path (:mod:`repro.core.gibbs_vec`);
* MAP source-quality estimation of Section 5.3;
* the incremental predictor LTMinc of Section 5.4 (Equation 3), which reuses
  learned source quality to score new claims without re-sampling;
* the truncated positive-claims-only variant LTMpos used as an ablation in
  the paper's experiments.
"""

from repro.core.base import SourceQualityTable, TruthMethod, TruthResult
from repro.core.priors import BetaPrior, LTMPriors
from repro.core.counts import SourceCounts
from repro.core.gibbs import KERNELS, CollapsedGibbsSampler, GibbsConfig, GibbsTrace
from repro.core.gibbs_vec import BlockSchedule, KernelTables
from repro.core.quality import estimate_source_quality, expected_confusion_counts
from repro.core.model import LatentTruthModel
from repro.core.incremental import IncrementalLTM, posterior_truth_probability
from repro.core.ltmpos import PositiveOnlyLTM
from repro.core.posterior import claim_log_likelihood, complete_log_likelihood

__all__ = [
    "TruthMethod",
    "TruthResult",
    "SourceQualityTable",
    "BetaPrior",
    "LTMPriors",
    "SourceCounts",
    "CollapsedGibbsSampler",
    "GibbsConfig",
    "GibbsTrace",
    "KERNELS",
    "BlockSchedule",
    "KernelTables",
    "LatentTruthModel",
    "IncrementalLTM",
    "PositiveOnlyLTM",
    "posterior_truth_probability",
    "estimate_source_quality",
    "expected_confusion_counts",
    "claim_log_likelihood",
    "complete_log_likelihood",
]

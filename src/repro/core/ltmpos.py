"""LTMpos — the Latent Truth Model restricted to positive claims.

The paper uses this truncated variant to demonstrate the value of negative
claims: without them the model cannot distinguish "the source omitted the
fact" from "the source contradicted the fact", and — like TruthFinder and
Investment — it ends up scoring essentially every fact as true on
multi-valued data (Table 7, false-positive rate 1.0).
"""

from __future__ import annotations

from repro.core.base import TruthMethod, TruthResult
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix

__all__ = ["PositiveOnlyLTM"]


class PositiveOnlyLTM(TruthMethod):
    """LTM fitted on the positive claims only (the paper's LTMpos ablation).

    Parameters are forwarded to the underlying
    :class:`~repro.core.model.LatentTruthModel`.
    """

    name = "LTMpos"

    def __init__(
        self,
        priors: LTMPriors | None = None,
        iterations: int = 100,
        burn_in: int | None = None,
        thin: int | None = None,
        seed: int | None = None,
        kernel: str = "auto",
    ):
        super().__init__()
        self._priors = priors
        self._iterations = iterations
        self._burn_in = burn_in
        self._thin = thin
        self._seed = seed
        self._kernel = kernel

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        positive = claims.positive_only()
        # Without negative claims nothing in the data distinguishes the intended
        # solution from the globally flipped one, so the default prior must be
        # the paper's strong, fact-scaled specificity prior rather than the
        # data-adaptive one used by the full model.
        priors = self._priors or LTMPriors.scaled_to(positive.num_facts)
        model = LatentTruthModel(
            priors=priors,
            iterations=self._iterations,
            burn_in=self._burn_in,
            thin=self._thin,
            seed=self._seed,
            kernel=self._kernel,
        )
        result = model.fit(positive)
        return TruthResult(
            method=self.name,
            scores=result.scores,
            source_quality=result.source_quality,
            extras={"dropped_negative_claims": claims.num_negative_claims, **result.extras},
        )

"""Collapsed Gibbs sampler for the Latent Truth Model (Algorithm 1).

The sampler iterates over facts, re-sampling each fact's latent truth from its
conditional distribution given every other fact's current truth (Equation 2 of
the paper).  Because the Beta priors are conjugate to the Bernoulli
observation model, the quality parameters and the per-fact truth probabilities
are integrated out analytically; the only state is the per-source confusion
counts maintained by :class:`~repro.core.counts.SourceCounts`.

Each sweep touches every claim exactly once, so a run of ``K`` iterations
costs ``O(K * |C|)`` — the linear complexity the paper reports (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs import get_tracer
from repro.core.counts import SourceCounts
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError, ModelError

__all__ = ["GibbsConfig", "GibbsTrace", "CollapsedGibbsSampler"]


@dataclass(frozen=True)
class GibbsConfig:
    """Sampler schedule: iteration count, burn-in and thinning.

    Attributes
    ----------
    iterations:
        Total number of Gibbs sweeps over all facts.
    burn_in:
        Number of initial sweeps discarded before samples are collected.
    thin:
        Keep every ``thin``-th sweep after burn-in (1 keeps every sweep).
    seed:
        Seed of the sampler's random generator; fits are reproducible for a
        fixed seed.
    """

    iterations: int = 100
    burn_in: int = 20
    thin: int = 4
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.burn_in < 0 or self.burn_in >= self.iterations:
            raise ConfigurationError(
                f"burn_in must be in [0, iterations); got burn_in={self.burn_in}, iterations={self.iterations}"
            )
        if self.thin <= 0:
            raise ConfigurationError("thin must be a positive integer")

    @classmethod
    def paper_schedule(cls, iterations: int, seed: int | None = None) -> "GibbsConfig":
        """The burn-in / thinning schedule the paper pairs with each iteration budget.

        The paper's convergence study (Figure 5) uses total iteration budgets
        of 7, 10, 20, 50, 100, 200 and 500 with burn-in 2, 2, 5, 10, 20, 50,
        100 and sample gaps 0, 0, 0, 1, 4, 4, 9 respectively.  Budgets not in
        that list fall back to proportional choices (20% burn-in, gap so that
        roughly 20 samples are kept).
        """
        schedule = {
            7: (2, 1),
            10: (2, 1),
            20: (5, 1),
            50: (10, 2),
            100: (20, 5),
            200: (50, 5),
            500: (100, 10),
        }
        if iterations in schedule:
            burn_in, thin = schedule[iterations]
        else:
            burn_in = max(1, iterations // 5)
            thin = max(1, (iterations - burn_in) // 20)
        return cls(iterations=iterations, burn_in=burn_in, thin=thin, seed=seed)

    @property
    def num_samples(self) -> int:
        """Number of retained samples under this schedule."""
        return len(range(self.burn_in, self.iterations, self.thin))


@dataclass
class GibbsTrace:
    """Diagnostics collected during sampling.

    Attributes
    ----------
    flips_per_iteration:
        How many facts changed truth value in each sweep; a rapidly shrinking
        sequence indicates convergence.
    samples_collected:
        Number of retained (post burn-in, thinned) samples.
    checkpoint_scores:
        Optional snapshots of the running truth-probability estimate, keyed
        by iteration index (only populated when checkpoints are requested).
    """

    flips_per_iteration: list[int] = field(default_factory=list)
    samples_collected: int = 0
    checkpoint_scores: dict[int, np.ndarray] = field(default_factory=dict)

    @property
    def total_iterations(self) -> int:
        """Number of sweeps performed."""
        return len(self.flips_per_iteration)

    def flip_fraction(self, num_facts: int) -> list[float]:
        """Per-iteration fraction of facts that flipped."""
        if num_facts == 0:
            return []
        return [flips / num_facts for flips in self.flips_per_iteration]


class CollapsedGibbsSampler:
    """Runs Algorithm 1 on a claim matrix under a given prior specification.

    Parameters
    ----------
    priors:
        The :class:`~repro.core.priors.LTMPriors` providing the ``alpha`` and
        ``beta`` pseudo-counts of Equation (2).
    config:
        The sampling schedule.
    """

    def __init__(self, priors: LTMPriors | None = None, config: GibbsConfig | None = None):
        self.priors = priors if priors is not None else LTMPriors()
        self.config = config if config is not None else GibbsConfig()

    # -- public API ---------------------------------------------------------------
    def run(
        self,
        claims: ClaimMatrix,
        initial_truth: np.ndarray | None = None,
        checkpoints: Sequence[int] = (),
        callback: Callable[[int, np.ndarray], None] | None = None,
    ) -> tuple[np.ndarray, SourceCounts, GibbsTrace]:
        """Sample latent truths for every fact of ``claims``.

        Parameters
        ----------
        claims:
            The claim matrix to fit.
        initial_truth:
            Optional initial truth assignment (defaults to uniform random, as
            in Algorithm 1's initialisation).
        checkpoints:
            Iteration indices at which to snapshot the running probability
            estimate (used by the convergence study, Figure 5).
        callback:
            Optional ``callback(iteration, current_truth)`` invoked after each
            sweep.

        Returns
        -------
        (scores, counts, trace):
            ``scores`` is the posterior truth probability per fact (the
            average of retained samples), ``counts`` the final confusion
            counts under the last truth assignment, and ``trace`` the
            sampling diagnostics.
        """
        if claims.num_facts == 0:
            raise ModelError("cannot run the Gibbs sampler on a claim matrix with no facts")

        rng = np.random.default_rng(self.config.seed)
        num_facts = claims.num_facts

        truth = self._initial_assignment(num_facts, initial_truth, rng)
        counts = SourceCounts.from_assignment(claims, truth)
        totals = counts.counts.sum(axis=2)  # (S, 2), kept in sync with counts

        alpha = self.priors.alpha_array(claims.source_names)  # (S, 2, 2)
        alpha_sum = alpha.sum(axis=2)  # (S, 2)
        log_beta = np.log(self.priors.beta_array())  # [log beta_0, log beta_1]

        fact_ptr = claims.fact_ptr
        claim_source = claims.claim_source
        claim_obs = claims.claim_obs.astype(np.int64)

        counts_arr = counts.counts
        score_sum = np.zeros(num_facts, dtype=float)
        samples = 0
        trace = GibbsTrace()
        checkpoint_set = set(int(c) for c in checkpoints)

        # Telemetry: sweeps are grouped into at most ~10 chunked
        # ``gibbs.iteration`` spans per fit — per-sweep granularity without
        # per-claim (or even per-sweep) span overhead.  The inner loops are
        # untouched when tracing is disabled.
        tracer = get_tracer()
        traced = tracer.enabled
        chunk = max(1, self.config.iterations // 10)
        chunk_start = tracer.now() if traced else 0.0
        chunk_first = 0
        chunk_flips = 0

        # Pre-generate per-iteration uniform draws lazily (one array per sweep)
        for iteration in range(self.config.iterations):
            flips = 0
            uniforms = rng.random(num_facts)
            for f in range(num_facts):
                start, stop = fact_ptr[f], fact_ptr[f + 1]
                if start == stop:
                    # A fact with no claims: sample from the prior alone.
                    prior_true = self.priors.truth.mean
                    new_t = 1 if uniforms[f] < prior_true else 0
                    if new_t != truth[f]:
                        truth[f] = new_t
                        flips += 1
                    continue
                srcs = claim_source[start:stop]
                obs = claim_obs[start:stop]
                cur = int(truth[f])
                oth = 1 - cur

                # Equation (2): counts exclude fact f's own claims for the
                # bucket it currently occupies.
                num_cur = counts_arr[srcs, cur, obs] - 1 + alpha[srcs, cur, obs]
                den_cur = totals[srcs, cur] - 1 + alpha_sum[srcs, cur]
                num_oth = counts_arr[srcs, oth, obs] + alpha[srcs, oth, obs]
                den_oth = totals[srcs, oth] + alpha_sum[srcs, oth]

                log_p_cur = log_beta[cur] + float(np.log(num_cur / den_cur).sum())
                log_p_oth = log_beta[oth] + float(np.log(num_oth / den_oth).sum())

                # Probability of switching to the other truth value.
                p_switch = 1.0 / (1.0 + np.exp(log_p_cur - log_p_oth))
                if uniforms[f] < p_switch:
                    truth[f] = oth
                    flips += 1
                    np.add.at(counts_arr, (srcs, cur, obs), -1)
                    np.add.at(counts_arr, (srcs, oth, obs), 1)
                    np.add.at(totals, (srcs, cur), -1)
                    np.add.at(totals, (srcs, oth), 1)

            trace.flips_per_iteration.append(flips)
            if traced:
                chunk_flips += flips
                if (iteration + 1) % chunk == 0 or iteration == self.config.iterations - 1:
                    sweeps = iteration - chunk_first + 1
                    tracer.record(
                        "gibbs.iteration",
                        chunk_start,
                        end=tracer.now(),
                        first_iteration=chunk_first,
                        iterations=sweeps,
                        flips=chunk_flips,
                        flip_fraction=round(chunk_flips / (sweeps * num_facts), 6),
                    )
                    chunk_start = tracer.now()
                    chunk_first = iteration + 1
                    chunk_flips = 0
            if iteration >= self.config.burn_in and (iteration - self.config.burn_in) % self.config.thin == 0:
                score_sum += truth
                samples += 1
            if iteration in checkpoint_set:
                running = score_sum / samples if samples else truth.astype(float)
                trace.checkpoint_scores[iteration] = running.copy()
            if callback is not None:
                callback(iteration, truth)

        trace.samples_collected = samples
        scores = score_sum / samples if samples else truth.astype(float)
        counts.verify_non_negative()
        return scores, counts, trace

    # -- helpers ----------------------------------------------------------------------
    @staticmethod
    def _initial_assignment(
        num_facts: int,
        initial_truth: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if initial_truth is None:
            return (rng.random(num_facts) < 0.5).astype(np.int64)
        initial_truth = np.asarray(initial_truth).astype(np.int64)
        if initial_truth.shape != (num_facts,):
            raise ModelError(
                f"initial truth must have shape ({num_facts},), got {initial_truth.shape}"
            )
        if not np.isin(initial_truth, (0, 1)).all():
            raise ModelError("initial truth assignment must be binary")
        return initial_truth.copy()

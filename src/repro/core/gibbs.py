"""Collapsed Gibbs sampler for the Latent Truth Model (Algorithm 1).

The sampler iterates over facts, re-sampling each fact's latent truth from its
conditional distribution given every other fact's current truth (Equation 2 of
the paper).  Because the Beta priors are conjugate to the Bernoulli
observation model, the quality parameters and the per-fact truth probabilities
are integrated out analytically; the only state is the per-source confusion
counts maintained by :class:`~repro.core.counts.SourceCounts`.

Each sweep touches every claim exactly once, so a run of ``K`` iterations
costs ``O(K * |C|)`` — the linear complexity the paper reports (Figure 6).

Two kernels implement the sweep, selected by :attr:`GibbsConfig.kernel`:

* ``"scalar"`` — the reference per-fact loop below.  All transcendentals are
  precomputed into the shared :class:`~repro.core.gibbs_vec.KernelTables`, so
  the hot loop is index gathers plus IEEE-754 adds.
* ``"blocked"`` — :func:`repro.core.gibbs_vec.run_blocked`: a conflict-free
  block schedule with a vectorised pre-pass and an adaptive dense table
  walk.  For a fixed seed it is *bit-identical* to the scalar kernel (same
  flips, same scores, same counts); the parity suite pins this on every
  catalog dataset.
* ``"auto"`` (default) — currently resolves to ``"blocked"``, the faster
  kernel in every measured regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.obs import get_tracer
from repro.core.counts import SourceCounts
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError, ModelError

__all__ = ["GibbsConfig", "GibbsTrace", "CollapsedGibbsSampler", "KERNELS"]

#: Accepted values of :attr:`GibbsConfig.kernel`.
KERNELS = ("scalar", "blocked", "auto")


@dataclass(frozen=True)
class GibbsConfig:
    """Sampler schedule: iteration count, burn-in, thinning and kernel.

    Attributes
    ----------
    iterations:
        Total number of Gibbs sweeps over all facts.
    burn_in:
        Number of initial sweeps discarded before samples are collected.
    thin:
        Keep every ``thin``-th sweep after burn-in (1 keeps every sweep).
    seed:
        Seed of the sampler's random generator; fits are reproducible for a
        fixed seed.
    kernel:
        Sweep implementation: ``"scalar"``, ``"blocked"`` or ``"auto"``
        (pick the fastest).  Kernels are exact-seed bit-identical, so the
        choice affects wall-clock only.
    """

    iterations: int = 100
    burn_in: int = 20
    thin: int = 4
    seed: int | None = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.burn_in < 0 or self.burn_in >= self.iterations:
            raise ConfigurationError(
                f"burn_in must be in [0, iterations); got burn_in={self.burn_in}, iterations={self.iterations}"
            )
        if self.thin <= 0:
            raise ConfigurationError("thin must be a positive integer")
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"kernel must be one of {KERNELS}; got {self.kernel!r}"
            )

    @classmethod
    def paper_schedule(
        cls, iterations: int, seed: int | None = None, kernel: str = "auto"
    ) -> "GibbsConfig":
        """The burn-in / thinning schedule the paper pairs with each iteration budget.

        The paper's convergence study (Figure 5) uses total iteration budgets
        of 7, 10, 20, 50, 100, 200 and 500 with burn-in 2, 2, 5, 10, 20, 50,
        100 and sample gaps 0, 0, 0, 1, 4, 4, 9 respectively.  Budgets not in
        that list fall back to proportional choices (20% burn-in, gap so that
        roughly 20 samples are kept).
        """
        schedule = {
            7: (2, 1),
            10: (2, 1),
            20: (5, 1),
            50: (10, 2),
            100: (20, 5),
            200: (50, 5),
            500: (100, 10),
        }
        if iterations in schedule:
            burn_in, thin = schedule[iterations]
        else:
            burn_in = max(1, iterations // 5)
            thin = max(1, (iterations - burn_in) // 20)
        return cls(
            iterations=iterations, burn_in=burn_in, thin=thin, seed=seed, kernel=kernel
        )

    @property
    def num_samples(self) -> int:
        """Number of retained samples under this schedule."""
        return len(range(self.burn_in, self.iterations, self.thin))

    def resolved_kernel(self) -> str:
        """The kernel that will actually run (``"auto"`` resolved).

        ``"auto"`` picks the blocked kernel: its pre-pass amortises across
        facts and its adaptive dense walk beats the per-fact numpy loop in
        every measured regime, from the paper's toy example to the Figure-6
        workload.
        """
        if self.kernel == "auto":
            return "blocked"
        return self.kernel


@dataclass
class GibbsTrace:
    """Diagnostics collected during sampling.

    Attributes
    ----------
    flips_per_iteration:
        How many facts changed truth value in each sweep; a rapidly shrinking
        sequence indicates convergence.
    samples_collected:
        Number of retained (post burn-in, thinned) samples.
    checkpoint_scores:
        Optional snapshots of the running truth-probability estimate, keyed
        by iteration index (only populated when checkpoints are requested).
    kernel:
        Which sweep implementation produced this trace (``"scalar"`` or
        ``"blocked"``).
    block_count:
        Number of conflict-free blocks in the blocked kernel's schedule
        (0 for the scalar kernel, which has no schedule).
    """

    flips_per_iteration: list[int] = field(default_factory=list)
    samples_collected: int = 0
    checkpoint_scores: dict[int, np.ndarray] = field(default_factory=dict)
    kernel: str = "scalar"
    block_count: int = 0

    @property
    def total_iterations(self) -> int:
        """Number of sweeps performed."""
        return len(self.flips_per_iteration)

    def flip_fraction(self, num_facts: int) -> list[float]:
        """Per-iteration fraction of facts that flipped."""
        if num_facts == 0:
            return []
        return [flips / num_facts for flips in self.flips_per_iteration]


class CollapsedGibbsSampler:
    """Runs Algorithm 1 on a claim matrix under a given prior specification.

    Parameters
    ----------
    priors:
        The :class:`~repro.core.priors.LTMPriors` providing the ``alpha`` and
        ``beta`` pseudo-counts of Equation (2).
    config:
        The sampling schedule and kernel choice.
    """

    def __init__(self, priors: LTMPriors | None = None, config: GibbsConfig | None = None):
        self.priors = priors if priors is not None else LTMPriors()
        self.config = config if config is not None else GibbsConfig()

    # -- public API ---------------------------------------------------------------
    def run(
        self,
        claims: ClaimMatrix,
        initial_truth: np.ndarray | None = None,
        checkpoints: Sequence[int] = (),
        callback: Callable[[int, np.ndarray], None] | None = None,
    ) -> tuple[np.ndarray, SourceCounts, GibbsTrace]:
        """Sample latent truths for every fact of ``claims``.

        Parameters
        ----------
        claims:
            The claim matrix to fit.
        initial_truth:
            Optional initial truth assignment (defaults to uniform random, as
            in Algorithm 1's initialisation).
        checkpoints:
            Iteration indices at which to snapshot the running probability
            estimate (used by the convergence study, Figure 5).
        callback:
            Optional ``callback(iteration, current_truth)`` invoked after each
            sweep.

        Returns
        -------
        (scores, counts, trace):
            ``scores`` is the posterior truth probability per fact (the
            average of retained samples), ``counts`` the final confusion
            counts under the last truth assignment, and ``trace`` the
            sampling diagnostics (including which kernel ran).
        """
        if claims.num_facts == 0:
            raise ModelError("cannot run the Gibbs sampler on a claim matrix with no facts")

        if self.config.resolved_kernel() == "blocked":
            from repro.core.gibbs_vec import run_blocked

            return run_blocked(
                self.priors,
                self.config,
                claims,
                initial_truth=initial_truth,
                checkpoints=checkpoints,
                callback=callback,
            )
        return self._run_scalar(claims, initial_truth, checkpoints, callback)

    # -- scalar kernel ------------------------------------------------------------
    def _run_scalar(
        self,
        claims: ClaimMatrix,
        initial_truth: np.ndarray | None,
        checkpoints: Sequence[int],
        callback: Callable[[int, np.ndarray], None] | None,
    ) -> tuple[np.ndarray, SourceCounts, GibbsTrace]:
        from repro.core.gibbs_vec import KernelTables

        rng = np.random.default_rng(self.config.seed)
        num_facts = claims.num_facts

        truth = self._initial_assignment(num_facts, initial_truth, rng)
        counts = SourceCounts.from_assignment(claims, truth)
        # Flat views: the sweep updates them in place and ``counts`` stays in
        # sync because ``counts_flat`` aliases its buffer.
        counts_flat = counts.counts.reshape(-1)
        totals_flat = counts.counts.sum(axis=2).reshape(-1)

        tables = KernelTables(claims, self.priors)
        log_num, log_den = tables.log_num, tables.log_den
        num_base0, num_base1 = tables.num_base
        den_base0, den_base1 = tables.den_base
        count_idx0, count_idx1 = tables.count_idx
        total_idx0, total_idx1 = tables.total_idx
        delta_log_beta = tables.delta_log_beta
        prior_true = tables.prior_true

        fact_ptr = claims.fact_ptr
        segment_start = np.zeros(1, dtype=np.intp)

        score_sum = np.zeros(num_facts, dtype=float)
        samples = 0
        trace = GibbsTrace(kernel="scalar")
        checkpoint_set = set(int(c) for c in checkpoints)

        # Telemetry: sweeps are grouped into at most ~10 chunked
        # ``gibbs.iteration`` spans per fit — per-sweep granularity without
        # per-claim (or even per-sweep) span overhead.  The inner loops are
        # untouched when tracing is disabled.
        tracer = get_tracer()
        traced = tracer.enabled
        chunk = max(1, self.config.iterations // 10)
        chunk_start = tracer.now() if traced else 0.0
        chunk_first = 0
        chunk_flips = 0

        for iteration in range(self.config.iterations):
            flips = 0
            uniforms = rng.random(num_facts)
            thresholds = KernelTables.switch_thresholds(uniforms)
            for f in range(num_facts):
                start, stop = fact_ptr[f], fact_ptr[f + 1]
                if start == stop:
                    # A fact with no claims: sample from the prior alone.
                    new_t = 1 if uniforms[f] < prior_true else 0
                    if new_t != truth[f]:
                        truth[f] = new_t
                        flips += 1
                    continue
                if truth[f] == 1:
                    cur = 1
                    nb_cur, nb_oth = num_base1[start:stop], num_base0[start:stop]
                    db_cur, db_oth = den_base1[start:stop], den_base0[start:stop]
                    ci_cur, ci_oth = count_idx1[start:stop], count_idx0[start:stop]
                    ti_cur, ti_oth = total_idx1[start:stop], total_idx0[start:stop]
                else:
                    cur = 0
                    nb_cur, nb_oth = num_base0[start:stop], num_base1[start:stop]
                    db_cur, db_oth = den_base0[start:stop], den_base1[start:stop]
                    ci_cur, ci_oth = count_idx0[start:stop], count_idx1[start:stop]
                    ti_cur, ti_oth = total_idx0[start:stop], total_idx1[start:stop]

                # Equation (2): counts exclude fact f's own claims for the
                # bucket it currently occupies (the ``- 1`` on the current
                # side); every log comes from the precomputed tables.
                terms = (
                    log_num[nb_cur + (counts_flat[ci_cur] - 1)]
                    - log_den[db_cur + (totals_flat[ti_cur] - 1)]
                ) - (
                    log_num[nb_oth + counts_flat[ci_oth]]
                    - log_den[db_oth + totals_flat[ti_oth]]
                )
                delta = np.add.reduceat(terms, segment_start)[0] + delta_log_beta[cur]
                if delta < thresholds[f]:
                    truth[f] = 1 - cur
                    flips += 1
                    np.add.at(counts_flat, ci_cur, -1)
                    np.add.at(counts_flat, ci_oth, 1)
                    np.add.at(totals_flat, ti_cur, -1)
                    np.add.at(totals_flat, ti_oth, 1)

            trace.flips_per_iteration.append(flips)
            if traced:
                chunk_flips += flips
                if (iteration + 1) % chunk == 0 or iteration == self.config.iterations - 1:
                    sweeps = iteration - chunk_first + 1
                    tracer.record(
                        "gibbs.iteration",
                        chunk_start,
                        end=tracer.now(),
                        first_iteration=chunk_first,
                        iterations=sweeps,
                        flips=chunk_flips,
                        flip_fraction=round(chunk_flips / (sweeps * num_facts), 6),
                    )
                    chunk_start = tracer.now()
                    chunk_first = iteration + 1
                    chunk_flips = 0
            if iteration >= self.config.burn_in and (iteration - self.config.burn_in) % self.config.thin == 0:
                score_sum += truth
                samples += 1
            if iteration in checkpoint_set:
                running = score_sum / samples if samples else truth.astype(float)
                trace.checkpoint_scores[iteration] = running.copy()
            if callback is not None:
                callback(iteration, truth)

        trace.samples_collected = samples
        scores = score_sum / samples if samples else truth.astype(float)
        counts.verify_non_negative()
        return scores, counts, trace

    # -- helpers ----------------------------------------------------------------------
    @staticmethod
    def _initial_assignment(
        num_facts: int,
        initial_truth: np.ndarray | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if initial_truth is None:
            return (rng.random(num_facts) < 0.5).astype(np.int64)
        initial_truth = np.asarray(initial_truth).astype(np.int64)
        if initial_truth.shape != (num_facts,):
            raise ModelError(
                f"initial truth must have shape ({num_facts},), got {initial_truth.shape}"
            )
        if not np.isin(initial_truth, (0, 1)).all():
            raise ModelError("initial truth assignment must be binary")
        return initial_truth.copy()

"""Optional numba acceleration of the blocked kernel's dense sweep.

Installed via the ``[jit]`` extra (``pip install repro-ltm[jit]``).  When
numba is missing — the default — everything here degrades silently: the
blocked kernel falls back to its pure-python table walk, which computes the
identical IEEE-754 sequence.  The compiled sweep mirrors
:func:`repro.core.gibbs_vec._dense_walk` operation for operation (same table
lookups, same left-to-right accumulation, same strict-``<`` threshold test),
so enabling the JIT never changes sampled chains — only wall-clock.
"""

from __future__ import annotations

from typing import Any, Callable

try:  # pragma: no cover - exercised only with the [jit] extra installed
    import numba  # type: ignore

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the default environment
    numba = None
    HAVE_NUMBA = False

_COMPILED: Any = None
_FAILED = False


def _build() -> Callable | None:  # pragma: no cover - requires numba
    """Compile the dense sweep; any compilation problem disables the JIT."""

    @numba.njit(cache=True)
    def dense_sweep(
        walk_ptr,  # (K+1,) claim-row boundaries per walk position
        order,  # (K,) fact ids in block order
        nb1, ci1, db1, ti1,  # per walk claim: index bases for truth == 1
        nb0, ci0, db0, ti0,  # per walk claim: index bases for truth == 0
        log_num, log_den,  # shared canonical tables
        counts, totals, truth,  # mutable flat state (int64)
        thresholds,  # (F,) per-fact flip thresholds
        dlb0, dlb1,  # delta_log_beta per truth value
    ):
        flips = 0
        for k in range(order.shape[0]):
            fact = order[k]
            current = truth[fact]
            acc = 0.0
            if current == 1:
                for i in range(walk_ptr[k], walk_ptr[k + 1]):
                    acc += (
                        log_num[nb1[i] + counts[ci1[i]] - 1]
                        - log_den[db1[i] + totals[ti1[i]] - 1]
                    ) - (
                        log_num[nb0[i] + counts[ci0[i]]]
                        - log_den[db0[i] + totals[ti0[i]]]
                    )
                if acc + dlb1 < thresholds[fact]:
                    for i in range(walk_ptr[k], walk_ptr[k + 1]):
                        counts[ci1[i]] -= 1
                        counts[ci0[i]] += 1
                        totals[ti1[i]] -= 1
                        totals[ti0[i]] += 1
                    truth[fact] = 0
                    flips += 1
            else:
                for i in range(walk_ptr[k], walk_ptr[k + 1]):
                    acc += (
                        log_num[nb0[i] + counts[ci0[i]] - 1]
                        - log_den[db0[i] + totals[ti0[i]] - 1]
                    ) - (
                        log_num[nb1[i] + counts[ci1[i]]]
                        - log_den[db1[i] + totals[ti1[i]]]
                    )
                if acc + dlb0 < thresholds[fact]:
                    for i in range(walk_ptr[k], walk_ptr[k + 1]):
                        counts[ci0[i]] -= 1
                        counts[ci1[i]] += 1
                        totals[ti0[i]] -= 1
                        totals[ti1[i]] += 1
                    truth[fact] = 1
                    flips += 1
        return flips

    return dense_sweep


def dense_sweep_compiled() -> Callable | None:
    """The compiled dense sweep, or ``None`` when numba is unavailable."""
    global _COMPILED, _FAILED
    if not HAVE_NUMBA or _FAILED:
        return None
    if _COMPILED is None:  # pragma: no cover - requires numba
        try:
            _COMPILED = _build()
        except Exception:
            _FAILED = True
            return None
    return _COMPILED

"""Likelihood functions of the Latent Truth Model (Section 5.1).

These are not needed by the collapsed sampler itself (which works with counts)
but are exposed for diagnostics, model comparison and tests: the per-claim
marginal likelihood and the complete-data log likelihood of Equation (1).
"""

from __future__ import annotations

import numpy as np
from numpy.typing import ArrayLike

from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ModelError

__all__ = ["claim_log_likelihood", "complete_log_likelihood", "log_beta_function"]


def log_beta_function(a: float, b: float) -> float:
    """Natural log of the Beta function ``B(a, b)``."""
    from math import lgamma

    return lgamma(a) + lgamma(b) - lgamma(a + b)


def claim_log_likelihood(
    observation: int,
    theta: float,
    false_positive_rate: float,
    sensitivity: float,
) -> float:
    """Log of ``p(o_c | theta_f, phi0_s, phi1_s)`` for one claim.

    This is the mixture of Section 5.1: the probability of the observation
    under a false fact (weighted ``1 - theta``) plus under a true fact
    (weighted ``theta``).
    """
    if not 0.0 <= theta <= 1.0:
        raise ModelError(f"theta must be in [0, 1], got {theta}")
    p_if_false = false_positive_rate if observation else 1.0 - false_positive_rate
    p_if_true = sensitivity if observation else 1.0 - sensitivity
    likelihood = p_if_false * (1.0 - theta) + p_if_true * theta
    return float(np.log(max(likelihood, 1e-300)))


def complete_log_likelihood(
    claims: ClaimMatrix,
    truth: ArrayLike,
    theta: ArrayLike,
    false_positive_rate: ArrayLike,
    sensitivity: ArrayLike,
    priors: LTMPriors | None = None,
) -> float:
    """Complete-data log likelihood of Equation (1).

    Evaluates ``log p(o, t, theta, phi0, phi1 | alpha0, alpha1, beta)`` for a
    full instantiation of the latent variables and parameters.  Useful to
    verify that fitted configurations have higher joint probability than
    perturbed ones.

    Parameters
    ----------
    claims:
        The observed claim matrix.
    truth:
        Binary truth assignment per fact.
    theta:
        Prior truth probability per fact.
    false_positive_rate:
        ``phi0`` per source.
    sensitivity:
        ``phi1`` per source.
    priors:
        Hyperparameters (defaults to :class:`LTMPriors` defaults).
    """
    priors = priors if priors is not None else LTMPriors()
    truth = np.asarray(truth, dtype=np.int64)
    theta = np.asarray(theta, dtype=float)
    phi0 = np.asarray(false_positive_rate, dtype=float)
    phi1 = np.asarray(sensitivity, dtype=float)

    if truth.shape != (claims.num_facts,) or theta.shape != (claims.num_facts,):
        raise ModelError("truth and theta must be per-fact arrays")
    if phi0.shape != (claims.num_sources,) or phi1.shape != (claims.num_sources,):
        raise ModelError("phi0 and phi1 must be per-source arrays")
    for name, arr in (("theta", theta), ("phi0", phi0), ("phi1", phi1)):
        if ((arr <= 0) | (arr >= 1)).any():
            raise ModelError(f"{name} values must lie strictly inside (0, 1)")

    eps = 1e-300
    log_lik = 0.0

    # Source quality priors: phi0 ~ Beta(alpha_{0,1}, alpha_{0,0}), phi1 ~ Beta(alpha_{1,1}, alpha_{1,0}).
    alpha = priors.alpha_array(claims.source_names)
    for s in range(claims.num_sources):
        a01, a00 = alpha[s, 0, 1], alpha[s, 0, 0]
        a11, a10 = alpha[s, 1, 1], alpha[s, 1, 0]
        log_lik += (a01 - 1) * np.log(phi0[s]) + (a00 - 1) * np.log(1 - phi0[s])
        log_lik -= log_beta_function(a01, a00)
        log_lik += (a11 - 1) * np.log(phi1[s]) + (a10 - 1) * np.log(1 - phi1[s])
        log_lik -= log_beta_function(a11, a10)

    # Truth priors: theta_f ~ Beta(beta_1, beta_0); t_f ~ Bernoulli(theta_f).
    beta1, beta0 = priors.truth.positive, priors.truth.negative
    log_lik += float(
        ((beta1 - 1) * np.log(theta) + (beta0 - 1) * np.log(1 - theta)).sum()
    )
    log_lik -= claims.num_facts * log_beta_function(beta1, beta0)
    log_lik += float((truth * np.log(theta) + (1 - truth) * np.log(1 - theta)).sum())

    # Observations: o_c ~ Bernoulli(phi^{t_f}_{s_c}).
    claim_truth = truth[claims.claim_fact]
    claim_phi = np.where(claim_truth == 1, phi1[claims.claim_source], phi0[claims.claim_source])
    obs = claims.claim_obs.astype(float)
    log_lik += float(
        (obs * np.log(np.maximum(claim_phi, eps)) + (1 - obs) * np.log(np.maximum(1 - claim_phi, eps))).sum()
    )
    return float(log_lik)

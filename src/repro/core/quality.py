"""MAP source-quality estimation from fitted truth probabilities (Section 5.3).

Once the Gibbs sampler has produced posterior truth probabilities for every
fact, the expected confusion counts of each source follow directly:

``E[n_{s,i,j}] = sum over claims c of source s with observation j of
P(t_{f_c} = i)``

and the MAP estimates of sensitivity, specificity and precision are the
posterior means of the corresponding Beta distributions (the closed forms of
Section 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SourceQualityTable
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ModelError

__all__ = [
    "expected_confusion_counts",
    "expected_confusion_counts_arrays",
    "estimate_source_quality",
    "quality_from_counts",
]


def expected_confusion_counts_arrays(
    claim_fact: np.ndarray,
    claim_source: np.ndarray,
    claim_obs: np.ndarray,
    num_sources: int,
    scores: np.ndarray,
) -> np.ndarray:
    """Expected confusion counts ``E[n[s, i, j]]`` from raw claim arrays.

    The array form of :func:`expected_confusion_counts`, used by the sharded
    reducer (:mod:`repro.parallel.merge`) to accumulate a shard's count
    contribution onto the *global* source axis: ``claim_source`` may index
    into a source table larger than the shard's own.
    """
    scores = np.asarray(scores, dtype=float)
    expected = np.zeros((num_sources, 2, 2), dtype=float)
    p_true = scores[claim_fact]
    obs = claim_obs.astype(np.int64)
    # i = 1 bucket weighted by P(true); i = 0 bucket weighted by P(false).
    np.add.at(expected, (claim_source, np.ones_like(obs), obs), p_true)
    np.add.at(expected, (claim_source, np.zeros_like(obs), obs), 1.0 - p_true)
    return expected


def expected_confusion_counts(claims: ClaimMatrix, scores: np.ndarray) -> np.ndarray:
    """Expected per-source confusion counts ``E[n[s, i, j]]`` with shape ``(S, 2, 2)``.

    Parameters
    ----------
    claims:
        The claim matrix the scores were fitted on.
    scores:
        Posterior probability that each fact is true, indexed by fact id.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (claims.num_facts,):
        raise ModelError(
            f"scores must have shape ({claims.num_facts},), got {scores.shape}"
        )
    return expected_confusion_counts_arrays(
        claims.claim_fact, claims.claim_source, claims.claim_obs, claims.num_sources, scores
    )


def estimate_source_quality(
    claims: ClaimMatrix,
    scores: np.ndarray,
    priors: LTMPriors | None = None,
) -> SourceQualityTable:
    """MAP estimates of sensitivity, specificity, precision and accuracy per source.

    Implements the closed-form posterior means of Section 5.3:

    * ``sensitivity(s) = (E[n_{s,1,1}] + alpha_{1,1}) / (E[n_{s,1,0}] + E[n_{s,1,1}] + alpha_{1,0} + alpha_{1,1})``
    * ``specificity(s) = (E[n_{s,0,0}] + alpha_{0,0}) / (E[n_{s,0,0}] + E[n_{s,0,1}] + alpha_{0,0} + alpha_{0,1})``
    * ``precision(s)  = (E[n_{s,1,1}] + alpha_{1,1}) / (E[n_{s,0,1}] + E[n_{s,1,1}] + alpha_{0,1} + alpha_{1,1})``

    Accuracy is reported as the expected fraction of correct claims
    ``(E[n_{s,1,1}] + E[n_{s,0,0}]) / E[n_s]`` without prior smoothing; it is
    informational only (the paper argues against using it to model quality).
    """
    expected = expected_confusion_counts(claims, scores)
    return quality_from_counts(claims.source_names, expected, priors)


def quality_from_counts(
    source_names,
    expected_counts: np.ndarray,
    priors: LTMPriors | None = None,
) -> SourceQualityTable:
    """The MAP quality table implied by expected confusion counts.

    Factored out of :func:`estimate_source_quality` so that sharded
    execution (:mod:`repro.parallel.merge`) can compute one global quality
    table from *summed* per-shard count contributions — expected counts are
    additive across entity shards, which is exactly what makes the merge
    score-parity for count-based quality.
    """
    priors = priors if priors is not None else LTMPriors()
    expected = np.asarray(expected_counts, dtype=float)
    if expected.shape != (len(source_names), 2, 2):
        raise ModelError(
            f"expected counts must have shape ({len(source_names)}, 2, 2), got {expected.shape}"
        )
    alpha = priors.alpha_array(source_names)

    tp = expected[:, 1, 1]
    fn = expected[:, 1, 0]
    fp = expected[:, 0, 1]
    tn = expected[:, 0, 0]

    a_tp = alpha[:, 1, 1]
    a_fn = alpha[:, 1, 0]
    a_fp = alpha[:, 0, 1]
    a_tn = alpha[:, 0, 0]

    sensitivity = (tp + a_tp) / (tp + fn + a_tp + a_fn)
    specificity = (tn + a_tn) / (tn + fp + a_tn + a_fp)
    precision = (tp + a_tp) / (tp + fp + a_tp + a_fp)

    totals = tp + fn + fp + tn
    with np.errstate(divide="ignore", invalid="ignore"):
        accuracy = np.where(totals > 0, (tp + tn) / totals, np.nan)

    return SourceQualityTable(
        source_names=tuple(source_names),
        sensitivity=sensitivity,
        specificity=specificity,
        precision=precision,
        accuracy=accuracy,
    )

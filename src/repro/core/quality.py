"""MAP source-quality estimation from fitted truth probabilities (Section 5.3).

Once the Gibbs sampler has produced posterior truth probabilities for every
fact, the expected confusion counts of each source follow directly:

``E[n_{s,i,j}] = sum over claims c of source s with observation j of
P(t_{f_c} = i)``

and the MAP estimates of sensitivity, specificity and precision are the
posterior means of the corresponding Beta distributions (the closed forms of
Section 5.3).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SourceQualityTable
from repro.core.priors import LTMPriors
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ModelError

__all__ = ["expected_confusion_counts", "estimate_source_quality"]


def expected_confusion_counts(claims: ClaimMatrix, scores: np.ndarray) -> np.ndarray:
    """Expected per-source confusion counts ``E[n[s, i, j]]`` with shape ``(S, 2, 2)``.

    Parameters
    ----------
    claims:
        The claim matrix the scores were fitted on.
    scores:
        Posterior probability that each fact is true, indexed by fact id.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.shape != (claims.num_facts,):
        raise ModelError(
            f"scores must have shape ({claims.num_facts},), got {scores.shape}"
        )
    expected = np.zeros((claims.num_sources, 2, 2), dtype=float)
    p_true = scores[claims.claim_fact]
    obs = claims.claim_obs.astype(np.int64)
    sources = claims.claim_source
    # i = 1 bucket weighted by P(true); i = 0 bucket weighted by P(false).
    np.add.at(expected, (sources, np.ones_like(obs), obs), p_true)
    np.add.at(expected, (sources, np.zeros_like(obs), obs), 1.0 - p_true)
    return expected


def estimate_source_quality(
    claims: ClaimMatrix,
    scores: np.ndarray,
    priors: LTMPriors | None = None,
) -> SourceQualityTable:
    """MAP estimates of sensitivity, specificity, precision and accuracy per source.

    Implements the closed-form posterior means of Section 5.3:

    * ``sensitivity(s) = (E[n_{s,1,1}] + alpha_{1,1}) / (E[n_{s,1,0}] + E[n_{s,1,1}] + alpha_{1,0} + alpha_{1,1})``
    * ``specificity(s) = (E[n_{s,0,0}] + alpha_{0,0}) / (E[n_{s,0,0}] + E[n_{s,0,1}] + alpha_{0,0} + alpha_{0,1})``
    * ``precision(s)  = (E[n_{s,1,1}] + alpha_{1,1}) / (E[n_{s,0,1}] + E[n_{s,1,1}] + alpha_{0,1} + alpha_{1,1})``

    Accuracy is reported as the expected fraction of correct claims
    ``(E[n_{s,1,1}] + E[n_{s,0,0}]) / E[n_s]`` without prior smoothing; it is
    informational only (the paper argues against using it to model quality).
    """
    priors = priors if priors is not None else LTMPriors()
    expected = expected_confusion_counts(claims, scores)
    alpha = priors.alpha_array(claims.source_names)

    tp = expected[:, 1, 1]
    fn = expected[:, 1, 0]
    fp = expected[:, 0, 1]
    tn = expected[:, 0, 0]

    a_tp = alpha[:, 1, 1]
    a_fn = alpha[:, 1, 0]
    a_fp = alpha[:, 0, 1]
    a_tn = alpha[:, 0, 0]

    sensitivity = (tp + a_tp) / (tp + fn + a_tp + a_fn)
    specificity = (tn + a_tn) / (tn + fp + a_tn + a_fp)
    precision = (tp + a_tp) / (tp + fp + a_tp + a_fp)

    totals = tp + fn + fp + tn
    with np.errstate(divide="ignore", invalid="ignore"):
        accuracy = np.where(totals > 0, (tp + tn) / totals, np.nan)

    return SourceQualityTable(
        source_names=tuple(claims.source_names),
        sensitivity=sensitivity,
        specificity=specificity,
        precision=precision,
        accuracy=accuracy,
    )

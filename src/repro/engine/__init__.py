"""The unified truth-discovery engine (the library's canonical API).

This package is the single seam every entry point goes through:

* :class:`~repro.engine.registry.MethodRegistry` — config-driven catalogue of
  every solver (LTM and variants, the seven baselines, the extension models)
  under string keys with per-method metadata;
* :class:`~repro.engine.config.EngineConfig` — declarative engine
  configuration (method + hyperparameters + execution options);
* :class:`~repro.engine.facade.TruthEngine` — sklearn-style facade with
  ``fit`` / ``partial_fit`` / ``predict_proba`` / ``quality_report``,
  covering batch, incremental and streaming integration alike;
* :func:`~repro.engine.facade.discover` — the one-liner quickstart path.

The serve-side counterpart is :mod:`repro.serving`:
:meth:`~repro.engine.facade.TruthEngine.save` / ``load`` / ``to_artifact``
snapshot a fitted engine into a versioned
:class:`~repro.serving.TruthArtifact`, served by a hot-swappable
:class:`~repro.serving.TruthService`.  The scale-out counterpart is
:mod:`repro.parallel`: an :class:`~repro.engine.config.ExecutionConfig`
with ``num_shards > 1`` routes fits through entity-sharded parallel
execution with score-parity merging.

The ``repro-truth`` CLI is a thin adapter over this package.
"""

from repro.engine.config import EngineConfig, ExecutionConfig
from repro.engine.registry import (
    MethodRegistry,
    MethodSpec,
    default_registry,
    method_suite,
    register_default,
)
from repro.engine.facade import OnlineStepReport, TruthEngine, discover

__all__ = [
    "EngineConfig",
    "ExecutionConfig",
    "MethodRegistry",
    "MethodSpec",
    "OnlineStepReport",
    "TruthEngine",
    "default_registry",
    "discover",
    "method_suite",
    "register_default",
]

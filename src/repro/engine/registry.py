"""The unified method registry behind the :class:`~repro.engine.TruthEngine`.

Every solver the library ships — the Latent Truth Model and its variants, the
seven baselines, and the extension models — is registered here under a
canonical string key together with per-method metadata (whether it supports
incremental prediction, whether it estimates source quality, the range of its
scores).  The registry is the single place a new backend has to be wired:
once registered, a method is reachable from :class:`~repro.engine.TruthEngine`,
:func:`repro.discover`, :func:`repro.pipeline.run_integration`, the sharded
executor (:mod:`repro.parallel`) and the ``repro-truth`` CLI (``--method``
flag and ``methods`` subcommand) alike.

Keys are normalised case-insensitively with ``-``/``_``/`` `` treated as
equivalent, and each method may carry aliases, so ``"ltm"``, ``"LTM"``,
``"three_estimates"`` and ``"3-Estimates"`` all resolve.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.baselines.avglog import AvgLog
from repro.baselines.hubauthority import HubAuthority
from repro.baselines.investment import Investment
from repro.baselines.pooled_investment import PooledInvestment
from repro.baselines.three_estimates import ThreeEstimates
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.voting import Voting
from repro.core.incremental import IncrementalLTM
from repro.core.ltmpos import PositiveOnlyLTM
from repro.core.model import LatentTruthModel
from repro.exceptions import ConfigurationError

__all__ = [
    "MethodSpec",
    "MethodRegistry",
    "default_registry",
    "register_default",
    "method_suite",
]


def _normalise_key(name: str) -> str:
    """Canonicalise a method name for lookup: lowercase, separators unified."""
    return name.strip().lower().replace("-", "_").replace(" ", "_")


@dataclass(frozen=True)
class MethodSpec:
    """One registered truth-finding method and its metadata.

    Attributes
    ----------
    key:
        Canonical registry key (lowercase, underscore-separated).
    factory:
        Callable building a fresh solver instance from keyword arguments.
    summary:
        One-line human-readable description, shown by ``repro-truth methods``.
    display_name:
        The name the comparison harness and the paper's tables use
        (e.g. ``"3-Estimates"`` for key ``three_estimates``).
    supports_incremental:
        Whether the method can score new claims from previously learned state
        without a full re-fit (the LTMinc deployment of Section 5.4).
    supports_quality:
        Whether the fitted result carries a per-source
        :class:`~repro.core.base.SourceQualityTable`.
    output_range:
        Range of the produced scores: ``"probability"`` for calibrated
        posteriors, ``"normalised"`` for max-normalised confidence scores,
        ``"real"`` for unbounded numeric estimates.
    claim_based:
        Whether the method consumes a standard
        :class:`~repro.data.dataset.ClaimMatrix` (the extension models
        consume numeric claims / per-type matrices instead and cannot be
        driven through :class:`~repro.engine.TruthEngine`).
    requires_quality:
        Whether construction needs a previously learned quality table
        (only LTMinc).
    shard_strategy:
        How entity-sharded execution (:mod:`repro.parallel`) merges the
        method's per-shard fits, or ``None`` when the method cannot be
        sharded by entity:

        * ``"local"`` — per-fact scores depend only on the fact's own
          claims (Voting, LTMinc): shard scores are globally exact and are
          simply concatenated;
        * ``"counts"`` — the method learns per-source quality from
          confusion counts (LTM): per-shard expected counts are summed and
          optional quality-sync rounds make cross-shard sources converge to
          one quality estimate;
        * ``"counts_positive"`` — like ``"counts"`` but the method only
          ever sees positive claims (LTMpos), so count merging and
          quality-sync re-scoring are restricted to them;
        * ``"trust_sync"`` — the method iterates a global per-source trust
          vector (TruthFinder): shards compute per-source partial sums each
          round and the reducer synchronises the trust vector, reproducing
          the serial fixed point.
    aliases:
        Additional accepted names (matched after normalisation).
    """

    key: str
    factory: Callable[..., Any]
    summary: str
    display_name: str = ""
    supports_incremental: bool = False
    supports_quality: bool = False
    output_range: str = "probability"
    claim_based: bool = True
    requires_quality: bool = False
    shard_strategy: str | None = None
    aliases: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.display_name:
            object.__setattr__(self, "display_name", self.key)

    def accepts(self, parameter: str) -> bool:
        """Whether the factory's signature accepts keyword ``parameter``."""
        try:
            signature = inspect.signature(self.factory)
        except (TypeError, ValueError):  # pragma: no cover - builtins only
            return False
        if any(
            p.kind is inspect.Parameter.VAR_KEYWORD for p in signature.parameters.values()
        ):
            return True
        return parameter in signature.parameters

    def metadata(self) -> dict[str, Any]:
        """The spec's metadata as a plain dict (for display and serialisation)."""
        return {
            "key": self.key,
            "display_name": self.display_name,
            "summary": self.summary,
            "supports_incremental": self.supports_incremental,
            "supports_quality": self.supports_quality,
            "output_range": self.output_range,
            "claim_based": self.claim_based,
            "requires_quality": self.requires_quality,
            "shard_strategy": self.shard_strategy,
            "aliases": list(self.aliases),
        }


class MethodRegistry:
    """A name-to-solver registry with alias resolution and metadata.

    The registry maps canonical keys to :class:`MethodSpec` objects and keeps
    an alias table so historical names (``"LTM"``, ``"3-Estimates"``) keep
    resolving.  It is deliberately instance-based — tests and embedders can
    build private registries — while :func:`default_registry` exposes the
    process-wide one the engine, pipeline and CLI share.
    """

    def __init__(self) -> None:
        self._specs: dict[str, MethodSpec] = {}
        self._aliases: dict[str, str] = {}

    # -- registration ---------------------------------------------------------------
    def register(self, spec: MethodSpec, replace: bool = False) -> MethodSpec:
        """Add ``spec`` to the registry and index its aliases."""
        key = _normalise_key(spec.key)
        if key != spec.key:
            spec = MethodSpec(**{**spec.__dict__, "key": key})
        if not replace and (key in self._specs or key in self._aliases):
            raise ConfigurationError(f"method {spec.key!r} is already registered")
        self._specs[key] = spec
        for alias in spec.aliases:
            normalised = _normalise_key(alias)
            if normalised == key:
                continue
            if normalised in self._specs:
                # Canonical keys win over aliases in resolve(), so such an
                # alias would be silently dead — reject it outright.
                raise ConfigurationError(
                    f"alias {alias!r} collides with the registered method "
                    f"{normalised!r}"
                )
            existing = self._aliases.get(normalised)
            if not replace and existing is not None and existing != key:
                raise ConfigurationError(
                    f"alias {alias!r} already points at {existing!r}"
                )
            self._aliases[normalised] = key
        return spec

    def register_method(
        self,
        key: str,
        factory: Callable[..., Any],
        summary: str,
        **metadata: Any,
    ) -> MethodSpec:
        """Convenience wrapper building and registering a :class:`MethodSpec`."""
        return self.register(MethodSpec(key=key, factory=factory, summary=summary, **metadata))

    # -- lookup ---------------------------------------------------------------------
    def resolve(self, name: str) -> str:
        """Return the canonical key for ``name`` (which may be an alias)."""
        key = _normalise_key(name)
        if key in self._specs:
            return key
        if key in self._aliases:
            return self._aliases[key]
        raise ConfigurationError(
            f"unknown method {name!r}; registered methods: {sorted(self._specs)}"
        )

    def spec(self, name: str) -> MethodSpec:
        """The :class:`MethodSpec` registered under ``name`` or one of its aliases."""
        return self._specs[self.resolve(name)]

    def create(self, name: str, **kwargs: Any) -> Any:
        """Instantiate the solver registered under ``name`` with ``kwargs``."""
        return self.spec(name).factory(**kwargs)

    def names(self) -> list[str]:
        """Canonical keys of every registered method, in registration order."""
        return list(self._specs)

    def specs(self) -> list[MethodSpec]:
        """Every registered spec, in registration order."""
        return list(self._specs.values())

    def __contains__(self, name: object) -> bool:
        if not isinstance(name, str):
            return False
        try:
            self.resolve(name)
        except ConfigurationError:
            return False
        return True

    def __iter__(self) -> Iterator[MethodSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MethodRegistry({sorted(self._specs)})"


def _populate(registry: MethodRegistry) -> MethodRegistry:
    """Register the library's full method catalogue into ``registry``."""
    registry.register_method(
        "ltm",
        LatentTruthModel,
        "Latent Truth Model: collapsed Gibbs, two-sided source quality (the paper's LTM)",
        display_name="LTM",
        supports_incremental=True,
        supports_quality=True,
        shard_strategy="counts",
        aliases=("latent_truth_model",),
    )
    registry.register_method(
        "ltm_inc",
        IncrementalLTM,
        "LTMinc: closed-form scoring from previously learned source quality (Eq. 3)",
        display_name="LTMinc",
        supports_incremental=True,
        supports_quality=True,
        requires_quality=True,
        shard_strategy="local",
        aliases=("ltminc", "incremental_ltm"),
    )
    registry.register_method(
        "ltm_pos",
        PositiveOnlyLTM,
        "LTM ablation fitted on positive claims only (one-sided quality)",
        display_name="LTMpos",
        supports_incremental=True,
        supports_quality=True,
        shard_strategy="counts_positive",
        aliases=("ltmpos", "positive_only_ltm"),
    )
    registry.register_method(
        "voting",
        Voting,
        "Majority voting: fraction of a fact's claims that are positive",
        shard_strategy="local",
    )
    registry.register_method(
        "truthfinder",
        TruthFinder,
        "TruthFinder (Yin et al. 2007): iterative trust / confidence propagation",
        shard_strategy="trust_sync",
        aliases=("truth_finder",),
    )
    registry.register_method(
        "hub_authority",
        HubAuthority,
        "HITS on the bipartite source-fact graph of positive claims",
        display_name="HubAuthority",
        output_range="normalised",
        aliases=("hubauthority", "hits"),
    )
    registry.register_method(
        "avg_log",
        AvgLog,
        "AvgLog (Pasternack & Roth 2010): HITS with log-scaled claim counts",
        display_name="AvgLog",
        output_range="normalised",
        aliases=("avglog",),
    )
    registry.register_method(
        "investment",
        Investment,
        "Investment: sources invest credit in claims, repaid non-linearly",
        display_name="Investment",
        output_range="normalised",
    )
    registry.register_method(
        "pooled_investment",
        PooledInvestment,
        "Investment with per-entity pooling of repayments",
        display_name="PooledInvestment",
        output_range="normalised",
        aliases=("pooledinvestment",),
    )
    registry.register_method(
        "three_estimates",
        ThreeEstimates,
        "3-Estimates (Galland et al. 2010): joint truth / source error / difficulty",
        display_name="3-Estimates",
        aliases=("3_estimates", "3estimates"),
    )

    # Extension models: not ClaimMatrix-based, registered for discovery and
    # metadata but rejected by TruthEngine.fit with a pointed error.
    from repro.extensions.gaussian_ltm import GaussianTruthModel
    from repro.extensions.multi_attribute import MultiAttributeLTM

    registry.register_method(
        "gaussian_ltm",
        GaussianTruthModel,
        "Real-valued extension: Gaussian observation model over numeric claims",
        display_name="GaussianLTM",
        supports_quality=True,
        output_range="real",
        claim_based=False,
        aliases=("gaussian",),
    )
    registry.register_method(
        "multi_attribute",
        MultiAttributeLTM,
        "Joint LTM over several attribute types with cross-type quality sharing",
        display_name="MultiAttributeLTM",
        supports_quality=True,
        claim_based=False,
        aliases=("multiattribute", "multi_attribute_ltm"),
    )
    return registry


_DEFAULT_REGISTRY: MethodRegistry | None = None


def default_registry() -> MethodRegistry:
    """The process-wide registry shared by the engine, pipeline and CLI."""
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = _populate(MethodRegistry())
    return _DEFAULT_REGISTRY


def register_default(spec: MethodSpec, replace: bool = False) -> MethodSpec:
    """Register ``spec`` into the shared default registry."""
    return default_registry().register(spec, replace=replace)


def method_suite(
    priors: Any | None = None,
    iterations: int = 100,
    seed: int | None = 7,
    include: dict[str, bool] | None = None,
    registry: MethodRegistry | None = None,
) -> list[Any]:
    """Build the paper's standard comparison suite (every method except LTMinc).

    This is the canonical home of the comparison suite: fresh,
    consistently-configured instances of the nine directly-fittable methods
    of Table 7 / Figures 2-3, in the paper's presentation order (LTMinc
    needs a previously learned quality table and is constructed separately
    by the evaluation protocol).

    Parameters
    ----------
    priors:
        :class:`~repro.core.priors.LTMPriors` used by LTM and LTMpos
        (defaults to the library defaults).
    iterations:
        Gibbs iterations for LTM and LTMpos.
    seed:
        Random seed shared by the sampling-based methods.
    include:
        Optional mapping of method name to a Boolean; methods mapped to
        ``False`` are skipped.  Both display names (``"LTM"``) and registry
        keys work.
    registry:
        The registry to build from (defaults to the shared one).
    """
    resolved = registry if registry is not None else default_registry()
    include = dict(include or {})

    def wanted(name: str) -> bool:
        if name in include:
            return include[name]
        key = resolved.resolve(name)
        for alias, value in include.items():
            try:
                if resolved.resolve(alias) == key:
                    return value
            except ConfigurationError:
                continue
        return True

    sampled_kwargs = {"priors": priors, "iterations": iterations, "seed": seed}
    suite: list[Any] = []
    # Paper presentation order (LTM first, heuristic baselines after).
    for name in (
        "LTM",
        "3-Estimates",
        "Voting",
        "TruthFinder",
        "Investment",
        "LTMpos",
        "HubAuthority",
        "AvgLog",
        "PooledInvestment",
    ):
        if not wanted(name):
            continue
        spec = resolved.spec(name)
        kwargs = sampled_kwargs if spec.accepts("priors") else {}
        suite.append(resolved.create(name, **kwargs))
    return suite

"""Declarative configuration of a :class:`~repro.engine.TruthEngine`.

An :class:`EngineConfig` is a plain, serialisable description of one engine:
which method to run (a registry key), the hyperparameters to build it with,
and the execution options (acceptance threshold, streaming re-train cadence).
Because it is data rather than code, a config can be loaded from JSON/YAML,
logged, diffed and shipped between services — the property that lets later
work (serving, sharding, multi-backend) treat truth discovery as a
configuration concern.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.obs.config import TelemetryConfig

__all__ = ["EngineConfig", "ExecutionConfig", "TelemetryConfig"]

#: Executor backends accepted by :attr:`ExecutionConfig.backend`.
EXECUTION_BACKENDS = ("serial", "threads", "processes")


@dataclass(frozen=True)
class ExecutionConfig:
    """How a fit is executed: single-shard or entity-sharded parallel.

    The default (``num_shards=1``) is the classic single-shard path.  With
    ``num_shards > 1``, :meth:`~repro.engine.TruthEngine.fit` (and streaming
    re-fits) hash-partition the input by entity through
    :class:`~repro.parallel.ShardPlanner`, fit every shard on the configured
    backend and merge the per-shard results with
    :mod:`repro.parallel.merge` — score-parity with the single-shard engine
    for entity-decomposable methods (see :mod:`repro.parallel`).

    Attributes
    ----------
    num_shards:
        Number of entity shards (1 = no sharding).
    backend:
        Where shard fits run: ``"serial"`` (in-process loop — the debug /
        reference backend), ``"threads"`` (a thread pool; best for the
        vectorised methods that release the GIL in numpy) or
        ``"processes"`` (a process pool; best for the Python-loop Gibbs
        sampler).
    quality_sync_rounds:
        Number of post-merge quality-synchronisation rounds for
        count-mergeable methods (LTM family): each round recomputes the
        global source quality from the summed per-shard confusion counts
        and re-scores every shard's facts under it with the closed-form
        posterior (Equation 3), so cross-shard sources converge to a single
        quality estimate.  0 keeps the raw per-shard scores.
    max_workers:
        Worker cap for the threads/processes backends (``None`` = one per
        shard, capped by the machine).
    partition_seed:
        Seed of the entity hash-partitioning
        (:func:`repro.io.entity_partition_key`); changing it re-balances
        shard membership deterministically.
    """

    num_shards: int = 1
    backend: str = "serial"
    quality_sync_rounds: int = 1
    max_workers: int | None = None
    partition_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ConfigurationError("num_shards must be at least 1")
        if self.backend not in EXECUTION_BACKENDS:
            raise ConfigurationError(
                f"unknown execution backend {self.backend!r}; "
                f"choose one of {list(EXECUTION_BACKENDS)}"
            )
        if self.quality_sync_rounds < 0:
            raise ConfigurationError("quality_sync_rounds must be non-negative")
        if self.max_workers is not None and self.max_workers < 1:
            raise ConfigurationError("max_workers must be at least 1 (or None)")

    @property
    def sharded(self) -> bool:
        """Whether this config requests multi-shard execution."""
        return self.num_shards > 1

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionConfig":
        """Build an execution config from a plain mapping (e.g. parsed JSON)."""
        allowed = {f.name for f in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown ExecutionConfig keys: {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        return cls(**dict(data))

    def to_dict(self) -> dict[str, Any]:
        """The execution config as a plain JSON-safe dict."""
        return asdict(self)


@dataclass(frozen=True)
class EngineConfig:
    """Everything needed to build and run a :class:`~repro.engine.TruthEngine`.

    Attributes
    ----------
    method:
        Registry key (or alias) of the solver, e.g. ``"ltm"``, ``"voting"``,
        ``"three_estimates"``.
    params:
        Keyword arguments passed to the method's factory (hyperparameters
        such as ``iterations``, ``seed``, ``priors``).
    threshold:
        Truth-probability threshold above which a fact is accepted into the
        merged records.
    retrain_every:
        Streaming only: re-fit the full model after every ``retrain_every``
        calls to :meth:`~repro.engine.TruthEngine.partial_fit`
        (0 disables periodic re-training).
    cumulative:
        Streaming only: when true (default) re-fits use all data seen so
        far; when false they use only the data since the previous re-fit,
        with learned quality carried over as priors (paper Section 5.4).
    export_dir:
        Streaming only: when set, :meth:`~repro.engine.TruthEngine.partial_fit`
        publishes a :class:`~repro.serving.TruthArtifact` under this
        directory (``step_00001``, ``step_00002``, ...) so a concurrently
        running :class:`~repro.serving.TruthService` can
        :meth:`~repro.serving.TruthService.refresh` onto the newest snapshot.
    export_every:
        Streaming only: publish an artifact after every ``export_every``
        :meth:`~repro.engine.TruthEngine.partial_fit` steps (default 1:
        every step).
    retain_history:
        Streaming only: when true (default) the engine accumulates every
        triple it has seen, so cumulative re-fits and
        :meth:`~repro.engine.TruthEngine.to_dataset` cover the full stream.
        Set false for out-of-core streams whose history lives elsewhere
        (e.g. a :class:`~repro.store.claims.ClaimStore` the engine reads
        through a :class:`~repro.io.store_source.StoreSource`): the engine
        then holds only the current re-train window, bounding its memory by
        batch size.  Incompatible with cumulative periodic re-training
        (``cumulative=True`` with ``retrain_every > 0``), which by
        definition needs the full history in reach.
    execution:
        The :class:`ExecutionConfig` governing sharded parallel execution
        (defaults to single-shard serial).  A plain dict is accepted and
        coerced, so configs keep loading from JSON.
    telemetry:
        The :class:`~repro.obs.config.TelemetryConfig` governing tracing of
        this engine's fits (defaults to disabled — see :mod:`repro.obs`).
        A plain dict is accepted and coerced, like ``execution``.
    """

    method: str = "ltm"
    params: dict[str, Any] = field(default_factory=dict)
    threshold: float = 0.5
    retrain_every: int = 5
    cumulative: bool = True
    export_dir: str | None = None
    export_every: int = 1
    retain_history: bool = True
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if isinstance(self.execution, Mapping):
            object.__setattr__(self, "execution", ExecutionConfig.from_dict(self.execution))
        elif not isinstance(self.execution, ExecutionConfig):
            raise ConfigurationError(
                "execution must be an ExecutionConfig (or a mapping of its fields)"
            )
        if isinstance(self.telemetry, Mapping):
            object.__setattr__(self, "telemetry", TelemetryConfig.from_dict(self.telemetry))
        elif not isinstance(self.telemetry, TelemetryConfig):
            raise ConfigurationError(
                "telemetry must be a TelemetryConfig (or a mapping of its fields)"
            )
        if not isinstance(self.method, str) or not self.method.strip():
            raise ConfigurationError("method must be a non-empty string")
        if not 0.0 <= self.threshold <= 1.0:
            raise ConfigurationError("threshold must lie in [0, 1]")
        if self.retrain_every < 0:
            raise ConfigurationError("retrain_every must be non-negative")
        if self.export_every < 1:
            raise ConfigurationError("export_every must be at least 1")
        if not self.retain_history and self.cumulative and self.retrain_every:
            raise ConfigurationError(
                "retain_history=False cannot support cumulative periodic "
                "re-training; set cumulative=False (windowed re-fits) or "
                "retrain_every=0 (no re-training)"
            )
        object.__setattr__(self, "params", dict(self.params))

    # -- construction ---------------------------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "EngineConfig":
        """Build a config from a plain mapping (e.g. parsed JSON).

        Unknown keys are rejected so that typos in config files fail loudly.
        """
        allowed = {f.name for f in fields(cls)}
        unknown = set(data) - allowed
        if unknown:
            raise ConfigurationError(
                f"unknown EngineConfig keys: {sorted(unknown)}; allowed: {sorted(allowed)}"
            )
        return cls(**dict(data))

    def to_dict(self) -> dict[str, Any]:
        """The config as a plain dict (inverse of :meth:`from_dict`)."""
        out = {f.name: getattr(self, f.name) for f in fields(self)}
        out["params"] = dict(self.params)
        out["execution"] = self.execution.to_dict()
        out["telemetry"] = self.telemetry.to_dict()
        return out

    def with_overrides(self, **overrides: Any) -> "EngineConfig":
        """A copy of the config with ``overrides`` applied."""
        if "params" in overrides and overrides["params"] is not None:
            overrides["params"] = dict(overrides["params"])
        return replace(self, **overrides)

    def with_params(self, **params: Any) -> "EngineConfig":
        """A copy with ``params`` merged into the hyperparameters."""
        merged = dict(self.params)
        merged.update(params)
        return replace(self, params=merged)

"""The :class:`TruthEngine` facade: one surface for batch, incremental and
streaming truth discovery.

Historically the library exposed three disjoint entry styles — to be wired
separately for every new scenario:

* ``TruthMethod.fit(claims)`` for batch solvers,
* an ``OnlineTruthFinder`` class for streams,
* an ``IntegrationPipeline`` class for end-to-end runs.

:class:`TruthEngine` unifies them behind a single sklearn-style lifecycle
(the two historical classes were removed in 1.4 after their deprecation
window):

* :meth:`TruthEngine.fit` — full batch fit on triples or a claim matrix;
* :meth:`TruthEngine.partial_fit` — integrate one arriving batch, scoring it
  with the closed-form LTMinc posterior (Equation 3) and periodically
  re-fitting the full model (paper Section 5.4);
* :meth:`TruthEngine.predict_proba` — score fitted facts, or new claims from
  the learned source quality without re-fitting;
* :meth:`TruthEngine.quality_report` — the learned per-source quality table;
* :meth:`TruthEngine.save` / :meth:`TruthEngine.load` / ``to_artifact`` —
  versioned on-disk serving snapshots consumed by
  :class:`~repro.serving.TruthService` (see :mod:`repro.serving`).

The solver itself is resolved through the
:class:`~repro.engine.registry.MethodRegistry` from a declarative
:class:`~repro.engine.config.EngineConfig`, so switching methods, backends or
hyperparameters is a configuration change, not a code change.

Scale-out is a configuration change too: an
:class:`~repro.engine.config.ExecutionConfig` with ``num_shards > 1`` makes
:meth:`TruthEngine.fit` (and streaming re-fits) hash-partition the corpus by
entity and run through :mod:`repro.parallel` — the
:class:`~repro.parallel.ShardPlanner` / :class:`~repro.parallel.ParallelExecutor`
/ :mod:`~repro.parallel.merge` pipeline — with score-parity guarantees per
method family (see the :mod:`repro.parallel` docs and the README's
"Scaling out" section).

The :func:`discover` one-liner covers the quickstart path::

    >>> import repro
    >>> result = repro.discover(triples, method="ltm", seed=0)  # doctest: +SKIP
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro import obs
from repro.core.base import SourceQualityTable, TruthMethod, TruthResult
from repro.core.gibbs import GibbsTrace
from repro.core.incremental import IncrementalLTM, prior_mean_predictor
from repro.core.priors import LTMPriors
from repro.data.claim_builder import build_claim_matrix
from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.raw import RawDatabase
from repro.store.table import Table
from repro.engine.config import EngineConfig
from repro.engine.registry import MethodRegistry, default_registry
from repro.exceptions import (
    ConfigurationError,
    EmptyDatasetError,
    ModelError,
    NotFittedError,
    StreamError,
)
from repro.streaming.stream import ClaimBatch
from repro.types import Triple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.io.base import DataSource
    from repro.pipeline.integrate import IntegrationResult
    from repro.serving.artifact import TruthArtifact

__all__ = ["OnlineStepReport", "TruthEngine", "discover"]


def _is_source_like(data: Any) -> bool:
    """Whether ``data`` should resolve through :func:`repro.io.as_source`.

    Catalog keys, file paths, relational tables, datasets and
    :class:`~repro.io.base.DataSource` objects qualify; plain triple
    iterables keep the direct (copy-free) path.  Tables and datasets must
    not fall through to the iterable path: iterating them yields dict rows
    / nothing triple-shaped, not triples.
    """
    if isinstance(data, (str, Path, Table, TruthDataset)):
        return True
    # Duck-typed so this hot check does not import repro.io on every call.
    return hasattr(data, "iter_triples") and hasattr(data, "iter_batches")


def _source_triples(data: Any) -> Iterable[Triple]:
    """Resolve a source-like input into its triple stream."""
    from repro.io.catalog import as_source

    return as_source(data).iter_triples()


@dataclass
class OnlineStepReport:
    """What happened when one batch was integrated incrementally.

    Attributes
    ----------
    batch_index:
        Sequence number of the integrated batch.
    num_triples, num_facts:
        Size of the batch.
    retrained:
        Whether a full model re-fit happened after this batch.
    fact_scores:
        Mapping of ``(entity, attribute)`` to the truth probability assigned
        by the incremental predictor.
    """

    batch_index: int
    num_triples: int
    num_facts: int
    retrained: bool
    fact_scores: dict[tuple[str, str], float] = field(default_factory=dict)

    def accepted_facts(self, threshold: float = 0.5) -> list[tuple[str, str]]:
        """Facts accepted as true at ``threshold``."""
        return [pair for pair, score in self.fact_scores.items() if score >= threshold]


class TruthEngine:
    """Unified batch / incremental / streaming truth discovery.

    Parameters
    ----------
    config:
        Declarative engine configuration (method key, hyperparameters,
        execution options).  Defaults to LTM with library defaults.
    solver:
        A prebuilt :class:`~repro.core.base.TruthMethod` instance that
        bypasses registry construction.  Used by the adapter entry points
        that accept method objects; config hyperparameters are ignored for
        solver construction when this is given.
    registry:
        The method registry to resolve ``config.method`` against (defaults to
        the shared :func:`~repro.engine.registry.default_registry`).
    **overrides:
        Shorthand config overrides, e.g. ``TruthEngine(method="voting",
        threshold=0.7)``.  Keys that are not
        :class:`~repro.engine.config.EngineConfig` fields become solver
        hyperparameters, so ``TruthEngine(method="ltm", iterations=100,
        seed=7)`` mirrors :func:`repro.discover`.

    Examples
    --------
    >>> from repro.engine import TruthEngine
    >>> engine = TruthEngine(method="voting")
    >>> engine.fit([
    ...     ("Harry Potter", "Daniel Radcliffe", "IMDB"),
    ...     ("Harry Potter", "Daniel Radcliffe", "Netflix"),
    ... ])
    TruthEngine(method='voting', fitted=True)
    >>> engine.predict_proba().shape
    (1,)
    """

    def __init__(
        self,
        config: EngineConfig | None = None,
        *,
        solver: TruthMethod | None = None,
        registry: MethodRegistry | None = None,
        **overrides: Any,
    ):
        config = config if config is not None else EngineConfig()
        hyper_params: dict[str, Any] = {}
        if overrides:
            fields = {f.name for f in dataclasses.fields(EngineConfig)}
            config_overrides = {k: v for k, v in overrides.items() if k in fields}
            hyper_params = {k: v for k, v in overrides.items() if k not in fields}
            if config_overrides:
                config = config.with_overrides(**config_overrides)
            if hyper_params:
                config = config.with_params(**hyper_params)
        self.config = config
        self.registry = registry if registry is not None else default_registry()
        if solver is not None and not isinstance(solver, TruthMethod):
            raise ConfigurationError(
                f"solver must be a TruthMethod instance, got {type(solver).__name__}"
            )
        self._solver = solver
        if config.execution.sharded:
            self._reject_sharded_solver_instance()
        if solver is None:
            # Fail fast on unknown methods; extension models are resolvable
            # but rejected at fit time with a pointed error.
            spec = self.registry.spec(config.method)
            rejected = sorted(k for k in hyper_params if not spec.accepts(k))
            if rejected:
                raise ConfigurationError(
                    f"method {spec.key!r} does not accept parameter(s) {rejected}; "
                    f"config fields are {sorted(f.name for f in dataclasses.fields(EngineConfig))}"
                )

        self._history = RawDatabase(strict=False)
        self._history_source: "DataSource | None" = None
        self._since_last_fit = RawDatabase(strict=False)
        self._batches_since_fit = 0
        self._steps_completed = 0
        self._quality: SourceQualityTable | None = None
        self._scores: dict[tuple[str, str], float] = {}
        self._result: TruthResult | None = None
        self._claims: ClaimMatrix | None = None
        self._shard_fits: list[Any] = []
        self.reports: list[OnlineStepReport] = []

    # -- state access ---------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        """Whether a batch fit (or streaming re-fit) has completed."""
        return self._result is not None

    @property
    def source_quality(self) -> SourceQualityTable | None:
        """The current source-quality estimate (``None`` before the first fit)."""
        return self._quality

    @property
    def fact_scores(self) -> dict[tuple[str, str], float]:
        """Latest truth probability of every fact integrated so far."""
        return dict(self._scores)

    @property
    def last_report(self) -> OnlineStepReport | None:
        """The step report of the most recent :meth:`partial_fit` call."""
        return self.reports[-1] if self.reports else None

    @property
    def last_trace(self) -> GibbsTrace | None:
        """The sampling diagnostics of the most recent full fit.

        The :class:`~repro.core.gibbs.GibbsTrace` the sampler produced —
        flips per sweep, retained sample count, checkpoint snapshots — or
        ``None`` when nothing was fitted yet or the method does not sample
        (voting, the closed-form baselines).  The mean per-sweep flip
        fraction also lands in telemetry (the ``repro_gibbs_flip_fraction``
        histogram and the ``fit`` span's ``flip_fraction`` attribute)."""
        if self._result is None:
            return None
        trace = self._result.extras.get("trace")
        return trace if isinstance(trace, GibbsTrace) else None

    def result(self) -> TruthResult:
        """The raw solver output of the last full fit.

        Raises
        ------
        NotFittedError
            If neither :meth:`fit` nor a streaming re-fit has happened yet.
        """
        if self._result is None:
            raise NotFittedError("TruthEngine has not been fitted yet")
        return self._result

    def claims(self) -> ClaimMatrix:
        """The claim matrix of the last full fit."""
        if self._claims is None:
            raise NotFittedError("TruthEngine has not been fitted yet")
        return self._claims

    def quality_report(self) -> SourceQualityTable:
        """The learned per-source quality table (paper Table 8).

        Raises
        ------
        NotFittedError
            If no quality has been learned — either nothing was fitted yet or
            the configured method does not estimate source quality.
        """
        if self._quality is None:
            raise NotFittedError(
                "no source quality available: fit a quality-estimating method "
                "(e.g. 'ltm') first"
            )
        return self._quality

    def merged_records(self, threshold: float | None = None) -> dict[str, list[str]]:
        """The integrated output: entity -> accepted attribute values."""
        threshold = self.config.threshold if threshold is None else threshold
        merged: dict[str, list[str]] = {}
        for (entity, attribute), score in self._scores.items():
            if score >= threshold:
                merged.setdefault(entity, []).append(str(attribute))
        return merged

    def rejected_records(self, threshold: float | None = None) -> dict[str, list[str]]:
        """Entity -> asserted attribute values rejected as false."""
        threshold = self.config.threshold if threshold is None else threshold
        rejected: dict[str, list[str]] = {}
        for (entity, attribute), score in self._scores.items():
            if score < threshold:
                rejected.setdefault(entity, []).append(str(attribute))
        return rejected

    # -- solver construction --------------------------------------------------------
    def make_solver(self, priors: LTMPriors | None = None) -> TruthMethod:
        """Build the configured solver (or return the injected instance).

        Parameters
        ----------
        priors:
            Optional priors override, used by streaming re-fits to carry
            learned quality over (only applied when the method accepts a
            ``priors`` argument).
        """
        if self._solver is not None:
            return self._solver
        spec = self.registry.spec(self.config.method)
        if not spec.claim_based:
            raise ConfigurationError(
                f"method {spec.key!r} does not consume claim matrices and cannot "
                f"be driven through TruthEngine; instantiate "
                f"{spec.factory.__name__} directly"
            )
        params = dict(self.config.params)
        if priors is not None and spec.accepts("priors"):
            params["priors"] = priors
        if spec.requires_quality and "source_quality" not in params:
            if self._quality is None:
                raise ConfigurationError(
                    f"method {spec.key!r} needs previously learned source quality; "
                    f"pass source_quality in params or fit a quality-estimating "
                    f"method first"
                )
            params["source_quality"] = self._quality
        return spec.factory(**params)

    def _streaming_priors(self) -> LTMPriors:
        """The priors governing incremental scoring and quality carry-over."""
        priors = self.config.params.get("priors")
        return priors if priors is not None else LTMPriors()

    def _incremental_predictor(self) -> IncrementalLTM:
        """The closed-form LTMinc predictor over the learned quality table.

        Sources that were unseen at fit time fall back to the *prior-mean*
        quality (sensitivity ``priors.sensitivity.mean``, specificity
        ``1 - priors.false_positive.mean``) — the documented cold-start
        behaviour shared with :meth:`repro.serving.TruthService.score` — so
        mixed seen/unseen batches score instead of failing.
        """
        assert self._quality is not None  # callers check before building
        return prior_mean_predictor(self._quality, self._streaming_priors())

    # -- batch lifecycle ------------------------------------------------------------
    def ingest(
        self, triples: "Iterable[Triple | tuple] | DataSource | str"
    ) -> int:
        """Add ``triples`` to the engine's history without fitting.

        Accepts raw triples, any :class:`~repro.io.base.DataSource`, or a
        dataset-catalog key / file path.  Returns the number of genuinely
        new triples added (duplicates are dropped).  Call :meth:`fit`
        afterwards to learn from the accumulated history.
        """
        if _is_source_like(triples):
            triples = _source_triples(triples)
        return self._history.extend(triples)

    def fit(
        self,
        data: "Iterable[Triple | tuple] | RawDatabase | ClaimMatrix | DataSource | str | None" = None,
    ) -> "TruthEngine":
        """Fit the configured method on ``data`` (or the ingested history).

        Giving ``data`` is a *fresh* fit, sklearn-style: all previously
        accumulated state (history, scores, learned quality, step reports)
        is discarded first, so ``fit(a); fit(b)`` scores ``b`` alone.  Pass
        ``None`` to fit on everything previously accumulated via
        :meth:`ingest` / :meth:`partial_fit` instead (the streaming
        bootstrap / re-fit path, which keeps the history).

        Parameters
        ----------
        data:
            Raw triples, a :class:`~repro.data.raw.RawDatabase`, any
            :class:`~repro.io.base.DataSource`, a dataset-catalog key or
            file path (resolved through :func:`repro.io.as_source`), a
            prebuilt :class:`~repro.data.dataset.ClaimMatrix`, or ``None``.
            Note that a prebuilt matrix cannot be decomposed back into raw
            triples, so it does not seed the streaming history: follow-up
            :meth:`partial_fit` re-fits will only see the streamed batches —
            and it cannot be entity-partitioned, so sharded execution
            (``config.execution.num_shards > 1``) requires triple / source
            input.

            A *streaming* source (one whose
            :attr:`~repro.io.base.DataSource.streams` is true — file sources,
            the store-backed :class:`~repro.io.store_source.StoreSource`) is
            **not copied into the engine**: the source itself becomes the
            history, the claim matrix is built from one streaming pass, and
            sharded execution plans store-backed sources by entity-key
            ranges (:meth:`~repro.parallel.ShardPlanner.plan_keys`) so the
            corpus never materialises engine-side.

        Returns
        -------
        TruthEngine
            ``self``, sklearn-style, so calls chain.
        """
        tracer = obs.tracer_for(self.config.telemetry)
        with tracer.span(
            "fit",
            method=self.config.method,
            backend=self.config.execution.backend,
            num_shards=self.config.execution.num_shards,
        ) as span:
            return self._fit(data, span)

    def _fit(self, data: Any, span: Any) -> "TruthEngine":
        """The :meth:`fit` body, reporting into the ambient ``fit`` span."""
        source: "DataSource | None" = None
        if _is_source_like(data):
            from repro.io.catalog import as_source

            resolved = as_source(data)
            if getattr(resolved, "streams", False):
                source = resolved
            else:
                data = resolved.iter_triples()
        corpus: Any
        if source is not None:
            # Out-of-core fit: the source *is* the history — no engine-side
            # copy of the triples, only the (columnar) claim matrix.
            self._reset_state()
            self._history_source = source
            if next(iter(source.iter_triples()), None) is None:
                raise EmptyDatasetError("the data source contains no triples")
            claims = source.to_claim_matrix()
            corpus = source
        elif isinstance(data, ClaimMatrix):
            self._reset_state()
            claims = data
            corpus = None
        else:
            if data is None:
                corpus = self._combined_history()
            else:
                self._reset_state()
                self._history.extend(data)
                corpus = self._history
            corpus.require_non_empty()
            claims = build_claim_matrix(corpus, strict=False)

        started = time.perf_counter()
        if self.config.execution.sharded:
            self._reject_sharded_solver_instance()
            if corpus is None:
                raise ConfigurationError(
                    "sharded execution (num_shards > 1) partitions raw triples "
                    "by entity and cannot decompose a prebuilt ClaimMatrix; "
                    "pass triples or a data source instead"
                )
            result = self._parallel_fit(claims, corpus)
        else:
            result = self.make_solver().fit(claims)
        self._absorb_fit(claims, result)
        self._record_fit_telemetry(
            result, claims, span, mode="batch", duration=time.perf_counter() - started
        )
        return self

    def _record_fit_telemetry(
        self,
        result: TruthResult,
        claims: ClaimMatrix,
        span: Any,
        *,
        mode: str,
        duration: float,
        path: str = "fit",
    ) -> None:
        """Record one completed full fit into the global metrics and ``span``.

        ``mode`` distinguishes user-initiated batch fits from the streaming
        loop's periodic re-fits in ``repro_engine_fits_total``; ``path``
        labels ``repro_engine_triples_ingested_total`` with how the triples
        arrived.  When the solver produced a
        :class:`~repro.core.gibbs.GibbsTrace`, the iteration budget and the
        mean per-sweep flip fraction land in their histograms and on the
        span.
        """
        execution = self.config.execution
        metrics = obs.engine_metrics()
        metrics.fit_seconds.observe(
            duration, method=self.config.method, backend=execution.backend
        )
        metrics.fits_total.inc(method=self.config.method, mode=mode)
        metrics.triples_ingested.inc(claims.num_claims, path=path)
        span.set(
            triples=claims.num_claims,
            facts=claims.num_facts,
            entities=claims.num_entities,
            sources=claims.num_sources,
        )
        trace = result.extras.get("trace")
        if isinstance(trace, GibbsTrace) and trace.total_iterations:
            fractions = trace.flip_fraction(claims.num_facts)
            flip_fraction = round(sum(fractions) / len(fractions), 6) if fractions else 0.0
            metrics.fit_iterations.observe(trace.total_iterations, method=self.config.method)
            metrics.gibbs_flip_fraction.observe(flip_fraction)
            span.set(
                iterations=trace.total_iterations,
                samples=trace.samples_collected,
                flip_fraction=flip_fraction,
                kernel=trace.kernel,
            )
            if trace.block_count:
                span.set(block_count=trace.block_count)

    def _combined_history(self) -> RawDatabase:
        """Everything seen so far: the fitted source (if any) plus batches.

        When the engine was fitted on a streaming source, cumulative
        operations need the source's triples *and* those streamed since; the
        combination is materialised only here, where a full-corpus fit (which
        materialises a claim matrix anyway) explicitly asked for it.
        """
        if self._history_source is None:
            return self._history
        combined = RawDatabase(strict=False)
        combined.extend(self._history_source.iter_triples())
        combined.extend(self._history)
        return combined

    def _reject_sharded_solver_instance(self) -> None:
        """Sharding never silently degrades: a prebuilt solver cannot shard.

        The constructor already rejects the combination; this guards the
        supported pattern of reassigning ``engine.config`` mid-lifecycle.
        """
        if self._solver is not None:
            raise ConfigurationError(
                "sharded execution (num_shards > 1) resolves the solver through "
                "the registry on every shard and cannot ship a prebuilt solver "
                "instance; configure the method by key instead"
            )

    def _parallel_fit(
        self,
        claims: ClaimMatrix,
        corpus: "RawDatabase | DataSource",
        priors_override: LTMPriors | None = None,
    ) -> TruthResult:
        """Fit through :mod:`repro.parallel` and realign onto ``claims``.

        The corpus is hash-partitioned by entity
        (:class:`~repro.parallel.ShardPlanner`), every shard is fitted on
        the configured backend (:class:`~repro.parallel.ParallelExecutor`)
        and the per-shard results are reduced by the method's
        score-parity merge strategy (:mod:`repro.parallel.merge`).  The
        merged scores are re-indexed onto the full claim matrix's fact ids,
        so downstream state (``predict_proba``, artifacts, serving) is
        laid out exactly as a single-shard fit.

        A corpus advertising indexed entity ranges (a store-backed
        :class:`~repro.io.store_source.StoreSource`) is planned by key
        ranges (:meth:`~repro.parallel.ShardPlanner.plan_keys`): the planner
        streams entity keys off the store's index, and each worker pulls its
        own entities' triples straight from the store — score-identical to
        the eager plan, without the corpus ever materialising here.
        """
        from repro.parallel import ParallelExecutor, ShardPlanner

        execution = self.config.execution
        spec = self.registry.spec(self.config.method)
        if not spec.claim_based:
            raise ConfigurationError(
                f"method {spec.key!r} does not consume claim matrices and cannot "
                f"be driven through TruthEngine; instantiate "
                f"{spec.factory.__name__} directly"
            )
        params = dict(self.config.params)
        if priors_override is not None and spec.accepts("priors"):
            params["priors"] = priors_override
        if spec.requires_quality and "source_quality" not in params:
            if self._quality is None:
                raise ConfigurationError(
                    f"method {spec.key!r} needs previously learned source quality; "
                    f"pass source_quality in params or fit a quality-estimating "
                    f"method first"
                )
            params["source_quality"] = self._quality
        if spec.accepts("priors") and params.get("priors") is None:
            # Resolve the method's default priors once, on the full corpus, so
            # every shard and the count merge share a single prior instead of
            # each shard adapting to its own slice.  LTMpos defaults to the
            # fact-scaled specificity prior (its positive-only evidence cannot
            # rule out the all-flipped solution); LTM to the data-adaptive one.
            if spec.shard_strategy == "counts":
                params["priors"] = LTMPriors.adaptive(claims)
            elif spec.shard_strategy == "counts_positive":
                params["priors"] = LTMPriors.scaled_to(claims.num_facts)

        start = time.perf_counter()
        tracer = obs.get_tracer()
        planner = ShardPlanner(execution.num_shards, seed=execution.partition_seed)
        with tracer.span(
            "shard.plan",
            num_shards=execution.num_shards,
            partition_seed=execution.partition_seed,
        ) as plan_span:
            if getattr(corpus, "supports_entity_ranges", False):
                plan = planner.plan_keys(corpus)
                plan_span.set(strategy="key_ranges")
            else:
                plan = planner.plan(corpus)
                plan_span.set(strategy="eager")
        executor = ParallelExecutor(execution.backend, max_workers=execution.max_workers)
        merged = executor.fit(
            plan,
            self.config.method,
            params,
            quality_sync_rounds=execution.quality_sync_rounds,
            registry=self.registry,
        )

        index = {(fact.entity, fact.attribute): fact.fact_id for fact in claims.facts}
        scores = np.full(claims.num_facts, np.nan)
        for entity, attribute, score in zip(
            merged.fact_entities, merged.fact_attributes, merged.scores
        ):
            scores[index[(entity, attribute)]] = score
        if np.isnan(scores).any():
            raise ModelError(
                "sharded merge did not cover every fact of the claim matrix; "
                "this indicates a partitioning bug"
            )
        self._shard_fits = list(merged.shards)
        # The params actually dispatched (resolved priors / carried quality),
        # recorded so per-shard artifacts are self-contained reproducible.
        self._shard_params = dict(params)
        return TruthResult(
            method=spec.display_name,
            scores=scores,
            source_quality=merged.quality,
            runtime_seconds=time.perf_counter() - start,
            extras={
                "execution": execution.to_dict(),
                "shards": merged.shard_summaries(),
                **merged.extras,
            },
        )

    def shard_artifacts(self, name: str | None = None) -> "list[TruthArtifact]":
        """Per-shard serving artifacts of the last sharded fit.

        Each artifact snapshots one shard's facts, scores and quality (with
        the shard's expected confusion counts recorded in
        ``extras["shard"]``), so the set can be published independently and
        later recombined with :func:`repro.parallel.merge_artifacts` into a
        single artifact servable by :class:`~repro.serving.TruthService`.

        Raises
        ------
        NotFittedError
            If no sharded fit has run (``execution.num_shards`` was 1, or
            nothing was fitted yet).
        """
        from repro.parallel.merge import shard_artifact

        if not self._shard_fits:
            raise NotFittedError(
                "no sharded fit has run; configure execution.num_shards > 1 "
                "and call fit first"
            )
        base = name if name is not None else self.config.method
        # Record the dispatched params (resolved adaptive priors, carried
        # quality) so a shard artifact fully describes how its shard was fit
        # and merge_artifacts recombines under the same priors.
        config = self.config.with_params(**getattr(self, "_shard_params", {}))
        return [
            shard_artifact(fit, config, name=f"{base}-shard-{fit.index:02d}")
            for fit in self._shard_fits
        ]

    def _reset_state(self) -> None:
        """Drop all accumulated state ahead of a fresh fit."""
        self._history = RawDatabase(strict=False)
        self._history_source = None
        self._since_last_fit = RawDatabase(strict=False)
        self._batches_since_fit = 0
        self._steps_completed = 0
        self._quality = None
        self._scores = {}
        self._result = None
        self._claims = None
        self._shard_fits = []
        self.reports = []

    def _absorb_fit(self, claims: ClaimMatrix, result: TruthResult) -> None:
        """Record the outcome of a full fit and reset the streaming window."""
        self._result = result
        self._claims = claims
        if result.source_quality is not None:
            self._quality = result.source_quality
        for fact in claims.facts:
            self._scores[(fact.entity, str(fact.attribute))] = float(result.scores[fact.fact_id])
        self._since_last_fit = RawDatabase(strict=False)
        self._batches_since_fit = 0

    # -- streaming lifecycle --------------------------------------------------------
    def partial_fit(
        self, data: "ClaimBatch | Iterable[Triple | tuple] | DataSource | str"
    ) -> "TruthEngine":
        """Integrate one arriving batch (paper Section 5.4).

        The batch's facts are scored with the closed-form LTMinc posterior
        under the current source-quality estimate (falling back to the
        per-fact voting proportion before any quality is learned), the batch
        is accumulated into the history, and every
        ``config.retrain_every`` batches the full model is re-fitted — on the
        cumulative data, or (``config.cumulative=False``) only on the data
        since the last re-fit with learned quality carried over as priors.

        ``data`` may be a :class:`~repro.streaming.stream.ClaimBatch`, raw
        triples, any :class:`~repro.io.base.DataSource`, or a
        dataset-catalog key / file path; a source's triples are integrated
        as one batch.  For chunked streaming, loop over
        ``source.iter_batches(batch_size)`` and ``partial_fit`` each batch —
        the full claim table is never materialised.  With
        ``config.retain_history=False`` the engine additionally drops each
        batch's triples once scored (keeping only the current re-train
        window, if any), so a stream backed by a
        :class:`~repro.store.claims.ClaimStore` runs in memory bounded by
        batch size.

        The step outcome is appended to :attr:`reports` and available as
        :attr:`last_report`.
        """
        tracer = obs.tracer_for(self.config.telemetry)
        with tracer.span("partial_fit", method=self.config.method) as span:
            return self._partial_fit(data, span)

    def _partial_fit(self, data: Any, span: Any) -> "TruthEngine":
        """The :meth:`partial_fit` body, reporting into the ambient span."""
        if _is_source_like(data):
            data = _source_triples(data)
        if isinstance(data, ClaimBatch):
            batch = data
        else:
            batch = ClaimBatch(index=len(self.reports), triples=tuple(
                t if isinstance(t, Triple) else Triple(*t) for t in data
            ))
        if len(batch) == 0:
            raise StreamError("cannot integrate an empty batch")
        batch_matrix = build_claim_matrix(batch.triples, strict=False)

        if self._quality is not None:
            scores = self._incremental_predictor().fit(batch_matrix).scores
        else:
            # No quality learned yet: fall back to the per-fact voting proportion.
            positives = batch_matrix.positive_counts_per_fact().astype(float)
            totals = np.maximum(batch_matrix.claim_counts_per_fact().astype(float), 1.0)
            scores = positives / totals

        fact_scores = {
            (fact.entity, str(fact.attribute)): float(scores[fact.fact_id])
            for fact in batch_matrix.facts
        }
        self._scores.update(fact_scores)

        # retain_history=False bounds the engine's memory: the stream's
        # history lives in its backing store, not here.  The re-train window
        # is still kept when periodic re-fits need it (retrain_every > 0).
        if self.config.retain_history:
            self._history.extend(batch.triples)
        if self.config.retain_history or self.config.retrain_every:
            self._since_last_fit.extend(batch.triples)
        self._batches_since_fit += 1

        obs.engine_metrics().triples_ingested.inc(len(batch), path="partial_fit")
        span.set(batch=batch.index, triples=len(batch), facts=batch_matrix.num_facts)

        retrained = False
        if self.config.retrain_every and self._batches_since_fit >= self.config.retrain_every:
            self._streaming_refit()
            retrained = True
        span.set(retrained=retrained)

        self.reports.append(
            OnlineStepReport(
                batch_index=batch.index,
                num_triples=len(batch),
                num_facts=batch_matrix.num_facts,
                retrained=retrained,
                fact_scores=fact_scores,
            )
        )
        self._steps_completed += 1
        if (
            self.config.export_dir is not None
            and self._steps_completed % self.config.export_every == 0
        ):
            self._export_step_artifact()
        return self

    def _export_step_artifact(self) -> Path:
        """Publish the current serving state under ``config.export_dir``.

        Each export lands in its own ``step_<n>`` directory, so a
        :class:`~repro.serving.TruthService` can
        :meth:`~repro.serving.TruthService.refresh` onto the newest complete
        snapshot while the stream keeps integrating.  ``<n>`` counts
        lifetime integrated steps — it survives a save/load cycle (via the
        artifact's ``steps_integrated`` extra), so an engine restored from a
        step artifact keeps numbering forward instead of overwriting
        earlier steps.
        """
        step = self._steps_completed
        target = Path(self.config.export_dir) / f"step_{step:05d}"
        report = self.reports[-1]
        artifact = self.to_artifact(
            name=f"{self.config.method}-step-{step:05d}",
            extras={"step": step, "retrained": report.retrained},
        )
        return artifact.save(target)

    def _streaming_refit(self) -> None:
        """Periodic full re-fit of the streaming loop (paper Section 5.4)."""
        priors_override: LTMPriors | None = None
        if self.config.cumulative:
            corpus = self._combined_history()
        else:
            corpus = self._since_last_fit if len(self._since_last_fit) else self._history
            if self._quality is not None:
                # Carry learned quality over as priors (Section 5.4), as soft
                # pseudo-counts with a fixed strength of 100 virtual claims
                # per source.
                base = self._streaming_priors()
                counts = np.ones((len(self._quality.source_names), 2, 2))
                strength = 100.0
                for i, _ in enumerate(self._quality.source_names):
                    sens = float(self._quality.sensitivity[i])
                    spec = float(self._quality.specificity[i])
                    counts[i, 1, 1] = sens * strength
                    counts[i, 1, 0] = (1 - sens) * strength
                    counts[i, 0, 0] = spec * strength
                    counts[i, 0, 1] = (1 - spec) * strength
                priors_override = base.with_learned_quality(
                    self._quality.source_names, counts
                )

        matrix = build_claim_matrix(corpus, strict=False)
        tracer = obs.get_tracer()
        started = time.perf_counter()
        with tracer.span(
            "fit",
            method=self.config.method,
            backend=self.config.execution.backend,
            num_shards=self.config.execution.num_shards,
            mode="refit",
            cumulative=self.config.cumulative,
        ) as span:
            if self.config.execution.sharded:
                self._reject_sharded_solver_instance()
                result = self._parallel_fit(matrix, corpus, priors_override=priors_override)
            else:
                result = self.make_solver(priors=priors_override).fit(matrix)
            self._record_fit_telemetry(
                result,
                matrix,
                span,
                mode="refit",
                duration=time.perf_counter() - started,
                path="refit",
            )
        self._result = result
        self._claims = matrix
        if result.source_quality is not None:
            self._quality = result.source_quality
        # Refresh stored scores for all facts covered by the re-fit.
        for fact in matrix.facts:
            self._scores[(fact.entity, str(fact.attribute))] = float(result.scores[fact.fact_id])
        self._since_last_fit = RawDatabase(strict=False)
        self._batches_since_fit = 0

    # -- artifacts (the repro.serving seam) -----------------------------------------
    def to_artifact(
        self, name: str | None = None, extras: dict[str, Any] | None = None
    ) -> "TruthArtifact":
        """Snapshot the engine's serving state as a versioned artifact.

        The artifact carries the engine config (method key, hyperparameters,
        RNG seed), the learned source-quality table (when the method
        estimates one) and the truth posterior of every fact integrated so
        far — everything :class:`~repro.serving.TruthService` needs to
        answer queries and score unseen claims without re-running inference.
        It does *not* carry the raw triples: a loaded engine serves and
        ``partial_fit``\\ s, but a cumulative re-fit only sees batches
        streamed after the load.

        Raises
        ------
        NotFittedError
            If nothing has been fitted or integrated yet.
        """
        from repro.serving.artifact import TruthArtifact

        if not self._scores:
            raise NotFittedError("cannot export an artifact before fit/partial_fit")
        pairs = list(self._scores.items())
        return TruthArtifact(
            config=self.config,
            fact_entity=np.array([entity for (entity, _), _ in pairs], dtype=str),
            fact_attribute=np.array([attr for (_, attr), _ in pairs], dtype=str),
            fact_score=np.array([score for _, score in pairs], dtype=float),
            quality=self._quality,
            name=name if name is not None else self.config.method,
            extras={"steps_integrated": self._steps_completed, **dict(extras or {})},
        )

    def save(self, path: "str | Path") -> Path:
        """Write the engine's serving state to an artifact directory.

        ``TruthEngine.load(path)`` restores an engine whose
        :meth:`predict_proba` is score-identical; the directory is also
        directly consumable by :class:`~repro.serving.TruthService` and the
        ``repro-truth query`` CLI.
        """
        return self.to_artifact().save(path)

    @classmethod
    def from_artifact(
        cls, artifact: "TruthArtifact", registry: MethodRegistry | None = None
    ) -> "TruthEngine":
        """Rebuild a serving-ready engine from an artifact (no refitting)."""
        engine = cls(artifact.config, registry=registry)
        engine._quality = artifact.quality
        engine._scores = artifact.fact_scores()
        engine._steps_completed = int(artifact.extras.get("steps_integrated", 0))
        engine._result = TruthResult(
            method=engine.registry.spec(artifact.config.method).display_name,
            scores=artifact.fact_score.astype(float, copy=True),
            source_quality=artifact.quality,
            extras={"artifact": artifact.name, "repro_version": artifact.repro_version},
        )
        return engine

    @classmethod
    def load(
        cls, path: "str | Path", registry: MethodRegistry | None = None
    ) -> "TruthEngine":
        """Restore an engine from an artifact directory written by :meth:`save`.

        The loaded engine is immediately serving-capable: ``predict_proba()``
        returns the saved scores, ``predict_proba(new_triples)`` scores new
        claims under the stored quality table, and ``partial_fit`` continues
        the stream.
        """
        from repro.serving.artifact import TruthArtifact

        return cls.from_artifact(TruthArtifact.load(path), registry=registry)

    # -- prediction -----------------------------------------------------------------
    def predict_proba(
        self,
        data: "Iterable[Triple | tuple] | RawDatabase | ClaimMatrix | DataSource | str | None" = None,
    ) -> np.ndarray:
        """Per-fact truth probabilities.

        With no argument, returns the scores of the last full fit.  Given new
        triples, a data source / catalog key, or a claim matrix, scores them
        with the closed-form LTMinc posterior under the learned source
        quality — serving-style prediction with no sampling.

        Cold start: claims from sources that were unseen at fit time are
        scored under the prior-mean quality (sensitivity
        ``priors.sensitivity.mean``, specificity
        ``1 - priors.false_positive.mean``) instead of failing, so mixed
        seen/unseen batches work.  :meth:`repro.serving.TruthService.score`
        shares this behaviour.
        """
        if data is None:
            return self.result().scores
        if _is_source_like(data):
            data = _source_triples(data)
        claims = data if isinstance(data, ClaimMatrix) else build_claim_matrix(data, strict=False)
        if self._quality is None:
            raise NotFittedError(
                "predict_proba on new data needs learned source quality; "
                "fit a quality-estimating method (e.g. 'ltm') first"
            )
        return self._incremental_predictor().fit(claims).scores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        method = type(self._solver).__name__ if self._solver is not None else self.config.method
        return f"TruthEngine(method={method!r}, fitted={self.is_fitted})"


def discover(
    triples: "Iterable[Triple | tuple] | RawDatabase | DataSource | str",
    method: str = "ltm",
    *,
    threshold: float = 0.5,
    keep_workspace: bool = False,
    registry: MethodRegistry | None = None,
    **params: Any,
) -> "IntegrationResult":
    """One-liner truth discovery: raw triples in, merged records out.

    Resolves ``method`` through the shared
    :class:`~repro.engine.registry.MethodRegistry`, builds it with ``params``
    (hyperparameters such as ``iterations`` and ``seed``) and runs the full
    integration flow.  ``triples`` may also be any
    :class:`~repro.io.base.DataSource` or a dataset-catalog key / file path
    (resolved through :func:`repro.io.as_source`), e.g.
    ``repro.discover("books", method="ltm")``.  The produced scores are
    identical to fitting the underlying solver directly on
    ``build_claim_matrix(triples)``.

    Examples
    --------
    >>> import repro
    >>> result = repro.discover(
    ...     [
    ...         ("Harry Potter", "Daniel Radcliffe", "IMDB"),
    ...         ("Harry Potter", "Daniel Radcliffe", "Netflix"),
    ...         ("Harry Potter", "Johnny Depp", "BadSource.com"),
    ...     ],
    ...     method="voting",
    ... )
    >>> result.accepted_values("Harry Potter")
    ['Daniel Radcliffe']
    """
    from repro.pipeline.integrate import run_integration

    resolved = registry if registry is not None else default_registry()
    solver = resolved.create(method, **params)
    return run_integration(
        triples, method=solver, threshold=threshold, keep_workspace=keep_workspace
    )

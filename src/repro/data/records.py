"""Value objects of the truth-finding data model: facts, claims, sources."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import AttributeValue, EntityKey, FactId, Observation, SourceId, SourceName

__all__ = ["Fact", "Claim", "SourceRecord"]


@dataclass(frozen=True, slots=True)
class Fact:
    """A distinct ``(entity, attribute)`` pair (Definition 2 of the paper).

    Attributes
    ----------
    fact_id:
        Dense integer primary key assigned by the claim builder.
    entity:
        Entity key the fact is about.
    attribute:
        Attribute value the fact asserts for the entity.
    """

    fact_id: FactId
    entity: EntityKey
    attribute: AttributeValue

    @property
    def pair(self) -> tuple[EntityKey, AttributeValue]:
        """The ``(entity, attribute)`` pair identifying this fact."""
        return (self.entity, self.attribute)


@dataclass(frozen=True, slots=True)
class Claim:
    """One claim ``(fact, source, observation)`` (Definition 3 of the paper).

    ``observation`` is ``True`` for a positive claim (the source asserted the
    fact) and ``False`` for a generated negative claim (the source asserted
    the fact's entity but not this fact).
    """

    fact_id: FactId
    source_id: SourceId
    observation: Observation


@dataclass(slots=True)
class SourceRecord:
    """Metadata and running statistics for a single data source.

    Attributes
    ----------
    source_id:
        Dense integer id assigned by the claim builder.
    name:
        Human-readable source name from the raw database.
    num_positive_claims:
        Number of positive claims the source makes.
    num_negative_claims:
        Number of generated negative claims for the source.
    num_entities:
        Number of distinct entities the source asserts anything about.
    """

    source_id: SourceId
    name: SourceName
    num_positive_claims: int = 0
    num_negative_claims: int = 0
    num_entities: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def num_claims(self) -> int:
        """Total number of claims (positive + negative) for this source."""
        return self.num_positive_claims + self.num_negative_claims

"""The truth-finding data model (paper Section 2).

The input of the truth-finding problem is a *raw database* of
``(entity, attribute, source)`` triples (Definition 1).  From it the library
derives:

* the **fact table** — distinct ``(entity, attribute)`` pairs with dense
  integer ids (Definition 2);
* the **claim table** — for every fact, a positive claim from each source
  that asserted it and a negative claim from each source that asserted the
  same entity but not this fact (Definition 3);
* the **truth table** — one Boolean truth label per fact, the object of
  inference (Definition 4).

The central runtime object is :class:`~repro.data.dataset.ClaimMatrix`, a
flat numpy encoding of the claim table grouped by fact, which every solver in
:mod:`repro.core` and :mod:`repro.baselines` consumes.
"""

from repro.data.records import Fact, Claim, SourceRecord
from repro.data.raw import RawDatabase
from repro.data.claim_builder import ClaimTableBuilder, build_claim_matrix
from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.loaders import (
    load_triples_csv,
    save_triples_csv,
    load_dataset_json,
    save_dataset_json,
    load_labels_csv,
    save_labels_csv,
)

__all__ = [
    "Fact",
    "Claim",
    "SourceRecord",
    "RawDatabase",
    "ClaimTableBuilder",
    "build_claim_matrix",
    "ClaimMatrix",
    "TruthDataset",
    "load_triples_csv",
    "save_triples_csv",
    "load_dataset_json",
    "save_dataset_json",
    "load_labels_csv",
    "save_labels_csv",
]

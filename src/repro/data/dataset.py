"""Runtime dataset containers consumed by every truth-finding method.

:class:`ClaimMatrix` is the flat numpy encoding of the claim table
(Definition 3): claims are stored in arrays sorted by fact, with a CSR-style
pointer array so that the claims of fact *f* occupy the contiguous slice
``fact_ptr[f]:fact_ptr[f+1]``.  This is what makes the collapsed Gibbs sweep
of Algorithm 1 touch every claim exactly once per iteration, giving the
O(|C|) complexity the paper reports.

:class:`TruthDataset` bundles a claim matrix with ground-truth labels (a
labelled evaluation subset, as in the paper's experiments, or full labels for
synthetic data) and dataset metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.data.records import Fact, SourceRecord
from repro.exceptions import DataModelError, EmptyDatasetError, UnknownFactError
from repro.types import EntityKey, FactId, SourceId

__all__ = ["ClaimMatrix", "TruthDataset"]


class ClaimMatrix:
    """Flat, fact-grouped encoding of the claim table.

    Parameters
    ----------
    facts:
        Sequence of :class:`~repro.data.records.Fact` with dense ids
        ``0..F-1`` in order.
    source_names:
        Sequence of source names; position is the dense source id.
    claim_fact, claim_source, claim_obs:
        Parallel arrays describing each claim: the fact id, source id and
        Boolean observation.  They need not be pre-sorted; the constructor
        sorts them by fact id.
    """

    def __init__(
        self,
        facts: Sequence[Fact],
        source_names: Sequence[str],
        claim_fact: np.ndarray | Sequence[int],
        claim_source: np.ndarray | Sequence[int],
        claim_obs: np.ndarray | Sequence[bool],
    ):
        self.facts: tuple[Fact, ...] = tuple(facts)
        self.source_names: tuple[str, ...] = tuple(source_names)

        claim_fact = np.asarray(claim_fact, dtype=np.int64)
        claim_source = np.asarray(claim_source, dtype=np.int64)
        claim_obs = np.asarray(claim_obs, dtype=np.int8)
        if not (claim_fact.shape == claim_source.shape == claim_obs.shape):
            raise DataModelError("claim arrays must have identical shapes")
        if claim_fact.ndim != 1:
            raise DataModelError("claim arrays must be one-dimensional")

        self._validate_ids(claim_fact, claim_source)

        if claim_fact.size and np.any(claim_fact[1:] < claim_fact[:-1]):
            order = np.argsort(claim_fact, kind="stable")
            self.claim_fact = claim_fact[order]
            self.claim_source = claim_source[order]
            self.claim_obs = claim_obs[order]
        else:
            # Already fact-sorted (e.g. the bulk ingest path): skip the
            # O(n log n) re-sort, but still copy — the matrix must own its
            # arrays, not alias buffers the caller may mutate.
            self.claim_fact = claim_fact.copy()
            self.claim_source = claim_source.copy()
            self.claim_obs = claim_obs.copy()

        # CSR pointer over facts: claims of fact f are fact_ptr[f]:fact_ptr[f+1].
        counts = np.bincount(self.claim_fact, minlength=self.num_facts)
        self.fact_ptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)

        self._entity_to_facts: dict[EntityKey, list[FactId]] = {}
        for fact in self.facts:
            self._entity_to_facts.setdefault(fact.entity, []).append(fact.fact_id)

    # -- validation ---------------------------------------------------------------
    def _validate_ids(self, claim_fact: np.ndarray, claim_source: np.ndarray) -> None:
        for position, fact in enumerate(self.facts):
            if fact.fact_id != position:
                raise DataModelError(
                    f"facts must be densely indexed in order; fact at position {position} has id {fact.fact_id}"
                )
        if claim_fact.size:
            if claim_fact.min() < 0 or claim_fact.max() >= len(self.facts):
                raise UnknownFactError("claim references a fact id outside the fact table")
            if claim_source.min() < 0 or claim_source.max() >= len(self.source_names):
                raise DataModelError("claim references a source id outside the source table")

    # -- sizes ----------------------------------------------------------------------
    @property
    def num_facts(self) -> int:
        """Number of facts F."""
        return len(self.facts)

    @property
    def num_sources(self) -> int:
        """Number of sources S."""
        return len(self.source_names)

    @property
    def num_claims(self) -> int:
        """Number of claims C (positive + negative)."""
        return int(self.claim_fact.shape[0])

    @property
    def num_entities(self) -> int:
        """Number of distinct entities across the fact table."""
        return len(self._entity_to_facts)

    @property
    def num_positive_claims(self) -> int:
        """Number of positive claims."""
        return int(self.claim_obs.sum())

    @property
    def num_negative_claims(self) -> int:
        """Number of generated negative claims."""
        return self.num_claims - self.num_positive_claims

    # -- per-fact access --------------------------------------------------------------
    def claims_of(self, fact_id: FactId) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(source_ids, observations)`` for the claims of ``fact_id``."""
        if fact_id < 0 or fact_id >= self.num_facts:
            raise UnknownFactError(f"fact id {fact_id} out of range [0, {self.num_facts})")
        start, stop = self.fact_ptr[fact_id], self.fact_ptr[fact_id + 1]
        return self.claim_source[start:stop], self.claim_obs[start:stop]

    def positive_sources_of(self, fact_id: FactId) -> np.ndarray:
        """Source ids making a positive claim for ``fact_id``."""
        sources, obs = self.claims_of(fact_id)
        return sources[obs == 1]

    def negative_sources_of(self, fact_id: FactId) -> np.ndarray:
        """Source ids making a negative claim for ``fact_id``."""
        sources, obs = self.claims_of(fact_id)
        return sources[obs == 0]

    def fact(self, fact_id: FactId) -> Fact:
        """Return the :class:`~repro.data.records.Fact` with id ``fact_id``."""
        if fact_id < 0 or fact_id >= self.num_facts:
            raise UnknownFactError(f"fact id {fact_id} out of range [0, {self.num_facts})")
        return self.facts[fact_id]

    def facts_of_entity(self, entity: EntityKey) -> list[FactId]:
        """Fact ids belonging to ``entity``."""
        return list(self._entity_to_facts.get(entity, ()))

    @property
    def entities(self) -> list[EntityKey]:
        """Distinct entities, in fact-table order."""
        return list(self._entity_to_facts)

    @property
    def entity_groups(self) -> dict[EntityKey, list[FactId]]:
        """Mapping of entity -> fact ids, used by per-entity baselines."""
        return {entity: list(ids) for entity, ids in self._entity_to_facts.items()}

    # -- per-source statistics -----------------------------------------------------------
    def positive_counts_per_fact(self) -> np.ndarray:
        """Number of positive claims per fact (length F)."""
        out = np.zeros(self.num_facts, dtype=np.int64)
        np.add.at(out, self.claim_fact, self.claim_obs.astype(np.int64))
        return out

    def claim_counts_per_fact(self) -> np.ndarray:
        """Total number of claims per fact (length F)."""
        return np.diff(self.fact_ptr)

    def positive_counts_per_source(self) -> np.ndarray:
        """Number of positive claims per source (length S)."""
        out = np.zeros(self.num_sources, dtype=np.int64)
        np.add.at(out, self.claim_source, self.claim_obs.astype(np.int64))
        return out

    def claim_counts_per_source(self) -> np.ndarray:
        """Total number of claims per source (length S)."""
        return np.bincount(self.claim_source, minlength=self.num_sources)

    def source_records(self) -> list[SourceRecord]:
        """Build :class:`~repro.data.records.SourceRecord` summaries for all sources."""
        positives = self.positive_counts_per_source()
        totals = self.claim_counts_per_source()
        entity_sets: list[set[EntityKey]] = [set() for _ in range(self.num_sources)]
        fact_entities = [fact.entity for fact in self.facts]
        for fact_id, source_id in zip(self.claim_fact, self.claim_source):
            entity_sets[source_id].add(fact_entities[fact_id])
        return [
            SourceRecord(
                source_id=sid,
                name=name,
                num_positive_claims=int(positives[sid]),
                num_negative_claims=int(totals[sid] - positives[sid]),
                num_entities=len(entity_sets[sid]),
            )
            for sid, name in enumerate(self.source_names)
        ]

    def source_id(self, name: str) -> SourceId:
        """Return the dense id of the source called ``name``."""
        try:
            return self.source_names.index(name)
        except ValueError as exc:
            raise DataModelError(f"unknown source {name!r}") from exc

    # -- restriction / subsetting ----------------------------------------------------------
    def restrict_to_facts(self, fact_ids: Iterable[FactId]) -> "ClaimMatrix":
        """Return a new claim matrix containing only ``fact_ids`` (re-indexed densely).

        Source ids and names are preserved so that source-quality estimates
        learned elsewhere remain applicable.
        """
        wanted = sorted(set(int(f) for f in fact_ids))
        for fact_id in wanted:
            if fact_id < 0 or fact_id >= self.num_facts:
                raise UnknownFactError(f"fact id {fact_id} out of range [0, {self.num_facts})")
        remap = {old: new for new, old in enumerate(wanted)}
        new_facts = [
            Fact(fact_id=remap[old], entity=self.facts[old].entity, attribute=self.facts[old].attribute)
            for old in wanted
        ]
        mask = np.isin(self.claim_fact, np.asarray(wanted, dtype=np.int64))
        new_claim_fact = np.array([remap[int(f)] for f in self.claim_fact[mask]], dtype=np.int64)
        return ClaimMatrix(
            facts=new_facts,
            source_names=self.source_names,
            claim_fact=new_claim_fact,
            claim_source=self.claim_source[mask],
            claim_obs=self.claim_obs[mask],
        )

    def restrict_to_entities(self, entities: Iterable[EntityKey]) -> "ClaimMatrix":
        """Return a new claim matrix containing only facts of ``entities``."""
        wanted = set(entities)
        fact_ids = [fact.fact_id for fact in self.facts if fact.entity in wanted]
        return self.restrict_to_facts(fact_ids)

    def positive_only(self) -> "ClaimMatrix":
        """Return a copy containing only the positive claims (used by LTMpos)."""
        mask = self.claim_obs == 1
        return ClaimMatrix(
            facts=self.facts,
            source_names=self.source_names,
            claim_fact=self.claim_fact[mask],
            claim_source=self.claim_source[mask],
            claim_obs=self.claim_obs[mask],
        )

    def summary(self) -> dict[str, int]:
        """Size statistics matching how the paper describes its datasets."""
        return {
            "entities": self.num_entities,
            "facts": self.num_facts,
            "sources": self.num_sources,
            "claims": self.num_claims,
            "positive_claims": self.num_positive_claims,
            "negative_claims": self.num_negative_claims,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClaimMatrix(facts={self.num_facts}, sources={self.num_sources}, "
            f"claims={self.num_claims})"
        )


@dataclass
class TruthDataset:
    """A claim matrix plus ground-truth labels and metadata.

    Attributes
    ----------
    name:
        Dataset name (e.g. ``"book-authors"``).
    claims:
        The :class:`ClaimMatrix` all solvers consume.
    labels:
        Mapping of fact id to Boolean ground truth for the labelled subset
        used in evaluation.  May cover all facts (synthetic data) or only a
        sample (the paper labels 100 entities per dataset).
    labelled_entities:
        Entities whose facts were labelled; informational.
    """

    name: str
    claims: ClaimMatrix
    labels: dict[FactId, bool] = field(default_factory=dict)
    labelled_entities: tuple[EntityKey, ...] = ()

    def __post_init__(self) -> None:
        for fact_id in self.labels:
            if fact_id < 0 or fact_id >= self.claims.num_facts:
                raise UnknownFactError(f"label references unknown fact id {fact_id}")

    # -- labelled subset access ---------------------------------------------------
    @property
    def labelled_fact_ids(self) -> list[FactId]:
        """Fact ids with ground-truth labels, sorted."""
        return sorted(self.labels)

    @property
    def num_labelled(self) -> int:
        """Number of labelled facts."""
        return len(self.labels)

    def labels_array(self, fact_ids: Sequence[FactId] | None = None) -> np.ndarray:
        """Ground-truth labels as a Boolean array over ``fact_ids`` (default: all labelled)."""
        if fact_ids is None:
            fact_ids = self.labelled_fact_ids
        missing = [f for f in fact_ids if f not in self.labels]
        if missing:
            raise UnknownFactError(f"facts {missing[:5]} have no ground-truth label")
        return np.array([self.labels[f] for f in fact_ids], dtype=bool)

    def require_labels(self) -> None:
        """Raise if the dataset has no ground-truth labels at all."""
        if not self.labels:
            raise EmptyDatasetError(f"dataset {self.name!r} has no ground-truth labels")

    # -- splitting -------------------------------------------------------------------
    def split_labelled_entities(self) -> tuple[ClaimMatrix, ClaimMatrix]:
        """Split the claim matrix into (unlabelled-entities, labelled-entities) parts.

        This mirrors the paper's LTMinc protocol: learn source quality on the
        data without the labelled entities, then predict on the labelled
        entities with Equation (3).
        """
        labelled = set(self.labelled_entities)
        if not labelled:
            labelled = {self.claims.fact(f).entity for f in self.labels}
        unlabelled_entities = [e for e in self.claims.entities if e not in labelled]
        return (
            self.claims.restrict_to_entities(unlabelled_entities),
            self.claims.restrict_to_entities(labelled),
        )

    def label_subset_matrix(self) -> tuple[ClaimMatrix, np.ndarray, list[FactId]]:
        """Return the claim matrix restricted to labelled entities, with labels.

        Returns ``(matrix, labels, original_fact_ids)`` where ``labels[i]`` is
        the ground truth of ``matrix.facts[i]`` and ``original_fact_ids[i]``
        is its id in the full claim matrix.
        """
        self.require_labels()
        labelled = set(self.labelled_entities) or {
            self.claims.fact(f).entity for f in self.labels
        }
        fact_ids = [f.fact_id for f in self.claims.facts if f.entity in labelled]
        matrix = self.claims.restrict_to_facts(fact_ids)
        labels = np.array([self.labels.get(f, False) for f in fact_ids], dtype=bool)
        return matrix, labels, fact_ids

    def summary(self) -> dict[str, int]:
        """Size statistics of the dataset."""
        info = self.claims.summary()
        info["labelled_facts"] = self.num_labelled
        info["labelled_entities"] = len(
            set(self.labelled_entities)
            or {self.claims.fact(f).entity for f in self.labels}
        )
        return info

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TruthDataset(name={self.name!r}, {self.claims!r}, labelled={self.num_labelled})"


def _iter_fact_ids(claims: ClaimMatrix) -> Iterator[FactId]:  # pragma: no cover - helper
    yield from range(claims.num_facts)

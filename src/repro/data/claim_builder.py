"""Construction of the fact and claim tables from a raw database.

This implements Definitions 2 and 3 of the paper:

1. every distinct ``(entity, attribute)`` pair becomes a fact with a dense id;
2. for each fact, every source that asserted it contributes a **positive**
   claim;
3. every source that asserted *some other* attribute of the same entity — but
   not this fact — contributes a **negative** claim;
4. sources that said nothing about the entity contribute no claim at all.

The builder produces a :class:`~repro.data.dataset.ClaimMatrix`, the flat
numpy encoding consumed by every solver.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.raw import RawDatabase
from repro.data.records import Fact
from repro.exceptions import EmptyDatasetError
from repro.store import Column, Schema, Table
from repro.types import AttributeValue, EntityKey, FactId, SourceName, Triple

__all__ = ["ClaimTableBuilder", "build_claim_matrix", "build_dataset"]


class ClaimTableBuilder:
    """Builds fact and claim tables (and relational views of them) from raw triples.

    Parameters
    ----------
    raw:
        The input :class:`~repro.data.raw.RawDatabase`.
    """

    def __init__(self, raw: RawDatabase):
        raw.require_non_empty()
        self.raw = raw
        self._facts: list[Fact] = []
        self._fact_ids: dict[tuple[EntityKey, AttributeValue], FactId] = {}
        self._source_ids: dict[SourceName, int] = {}
        self._claim_fact: list[int] = []
        self._claim_source: list[int] = []
        self._claim_obs: list[bool] = []
        self._built = False

    # -- id assignment -----------------------------------------------------------
    def _fact_id(self, entity: EntityKey, attribute: AttributeValue) -> FactId:
        key = (entity, attribute)
        if key not in self._fact_ids:
            fact_id = len(self._facts)
            self._fact_ids[key] = fact_id
            self._facts.append(Fact(fact_id=fact_id, entity=entity, attribute=attribute))
        return self._fact_ids[key]

    def _source_id(self, source: SourceName) -> int:
        if source not in self._source_ids:
            self._source_ids[source] = len(self._source_ids)
        return self._source_ids[source]

    # -- core construction --------------------------------------------------------
    def build(self) -> ClaimMatrix:
        """Run the claim-generation rules and return the claim matrix."""
        if self._built:
            return self._to_matrix()

        # Register sources in first-seen order for reproducible ids.
        for source in self.raw.sources:
            self._source_id(source)

        # Positive claims: sources that asserted the (entity, attribute) pair.
        positive_pairs: set[tuple[FactId, int]] = set()
        for triple in self.raw:
            fact_id = self._fact_id(triple.entity, triple.attribute)
            source_id = self._source_id(triple.source)
            if (fact_id, source_id) in positive_pairs:
                continue
            positive_pairs.add((fact_id, source_id))
            self._claim_fact.append(fact_id)
            self._claim_source.append(source_id)
            self._claim_obs.append(True)

        # Negative claims: sources that asserted the entity but not this fact.
        for fact in self._facts:
            fact_sources = {
                source_id
                for (fid, source_id) in positive_pairs
                if fid == fact.fact_id
            }
            entity_sources = {self._source_id(s) for s in self.raw.sources_of(fact.entity)}
            for source_id in sorted(entity_sources - fact_sources):
                self._claim_fact.append(fact.fact_id)
                self._claim_source.append(source_id)
                self._claim_obs.append(False)

        self._built = True
        return self._to_matrix()

    def _to_matrix(self) -> ClaimMatrix:
        source_names = [name for name, _ in sorted(self._source_ids.items(), key=lambda kv: kv[1])]
        return ClaimMatrix(
            facts=self._facts,
            source_names=source_names,
            claim_fact=np.asarray(self._claim_fact, dtype=np.int64),
            claim_source=np.asarray(self._claim_source, dtype=np.int64),
            claim_obs=np.asarray(self._claim_obs, dtype=np.int8),
        )

    # -- relational views -----------------------------------------------------------
    def fact_table(self) -> Table:
        """The fact table (Definition 2 / paper Table 2) as a relational table."""
        if not self._built:
            self.build()
        schema = Schema(
            columns=(Column("fact_id", int), Column("entity", object), Column("attribute", object)),
            key=("fact_id",),
        )
        table = Table("facts", schema)
        for fact in self._facts:
            table.insert({"fact_id": fact.fact_id, "entity": fact.entity, "attribute": fact.attribute})
        return table

    def claim_table(self) -> Table:
        """The claim table (Definition 3 / paper Table 3) as a relational table."""
        matrix = self.build()
        schema = Schema(
            columns=(
                Column("fact_id", int),
                Column("source", object),
                Column("observation", bool),
            ),
            key=("fact_id", "source"),
        )
        table = Table("claims", schema)
        for fact_id, source_id, obs in zip(matrix.claim_fact, matrix.claim_source, matrix.claim_obs):
            table.insert(
                {
                    "fact_id": int(fact_id),
                    "source": matrix.source_names[int(source_id)],
                    "observation": bool(obs),
                }
            )
        return table

    @property
    def fact_ids(self) -> Mapping[tuple[EntityKey, AttributeValue], FactId]:
        """Mapping of ``(entity, attribute)`` to fact id (after :meth:`build`)."""
        return dict(self._fact_ids)


def build_claim_matrix(triples: Iterable[Triple | tuple] | RawDatabase, strict: bool = False) -> ClaimMatrix:
    """Convenience function: triples (or a raw database) straight to a claim matrix."""
    if isinstance(triples, RawDatabase):
        raw = triples
    else:
        raw = RawDatabase(triples, strict=strict)
    return ClaimTableBuilder(raw).build()


def build_dataset(
    triples: Iterable[Triple | tuple] | RawDatabase,
    truth: Mapping[tuple[EntityKey, AttributeValue], bool] | None = None,
    name: str = "dataset",
    labelled_entities: Iterable[EntityKey] | None = None,
    strict: bool = False,
) -> TruthDataset:
    """Build a :class:`~repro.data.dataset.TruthDataset` from raw triples and ground truth.

    Parameters
    ----------
    triples:
        The raw assertion triples or an existing raw database.
    truth:
        Optional mapping from ``(entity, attribute)`` pairs to their ground
        truth.  Pairs not present in the claim matrix are ignored; pairs in
        the matrix but missing from ``truth`` are left unlabelled.
    name:
        Dataset name.
    labelled_entities:
        Optionally restrict labels to facts of these entities (mirrors the
        paper's 100-entity labelled samples).
    strict:
        Whether duplicate triples raise instead of being ignored.
    """
    if isinstance(triples, RawDatabase):
        raw = triples
    else:
        raw = RawDatabase(triples, strict=strict)
    builder = ClaimTableBuilder(raw)
    matrix = builder.build()
    labels: dict[FactId, bool] = {}
    restrict = set(labelled_entities) if labelled_entities is not None else None
    if truth:
        for pair, value in truth.items():
            fact_id = builder.fact_ids.get(pair)
            if fact_id is None:
                continue
            if restrict is not None and pair[0] not in restrict:
                continue
            labels[fact_id] = bool(value)
    if not matrix.num_facts:
        raise EmptyDatasetError("no facts were derived from the raw database")
    return TruthDataset(
        name=name,
        claims=matrix,
        labels=labels,
        labelled_entities=tuple(restrict) if restrict is not None else (),
    )

"""Construction of the fact and claim tables from a raw database.

This implements Definitions 2 and 3 of the paper:

1. every distinct ``(entity, attribute)`` pair becomes a fact with a dense id;
2. for each fact, every source that asserted it contributes a **positive**
   claim;
3. every source that asserted *some other* attribute of the same entity — but
   not this fact — contributes a **negative** claim;
4. sources that said nothing about the entity contribute no claim at all.

The builder produces a :class:`~repro.data.dataset.ClaimMatrix`, the flat
numpy encoding consumed by every solver.

Two construction paths produce identical matrices:

* :class:`ClaimTableBuilder` — the row-at-a-time reference implementation,
  which can also materialise the relational fact/claim tables;
* :func:`bulk_build_claim_matrix` — a vectorized path that factorizes the
  entity / attribute / source columns with numpy instead of per-triple
  appends, used by :func:`build_claim_matrix` (and hence the engine and the
  :mod:`repro.io` sources) for chunked ingestion at scale.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.raw import RawDatabase
from repro.data.records import Fact
from repro.exceptions import DataModelError, DuplicateRowError, EmptyDatasetError
from repro.store import Column, Schema, Table
from repro.types import AttributeValue, EntityKey, FactId, SourceName, Triple

__all__ = [
    "ClaimTableBuilder",
    "build_claim_matrix",
    "build_dataset",
    "bulk_build_claim_matrix",
]


class ClaimTableBuilder:
    """Builds fact and claim tables (and relational views of them) from raw triples.

    Parameters
    ----------
    raw:
        The input :class:`~repro.data.raw.RawDatabase`.
    """

    def __init__(self, raw: RawDatabase):
        raw.require_non_empty()
        self.raw = raw
        self._facts: list[Fact] = []
        self._fact_ids: dict[tuple[EntityKey, AttributeValue], FactId] = {}
        self._source_ids: dict[SourceName, int] = {}
        self._claim_fact: list[int] = []
        self._claim_source: list[int] = []
        self._claim_obs: list[bool] = []
        self._built = False

    # -- id assignment -----------------------------------------------------------
    def _fact_id(self, entity: EntityKey, attribute: AttributeValue) -> FactId:
        key = (entity, attribute)
        if key not in self._fact_ids:
            fact_id = len(self._facts)
            self._fact_ids[key] = fact_id
            self._facts.append(Fact(fact_id=fact_id, entity=entity, attribute=attribute))
        return self._fact_ids[key]

    def _source_id(self, source: SourceName) -> int:
        if source not in self._source_ids:
            self._source_ids[source] = len(self._source_ids)
        return self._source_ids[source]

    # -- core construction --------------------------------------------------------
    def build(self) -> ClaimMatrix:
        """Run the claim-generation rules and return the claim matrix."""
        if self._built:
            return self._to_matrix()

        # Register sources in first-seen order for reproducible ids.
        for source in self.raw.sources:
            self._source_id(source)

        # Positive claims: sources that asserted the (entity, attribute) pair.
        positive_by_fact: dict[FactId, set[int]] = {}
        for triple in self.raw:
            fact_id = self._fact_id(triple.entity, triple.attribute)
            source_id = self._source_id(triple.source)
            fact_sources = positive_by_fact.setdefault(fact_id, set())
            if source_id in fact_sources:
                continue
            fact_sources.add(source_id)
            self._claim_fact.append(fact_id)
            self._claim_source.append(source_id)
            self._claim_obs.append(True)

        # Negative claims: sources that asserted the entity but not this fact.
        for fact in self._facts:
            fact_sources = positive_by_fact.get(fact.fact_id, set())
            entity_sources = {self._source_id(s) for s in self.raw.sources_of(fact.entity)}
            for source_id in sorted(entity_sources - fact_sources):
                self._claim_fact.append(fact.fact_id)
                self._claim_source.append(source_id)
                self._claim_obs.append(False)

        self._built = True
        return self._to_matrix()

    def _to_matrix(self) -> ClaimMatrix:
        source_names = [name for name, _ in sorted(self._source_ids.items(), key=lambda kv: kv[1])]
        return ClaimMatrix(
            facts=self._facts,
            source_names=source_names,
            claim_fact=np.asarray(self._claim_fact, dtype=np.int64),
            claim_source=np.asarray(self._claim_source, dtype=np.int64),
            claim_obs=np.asarray(self._claim_obs, dtype=np.int8),
        )

    # -- relational views -----------------------------------------------------------
    def fact_table(self) -> Table:
        """The fact table (Definition 2 / paper Table 2) as a relational table."""
        if not self._built:
            self.build()
        schema = Schema(
            columns=(Column("fact_id", int), Column("entity", object), Column("attribute", object)),
            key=("fact_id",),
        )
        table = Table("facts", schema)
        for fact in self._facts:
            table.insert({"fact_id": fact.fact_id, "entity": fact.entity, "attribute": fact.attribute})
        return table

    def claim_table(self) -> Table:
        """The claim table (Definition 3 / paper Table 3) as a relational table."""
        matrix = self.build()
        schema = Schema(
            columns=(
                Column("fact_id", int),
                Column("source", object),
                Column("observation", bool),
            ),
            key=("fact_id", "source"),
        )
        table = Table("claims", schema)
        for fact_id, source_id, obs in zip(matrix.claim_fact, matrix.claim_source, matrix.claim_obs):
            table.insert(
                {
                    "fact_id": int(fact_id),
                    "source": matrix.source_names[int(source_id)],
                    "observation": bool(obs),
                }
            )
        return table

    @property
    def fact_ids(self) -> Mapping[tuple[EntityKey, AttributeValue], FactId]:
        """Mapping of ``(entity, attribute)`` to fact id (after :meth:`build`)."""
        return dict(self._fact_ids)

    # -- vectorized bulk ingest -----------------------------------------------------
    @classmethod
    def bulk(cls, triples: Iterable[Triple | tuple] | RawDatabase, strict: bool = False) -> ClaimMatrix:
        """Vectorized triples-to-matrix path (see :func:`bulk_build_claim_matrix`)."""
        return bulk_build_claim_matrix(triples, strict=strict)


# ---------------------------------------------------------------------------
# Vectorized bulk ingest
# ---------------------------------------------------------------------------
def _factorize_first_seen(values: Sequence) -> tuple[np.ndarray, list]:
    """Encode ``values`` as dense integer codes in first-seen order.

    Returns ``(codes, uniques)`` with ``uniques[codes[i]] == values[i]`` and
    uniques ordered by first occurrence — the same id assignment the
    row-at-a-time builder produces.  Dictionary encoding beats a
    sort-based ``np.unique`` here because the raw columns are Python objects
    (strings, occasionally numbers); everything downstream then runs on the
    resulting dense int64 codes.
    """
    mapping: dict = {}
    setdefault = mapping.setdefault
    codes = np.fromiter(
        (setdefault(v, len(mapping)) for v in values), count=len(values), dtype=np.int64
    )
    return codes, list(mapping)


def bulk_build_claim_matrix(
    triples: Iterable[Triple | tuple] | RawDatabase, strict: bool = False
) -> ClaimMatrix:
    """Build a :class:`~repro.data.dataset.ClaimMatrix` from triples, vectorized.

    Produces a matrix *identical* (same fact/source ids, same claim layout) to
    ``ClaimTableBuilder(RawDatabase(triples, strict=False)).build()``, but the
    claim-generation rules of Definitions 2-3 run as numpy factorizations and
    joins instead of per-triple appends — the difference between O(n) Python
    dict traffic and a handful of C-level array passes.  This is the path
    :func:`build_claim_matrix` (and therefore :class:`~repro.engine.TruthEngine`
    and the :mod:`repro.io` sources) take, keeping chunked streaming ingestion
    cheap.

    Parameters
    ----------
    triples:
        Raw assertion triples (``Triple`` objects or plain 3-tuples) or an
        existing :class:`~repro.data.raw.RawDatabase`.
    strict:
        When true, exact duplicate triples raise
        :class:`~repro.exceptions.DuplicateRowError` (mirroring
        ``RawDatabase(strict=True)``); when false duplicates are dropped.
    """
    if isinstance(triples, RawDatabase):
        strict = False  # a RawDatabase is already de-duplicated
    rows = triples if isinstance(triples, (list, tuple)) else list(triples)
    if not rows:
        raise EmptyDatasetError("the raw database contains no triples")
    try:
        if isinstance(rows[0], Triple):
            entities = [t.entity for t in rows]
            attributes = [t.attribute for t in rows]
            src_col = [t.source for t in rows]
        else:
            entities, attributes, src_col = zip(*rows)
    except (AttributeError, TypeError, ValueError):
        # Mixed Triple / tuple input (or wrong arity): normalise and
        # validate element by element.
        norm = []
        for t in rows:
            if isinstance(t, Triple):
                norm.append(t.as_tuple())
            elif len(t) == 3:
                norm.append((t[0], t[1], t[2]))
            else:
                raise DataModelError(
                    f"expected (entity, attribute, source) triples, got {t!r}"
                ) from None
        entities, attributes, src_col = zip(*norm)

    ent_codes, _ = _factorize_first_seen(entities)
    attr_codes, _ = _factorize_first_seen(attributes)
    src_codes, source_names = _factorize_first_seen(src_col)
    num_sources = len(source_names)

    # Facts: first-seen (entity, attribute) pairs, in triple order.
    pair_keys = ent_codes * (int(attr_codes.max()) + 1) + attr_codes
    uniq_pairs, first_idx, fact_of_triple = np.unique(
        pair_keys, return_index=True, return_inverse=True
    )
    pair_order = np.argsort(first_idx, kind="stable")
    pair_rank = np.empty(len(uniq_pairs), dtype=np.int64)
    pair_rank[pair_order] = np.arange(len(uniq_pairs), dtype=np.int64)
    fact_of_triple = pair_rank[fact_of_triple.ravel()]
    fact_first_idx = first_idx[pair_order]  # triple index introducing each fact
    num_facts = len(fact_first_idx)
    facts = [
        Fact(fid, entities[i], attributes[i])
        for fid, i in enumerate(fact_first_idx.tolist())
    ]

    # Positive claims: first occurrence of each (fact, source) pair, kept in
    # triple-scan order (what the sequential builder appends).
    pos_keys = fact_of_triple * num_sources + src_codes
    uniq_pos, pos_first = np.unique(pos_keys, return_index=True)
    if strict and len(uniq_pos) != len(rows):
        dup = int(np.setdiff1d(np.arange(len(rows)), pos_first)[0])
        raise DuplicateRowError(
            f"duplicate raw triple {(entities[dup], attributes[dup], src_col[dup])!r}"
        )
    pos_first = np.sort(pos_first)
    pos_fact = fact_of_triple[pos_first]
    pos_src = src_codes[pos_first]

    # Entity coverage: distinct (entity, source) pairs, sorted by (entity,
    # source id) so each entity's block lists its sources ascending.
    es_keys = np.unique(ent_codes * num_sources + src_codes)
    es_ent = es_keys // num_sources
    es_src = es_keys % num_sources
    ent_counts = np.bincount(es_ent, minlength=int(ent_codes.max()) + 1)
    ent_ptr = np.concatenate(([0], np.cumsum(ent_counts)))

    # Candidate negative claims: for every fact (in fact-id order) expand the
    # covering sources of its entity, then drop the fact's positive pairs.
    fact_ent = ent_codes[fact_first_idx]
    reps = ent_counts[fact_ent]
    total = int(reps.sum())
    cand_fact = np.repeat(np.arange(num_facts, dtype=np.int64), reps)
    block_starts = np.concatenate(([0], np.cumsum(reps)))[:-1]
    intra = np.arange(total, dtype=np.int64) - np.repeat(block_starts, reps)
    cand_src = es_src[np.repeat(ent_ptr[fact_ent], reps) + intra]
    negative_mask = ~np.isin(cand_fact * num_sources + cand_src, uniq_pos)
    neg_fact = cand_fact[negative_mask]
    neg_src = cand_src[negative_mask]

    # Deliver the claims fact-sorted (positives in scan order, then negatives
    # by ascending source — the sequential builder's layout) so ClaimMatrix
    # can take its no-reorder fast path.
    claim_fact = np.concatenate((pos_fact, neg_fact))
    claim_source = np.concatenate((pos_src, neg_src))
    claim_obs = np.concatenate(
        (np.ones(len(pos_fact), dtype=np.int8), np.zeros(len(neg_fact), dtype=np.int8))
    )
    order = np.argsort(claim_fact, kind="stable")
    return ClaimMatrix(
        facts=facts,
        source_names=source_names,
        claim_fact=claim_fact[order],
        claim_source=claim_source[order],
        claim_obs=claim_obs[order],
    )


def build_claim_matrix(triples: Iterable[Triple | tuple] | RawDatabase, strict: bool = False) -> ClaimMatrix:
    """Convenience function: triples (or a raw database) straight to a claim matrix.

    Routes through the vectorized :func:`bulk_build_claim_matrix`, which is
    guaranteed (and property-tested) to produce the same matrix as
    :class:`ClaimTableBuilder`.
    """
    return bulk_build_claim_matrix(triples, strict=strict)


def build_dataset(
    triples: Iterable[Triple | tuple] | RawDatabase,
    truth: Mapping[tuple[EntityKey, AttributeValue], bool] | None = None,
    name: str = "dataset",
    labelled_entities: Iterable[EntityKey] | None = None,
    strict: bool = False,
) -> TruthDataset:
    """Build a :class:`~repro.data.dataset.TruthDataset` from raw triples and ground truth.

    Parameters
    ----------
    triples:
        The raw assertion triples or an existing raw database.
    truth:
        Optional mapping from ``(entity, attribute)`` pairs to their ground
        truth.  Pairs not present in the claim matrix are ignored; pairs in
        the matrix but missing from ``truth`` are left unlabelled.
    name:
        Dataset name.
    labelled_entities:
        Optionally restrict labels to facts of these entities (mirrors the
        paper's 100-entity labelled samples).
    strict:
        Whether duplicate triples raise instead of being ignored.
    """
    matrix = bulk_build_claim_matrix(triples, strict=strict)
    fact_ids: dict[tuple[EntityKey, AttributeValue], FactId] = {
        (fact.entity, fact.attribute): fact.fact_id for fact in matrix.facts
    }
    labels: dict[FactId, bool] = {}
    restrict = set(labelled_entities) if labelled_entities is not None else None
    if truth:
        for pair, value in truth.items():
            fact_id = fact_ids.get(pair)
            if fact_id is None:
                continue
            if restrict is not None and pair[0] not in restrict:
                continue
            labels[fact_id] = bool(value)
    if not matrix.num_facts:
        raise EmptyDatasetError("no facts were derived from the raw database")
    return TruthDataset(
        name=name,
        claims=matrix,
        labels=labels,
        labelled_entities=tuple(restrict) if restrict is not None else (),
    )

"""Serialisation of raw triples, datasets and ground-truth labels.

Formats are deliberately plain (CSV/TSV and JSON) so that datasets produced by
the simulators in :mod:`repro.synth` can be written to disk once and reloaded
by examples, tests and benchmarks without regeneration.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.raw import RawDatabase
from repro.data.records import Fact
from repro.exceptions import DataModelError
from repro.types import Triple

__all__ = [
    "load_triples_csv",
    "save_triples_csv",
    "load_labels_csv",
    "save_labels_csv",
    "load_dataset_json",
    "save_dataset_json",
]


# ---------------------------------------------------------------------------
# Raw triples (entity, attribute, source)
# ---------------------------------------------------------------------------
def save_triples_csv(triples: Iterable[Triple] | RawDatabase, path: str | Path, delimiter: str = "\t") -> int:
    """Write triples to a delimited text file with a header row; return row count."""
    path = Path(path)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["entity", "attribute", "source"])
        for triple in triples:
            writer.writerow([triple.entity, triple.attribute, triple.source])
            count += 1
    return count


def load_triples_csv(path: str | Path, delimiter: str = "\t", strict: bool = False) -> RawDatabase:
    """Read a delimited triple file (with header) into a :class:`RawDatabase`."""
    path = Path(path)
    raw = RawDatabase(strict=strict)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = next(reader, None)
        if header is None:
            raise DataModelError(f"triple file {path} is empty")
        expected = ["entity", "attribute", "source"]
        if [h.strip().lower() for h in header] != expected:
            raise DataModelError(f"triple file {path} must have header {expected}, got {header}")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DataModelError(f"{path}:{line_no}: expected 3 columns, got {len(row)}")
            raw.add(Triple(row[0], row[1], row[2]))
    return raw


# ---------------------------------------------------------------------------
# Ground-truth labels
# ---------------------------------------------------------------------------
def save_labels_csv(
    labels: Mapping[tuple[str, str], bool],
    path: str | Path,
    delimiter: str = "\t",
) -> int:
    """Write ``(entity, attribute) -> truth`` labels to a delimited file."""
    path = Path(path)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(["entity", "attribute", "truth"])
        for (entity, attribute), value in labels.items():
            writer.writerow([entity, attribute, int(bool(value))])
            count += 1
    return count


def load_labels_csv(path: str | Path, delimiter: str = "\t") -> dict[tuple[str, str], bool]:
    """Read ``(entity, attribute) -> truth`` labels from a delimited file."""
    path = Path(path)
    labels: dict[tuple[str, str], bool] = {}
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        header = next(reader, None)
        if header is None:
            raise DataModelError(f"label file {path} is empty")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DataModelError(f"{path}:{line_no}: expected 3 columns, got {len(row)}")
            labels[(row[0], row[1])] = bool(int(row[2]))
    return labels


# ---------------------------------------------------------------------------
# Full datasets (claim matrix + labels) as JSON
# ---------------------------------------------------------------------------
def save_dataset_json(dataset: TruthDataset, path: str | Path) -> None:
    """Serialise a full :class:`TruthDataset` (claim matrix + labels) to JSON."""
    path = Path(path)
    payload = {
        "name": dataset.name,
        "facts": [
            {"fact_id": f.fact_id, "entity": f.entity, "attribute": f.attribute}
            for f in dataset.claims.facts
        ],
        "sources": list(dataset.claims.source_names),
        "claims": {
            "fact": dataset.claims.claim_fact.tolist(),
            "source": dataset.claims.claim_source.tolist(),
            "observation": dataset.claims.claim_obs.astype(int).tolist(),
        },
        "labels": {str(fact_id): bool(value) for fact_id, value in dataset.labels.items()},
        "labelled_entities": list(dataset.labelled_entities),
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_dataset_json(path: str | Path) -> TruthDataset:
    """Load a :class:`TruthDataset` previously written by :func:`save_dataset_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        facts = [
            Fact(fact_id=int(f["fact_id"]), entity=f["entity"], attribute=f["attribute"])
            for f in payload["facts"]
        ]
        matrix = ClaimMatrix(
            facts=facts,
            source_names=payload["sources"],
            claim_fact=np.asarray(payload["claims"]["fact"], dtype=np.int64),
            claim_source=np.asarray(payload["claims"]["source"], dtype=np.int64),
            claim_obs=np.asarray(payload["claims"]["observation"], dtype=np.int8),
        )
        labels = {int(k): bool(v) for k, v in payload["labels"].items()}
        return TruthDataset(
            name=payload["name"],
            claims=matrix,
            labels=labels,
            labelled_entities=tuple(payload.get("labelled_entities", ())),
        )
    except KeyError as exc:
        raise DataModelError(f"dataset file {path} is missing field {exc}") from exc

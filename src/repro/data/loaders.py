"""Serialisation of raw triples, datasets and ground-truth labels.

Formats are deliberately plain (CSV/TSV and JSON) so that datasets produced by
the simulators in :mod:`repro.synth` can be written to disk once and reloaded
by examples, tests and benchmarks without regeneration.

The delimited writers and readers share one explicit csv dialect
(minimal quoting with ``"`` as the quote character), so a save → load cycle
is lossless even when values contain the delimiter, quotes or newlines — a
property-based round-trip test pins this down.  Note that values are read
back as strings: numeric attribute values survive with their ``str()``
rendering.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.raw import RawDatabase
from repro.data.records import Fact
from repro.exceptions import DataModelError
from repro.types import Triple

__all__ = [
    "iter_triples_csv",
    "load_triples_csv",
    "save_triples_csv",
    "load_labels_csv",
    "save_labels_csv",
    "load_dataset_json",
    "save_dataset_json",
]


# ---------------------------------------------------------------------------
# Shared delimited dialect
# ---------------------------------------------------------------------------
#: csv options shared by every delimited writer *and* reader, so values
#: containing the delimiter, quotes or newlines survive a save → load cycle.
_CSV_DIALECT = {"quotechar": '"', "quoting": csv.QUOTE_MINIMAL, "doublequote": True}


def _check_delimiter(delimiter: str) -> str:
    if len(delimiter) != 1:
        raise DataModelError(f"delimiter must be a single character, got {delimiter!r}")
    if delimiter in '"\r\n':
        raise DataModelError(
            f"delimiter {delimiter!r} collides with the csv quote/newline characters"
        )
    return delimiter


# ---------------------------------------------------------------------------
# Raw triples (entity, attribute, source)
# ---------------------------------------------------------------------------
def save_triples_csv(triples: Iterable[Triple] | RawDatabase, path: str | Path, delimiter: str = "\t") -> int:
    """Write triples to a delimited text file with a header row; return row count.

    Values containing the delimiter, quotes or newlines are quoted, so
    :func:`load_triples_csv` (with the same delimiter) reads them back
    verbatim.  Non-string values are written as their ``str()`` rendering.
    """
    path = Path(path)
    _check_delimiter(delimiter)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter, **_CSV_DIALECT)
        writer.writerow(["entity", "attribute", "source"])
        for triple in triples:
            writer.writerow([triple.entity, triple.attribute, triple.source])
            count += 1
    return count


def iter_triples_csv(path: str | Path, delimiter: str = "\t") -> Iterator[Triple]:
    """Stream a delimited triple file (with header) one row at a time.

    This is the out-of-core read path :class:`~repro.io.sources.TripleFileSource`
    is built on: the file is validated (header, per-row arity) exactly like
    :func:`load_triples_csv`, but rows are yielded as they are read — peak
    memory is one row, regardless of file size.  Unlike the eager loader,
    duplicate rows are *not* collapsed here; claim-matrix construction
    deduplicates downstream.
    """
    path = Path(path)
    _check_delimiter(delimiter)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter, **_CSV_DIALECT)
        header = next(reader, None)
        if header is None:
            raise DataModelError(f"triple file {path} is empty")
        expected = ["entity", "attribute", "source"]
        if [h.strip().lower() for h in header] != expected:
            raise DataModelError(f"triple file {path} must have header {expected}, got {header}")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DataModelError(f"{path}:{line_no}: expected 3 columns, got {len(row)}")
            yield Triple(row[0], row[1], row[2])


def load_triples_csv(path: str | Path, delimiter: str = "\t", strict: bool = False) -> RawDatabase:
    """Read a delimited triple file (with header) into a :class:`RawDatabase`."""
    raw = RawDatabase(strict=strict)
    for triple in iter_triples_csv(path, delimiter=delimiter):
        raw.add(triple)
    return raw


# ---------------------------------------------------------------------------
# Ground-truth labels
# ---------------------------------------------------------------------------
def save_labels_csv(
    labels: Mapping[tuple[str, str], bool],
    path: str | Path,
    delimiter: str = "\t",
) -> int:
    """Write ``(entity, attribute) -> truth`` labels to a delimited file."""
    path = Path(path)
    _check_delimiter(delimiter)
    count = 0
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter, **_CSV_DIALECT)
        writer.writerow(["entity", "attribute", "truth"])
        for (entity, attribute), value in labels.items():
            writer.writerow([entity, attribute, int(bool(value))])
            count += 1
    return count


def load_labels_csv(path: str | Path, delimiter: str = "\t") -> dict[tuple[str, str], bool]:
    """Read ``(entity, attribute) -> truth`` labels from a delimited file."""
    path = Path(path)
    _check_delimiter(delimiter)
    labels: dict[tuple[str, str], bool] = {}
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter, **_CSV_DIALECT)
        header = next(reader, None)
        if header is None:
            raise DataModelError(f"label file {path} is empty")
        expected = ["entity", "attribute", "truth"]
        if [h.strip().lower() for h in header] != expected:
            raise DataModelError(f"label file {path} must have header {expected}, got {header}")
        for line_no, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise DataModelError(f"{path}:{line_no}: expected 3 columns, got {len(row)}")
            try:
                truth = int(row[2])
            except ValueError as exc:
                raise DataModelError(
                    f"{path}:{line_no}: truth column must be 0 or 1, got {row[2]!r}"
                ) from exc
            labels[(row[0], row[1])] = bool(truth)
    return labels


# ---------------------------------------------------------------------------
# Full datasets (claim matrix + labels) as JSON
# ---------------------------------------------------------------------------
def save_dataset_json(dataset: TruthDataset, path: str | Path) -> None:
    """Serialise a full :class:`TruthDataset` (claim matrix + labels) to JSON."""
    path = Path(path)
    payload = {
        "name": dataset.name,
        "facts": [
            {"fact_id": f.fact_id, "entity": f.entity, "attribute": f.attribute}
            for f in dataset.claims.facts
        ],
        "sources": list(dataset.claims.source_names),
        "claims": {
            "fact": dataset.claims.claim_fact.tolist(),
            "source": dataset.claims.claim_source.tolist(),
            "observation": dataset.claims.claim_obs.astype(int).tolist(),
        },
        "labels": {str(fact_id): bool(value) for fact_id, value in dataset.labels.items()},
        "labelled_entities": list(dataset.labelled_entities),
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_dataset_json(path: str | Path) -> TruthDataset:
    """Load a :class:`TruthDataset` previously written by :func:`save_dataset_json`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        facts = [
            Fact(fact_id=int(f["fact_id"]), entity=f["entity"], attribute=f["attribute"])
            for f in payload["facts"]
        ]
        matrix = ClaimMatrix(
            facts=facts,
            source_names=payload["sources"],
            claim_fact=np.asarray(payload["claims"]["fact"], dtype=np.int64),
            claim_source=np.asarray(payload["claims"]["source"], dtype=np.int64),
            claim_obs=np.asarray(payload["claims"]["observation"], dtype=np.int8),
        )
        labels = {int(k): bool(v) for k, v in payload["labels"].items()}
        return TruthDataset(
            name=payload["name"],
            claims=matrix,
            labels=labels,
            labelled_entities=tuple(payload.get("labelled_entities", ())),
        )
    except KeyError as exc:
        raise DataModelError(f"dataset file {path} is missing field {exc}") from exc

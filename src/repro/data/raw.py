"""The raw input database of ``(entity, attribute, source)`` triples.

:class:`RawDatabase` corresponds to Definition 1 of the paper: a set of unique
rows, each stating that a *source* asserted an *attribute value* for an
*entity*.  It is a thin, validated collection built on the relational store,
with the lookups the claim builder needs (entities per source, sources per
entity, attributes per entity).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator

from repro.exceptions import DuplicateRowError, EmptyDatasetError
from repro.store import Column, Schema, Table
from repro.types import AttributeValue, EntityKey, SourceName, Triple

__all__ = ["RawDatabase"]

_RAW_SCHEMA = Schema(
    columns=(
        Column("entity", object),
        Column("attribute", object),
        Column("source", object),
    ),
    key=("entity", "attribute", "source"),
)


class RawDatabase:
    """A validated, de-duplicated collection of raw assertion triples.

    Parameters
    ----------
    triples:
        Optional initial triples.  Each may be a :class:`~repro.types.Triple`
        or a plain ``(entity, attribute, source)`` tuple.
    strict:
        When true (the default) inserting an exact duplicate triple raises
        :class:`~repro.exceptions.DuplicateRowError`; when false duplicates
        are silently ignored (useful when ingesting noisy crawls).
    """

    def __init__(self, triples: Iterable[Triple | tuple] = (), strict: bool = True):
        self.strict = strict
        self._table = Table("raw_database", _RAW_SCHEMA)
        self._entity_sources: dict[EntityKey, set[SourceName]] = defaultdict(set)
        self._entity_attributes: dict[EntityKey, list[AttributeValue]] = defaultdict(list)
        self._source_entities: dict[SourceName, set[EntityKey]] = defaultdict(set)
        self._seen: set[tuple[EntityKey, AttributeValue, SourceName]] = set()
        for triple in triples:
            self.add(triple)

    # -- construction ------------------------------------------------------------
    def add(self, triple: Triple | tuple) -> bool:
        """Add one triple; return ``True`` if it was new.

        Raises
        ------
        DuplicateRowError
            If the triple already exists and ``strict`` is true.
        """
        if isinstance(triple, Triple):
            entity, attribute, source = triple.as_tuple()
        else:
            entity, attribute, source = triple
        key = (entity, attribute, source)
        if key in self._seen:
            if self.strict:
                raise DuplicateRowError(f"duplicate raw triple {key!r}")
            return False
        self._seen.add(key)
        self._table.insert({"entity": entity, "attribute": attribute, "source": source})
        self._entity_sources[entity].add(source)
        self._source_entities[source].add(entity)
        if attribute not in self._entity_attributes[entity]:
            self._entity_attributes[entity].append(attribute)
        return True

    def extend(self, triples: Iterable[Triple | tuple]) -> int:
        """Add many triples; return the number of new rows."""
        return sum(1 for triple in triples if self.add(triple))

    # -- introspection -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[Triple]:
        for row in self._table:
            yield Triple(row["entity"], row["attribute"], row["source"])

    def __contains__(self, triple: object) -> bool:
        if isinstance(triple, Triple):
            return triple.as_tuple() in self._seen
        if isinstance(triple, tuple) and len(triple) == 3:
            return tuple(triple) in self._seen
        return False

    @property
    def table(self) -> Table:
        """The underlying relational table of triples."""
        return self._table

    @property
    def entities(self) -> list[EntityKey]:
        """Distinct entities, in first-seen order."""
        return list(self._entity_attributes)

    @property
    def sources(self) -> list[SourceName]:
        """Distinct sources, in first-seen order."""
        return list(self._source_entities)

    @property
    def num_entities(self) -> int:
        """Number of distinct entities."""
        return len(self._entity_attributes)

    @property
    def num_sources(self) -> int:
        """Number of distinct sources."""
        return len(self._source_entities)

    def attributes_of(self, entity: EntityKey) -> list[AttributeValue]:
        """Distinct attribute values asserted for ``entity`` (first-seen order)."""
        return list(self._entity_attributes.get(entity, ()))

    def sources_of(self, entity: EntityKey) -> set[SourceName]:
        """Sources that asserted at least one attribute for ``entity``."""
        return set(self._entity_sources.get(entity, set()))

    def entities_of(self, source: SourceName) -> set[EntityKey]:
        """Entities that ``source`` asserted at least one attribute for."""
        return set(self._source_entities.get(source, set()))

    def triples_of(self, entity: EntityKey) -> list[Triple]:
        """All triples about ``entity``."""
        return [t for t in self if t.entity == entity]

    def restrict_to_entities(self, entities: Iterable[EntityKey]) -> "RawDatabase":
        """Return a new raw database containing only triples about ``entities``."""
        wanted = set(entities)
        return RawDatabase(
            (t for t in self if t.entity in wanted),
            strict=self.strict,
        )

    def require_non_empty(self) -> None:
        """Raise :class:`~repro.exceptions.EmptyDatasetError` if empty."""
        if len(self) == 0:
            raise EmptyDatasetError("the raw database contains no triples")

    def summary(self) -> dict[str, int]:
        """Basic size statistics of the raw database."""
        return {
            "triples": len(self),
            "entities": self.num_entities,
            "sources": self.num_sources,
        }

"""A minimal in-memory relational store.

The truth-finding pipeline of the paper is expressed over relational tables:
the *raw database* of ``(entity, attribute, source)`` triples (Table 1), the
*fact table* (Table 2), the *claim table* (Table 3) and the *truth table*
(Table 4).  This subpackage provides the small relational substrate those
tables are built on: typed schemas, row storage with optional unique
constraints, hash indexes, and the handful of query operators (selection,
projection, equi-join, group-by) the integration pipeline needs.

It is intentionally tiny — it is a substrate, not a DBMS — but it behaves like
one: schema violations, duplicate keys and unknown columns raise library
exceptions rather than silently corrupting state.
"""

from repro.store.schema import Column, Schema
from repro.store.table import Table
from repro.store.index import HashIndex
from repro.store.query import (
    select,
    project,
    equi_join,
    group_by,
    aggregate,
    order_by,
    distinct,
)
from repro.store.database import Database

__all__ = [
    "Column",
    "Schema",
    "Table",
    "HashIndex",
    "Database",
    "select",
    "project",
    "equi_join",
    "group_by",
    "aggregate",
    "order_by",
    "distinct",
]

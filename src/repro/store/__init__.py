"""The storage engine: an in-memory relational tier plus an out-of-core tier.

The truth-finding pipeline of the paper is expressed over relational tables:
the *raw database* of ``(entity, attribute, source)`` triples (Table 1), the
*fact table* (Table 2), the *claim table* (Table 3) and the *truth table*
(Table 4).  This subpackage provides both tiers those tables live on:

* an **in-memory substrate** — typed schemas, row storage with optional
  unique constraints, hash indexes, and the handful of query operators
  (selection, projection, equi-join, group-by) the integration pipeline
  needs for its working set; and
* an **out-of-core tier** — :class:`ClaimStore`, a disk-backed (SQLite by
  default, pluggable via :class:`StorageBackend`) append-only claim log with
  covering entity/source indexes and windowed retention, so corpora that do
  not fit in RAM stream through fit, shard, and serve via
  :class:`repro.io.store_source.StoreSource`.

Both tiers fail loudly: schema violations, duplicate keys, unknown columns
and version mismatches raise library exceptions rather than silently
corrupting state.
"""

from repro.store.schema import Column, Schema
from repro.store.table import Table
from repro.store.index import HashIndex
from repro.store.query import (
    select,
    project,
    equi_join,
    group_by,
    aggregate,
    order_by,
    distinct,
)
from repro.store.database import Database
from repro.store.backend import SQLiteBackend, StorageBackend
from repro.store.claims import SCHEMA_VERSION, ClaimStore

__all__ = [
    "Column",
    "Schema",
    "Table",
    "HashIndex",
    "Database",
    "select",
    "project",
    "equi_join",
    "group_by",
    "aggregate",
    "order_by",
    "distinct",
    "StorageBackend",
    "SQLiteBackend",
    "ClaimStore",
    "SCHEMA_VERSION",
]

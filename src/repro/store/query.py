"""Relational query operators over :class:`~repro.store.table.Table`.

These operators are deliberately simple: they materialise their results as
lists of dicts, which is all the claim-construction pipeline and the example
applications need.  They exist so that the data-model code reads like the
relational derivations of the paper (Definitions 1-4) instead of ad-hoc loops.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.exceptions import UnknownColumnError
from repro.store.table import Table

__all__ = [
    "select",
    "project",
    "equi_join",
    "group_by",
    "aggregate",
    "order_by",
    "distinct",
]

Rows = Iterable[Mapping[str, Any]]


def _as_rows(relation: Table | Rows) -> list[Mapping[str, Any]]:
    if isinstance(relation, Table):
        return list(relation.rows)
    return list(relation)


def select(relation: Table | Rows, predicate: Callable[[Mapping[str, Any]], bool]) -> list[dict[str, Any]]:
    """Return the rows of ``relation`` for which ``predicate`` is true."""
    return [dict(row) for row in _as_rows(relation) if predicate(row)]


def project(relation: Table | Rows, columns: Sequence[str]) -> list[dict[str, Any]]:
    """Return rows restricted to ``columns`` (duplicates preserved)."""
    rows = _as_rows(relation)
    out: list[dict[str, Any]] = []
    for row in rows:
        try:
            out.append({c: row[c] for c in columns})
        except KeyError as exc:
            raise UnknownColumnError(f"projection references unknown column {exc}") from exc
    return out


def distinct(relation: Table | Rows, columns: Sequence[str] | None = None) -> list[dict[str, Any]]:
    """Return distinct rows (optionally restricted to ``columns``), preserving order."""
    rows = _as_rows(relation)
    if columns is not None:
        rows = project(rows, columns)
    seen: set[tuple[tuple[str, Any], ...]] = set()
    out: list[dict[str, Any]] = []
    for row in rows:
        key = tuple(sorted(row.items()))
        if key not in seen:
            seen.add(key)
            out.append(dict(row))
    return out


def equi_join(
    left: Table | Rows,
    right: Table | Rows,
    on: Sequence[str],
    suffix: str = "_right",
) -> list[dict[str, Any]]:
    """Hash equi-join of ``left`` and ``right`` on the columns ``on``.

    Columns of ``right`` that collide with columns of ``left`` (other than the
    join columns) are renamed with ``suffix``.
    """
    left_rows = _as_rows(left)
    right_rows = _as_rows(right)
    buckets: dict[tuple[Any, ...], list[Mapping[str, Any]]] = defaultdict(list)
    for row in right_rows:
        try:
            key = tuple(row[c] for c in on)
        except KeyError as exc:
            raise UnknownColumnError(f"join references unknown column {exc} in right relation") from exc
        buckets[key].append(row)

    out: list[dict[str, Any]] = []
    for lrow in left_rows:
        try:
            key = tuple(lrow[c] for c in on)
        except KeyError as exc:
            raise UnknownColumnError(f"join references unknown column {exc} in left relation") from exc
        for rrow in buckets.get(key, ()):
            combined = dict(lrow)
            for name, value in rrow.items():
                if name in on:
                    continue
                if name in combined:
                    combined[f"{name}{suffix}"] = value
                else:
                    combined[name] = value
            out.append(combined)
    return out


def group_by(relation: Table | Rows, columns: Sequence[str]) -> dict[tuple[Any, ...], list[dict[str, Any]]]:
    """Group rows by the values of ``columns``; returns ``{key_tuple: rows}``."""
    groups: dict[tuple[Any, ...], list[dict[str, Any]]] = defaultdict(list)
    for row in _as_rows(relation):
        try:
            key = tuple(row[c] for c in columns)
        except KeyError as exc:
            raise UnknownColumnError(f"group_by references unknown column {exc}") from exc
        groups[key].append(dict(row))
    return dict(groups)


def aggregate(
    relation: Table | Rows,
    columns: Sequence[str],
    aggregations: Mapping[str, Callable[[list[dict[str, Any]]], Any]],
) -> list[dict[str, Any]]:
    """Group by ``columns`` and apply each aggregation to the group's rows.

    ``aggregations`` maps output column names to callables receiving the list
    of rows in the group.
    """
    out: list[dict[str, Any]] = []
    for key, rows in group_by(relation, columns).items():
        record = dict(zip(columns, key))
        for name, fn in aggregations.items():
            record[name] = fn(rows)
        out.append(record)
    return out


def order_by(
    relation: Table | Rows,
    columns: Sequence[str],
    descending: bool = False,
) -> list[dict[str, Any]]:
    """Return rows sorted by ``columns``."""
    rows = [dict(row) for row in _as_rows(relation)]

    def sort_key(row: Mapping[str, Any]) -> tuple[Any, ...]:
        try:
            return tuple(row[c] for c in columns)
        except KeyError as exc:
            raise UnknownColumnError(f"order_by references unknown column {exc}") from exc

    return sorted(rows, key=sort_key, reverse=descending)

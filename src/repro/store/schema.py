"""Table schemas for the in-memory relational store.

A :class:`Schema` is an ordered collection of typed :class:`Column`
definitions plus an optional primary-key / unique-key declaration.  Schemas
validate rows before they are stored so that downstream code can rely on
column presence and types.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.exceptions import SchemaError

__all__ = ["Column", "Schema"]


@dataclass(frozen=True, slots=True)
class Column:
    """A single typed column of a table schema.

    Attributes
    ----------
    name:
        Column name.  Must be a non-empty string, unique within its schema.
    dtype:
        Python type (or tuple of types) values must be instances of.
        ``object`` accepts anything.
    nullable:
        Whether ``None`` is an accepted value.
    """

    name: str
    dtype: type | tuple[type, ...] = object
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"column name must be a non-empty string, got {self.name!r}")

    def validate(self, value: Any) -> None:
        """Raise :class:`SchemaError` if ``value`` is not valid for this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return
        if self.dtype is object:
            return
        if not isinstance(value, self.dtype):
            raise SchemaError(
                f"column {self.name!r} expects {self.dtype!r}, got {type(value).__name__}: {value!r}"
            )


@dataclass(frozen=True)
class Schema:
    """An ordered, typed table schema with optional key constraints.

    Attributes
    ----------
    columns:
        Ordered sequence of :class:`Column` definitions.
    key:
        Optional tuple of column names forming a unique key for the table.
        Rows with a duplicate key are rejected on insert.
    """

    columns: tuple[Column, ...]
    key: tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        if not names:
            raise SchemaError("a schema must declare at least one column")
        for key_col in self.key:
            if key_col not in names:
                raise SchemaError(f"key column {key_col!r} is not a schema column")

    # -- construction helpers -------------------------------------------------
    @classmethod
    def of(
        cls,
        columns: Iterable[Column | str | tuple[str, type]],
        key: Sequence[str] = (),
    ) -> "Schema":
        """Build a schema from a mixed iterable of column specifications.

        Each element may be a :class:`Column`, a bare column name (typed as
        ``object``), or a ``(name, dtype)`` pair.
        """
        cols: list[Column] = []
        for spec in columns:
            if isinstance(spec, Column):
                cols.append(spec)
            elif isinstance(spec, str):
                cols.append(Column(spec))
            elif isinstance(spec, tuple) and len(spec) == 2:
                cols.append(Column(spec[0], spec[1]))
            else:
                raise SchemaError(f"unsupported column specification: {spec!r}")
        return cls(columns=tuple(cols), key=tuple(key))

    # -- introspection --------------------------------------------------------
    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of the schema columns, in declaration order."""
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        """Return the :class:`Column` named ``name``.

        Raises
        ------
        SchemaError
            If no such column exists.
        """
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"unknown column {name!r}; schema has {self.column_names}")

    def __contains__(self, name: object) -> bool:
        return any(c.name == name for c in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    # -- validation ------------------------------------------------------------
    def validate_row(self, row: Mapping[str, Any]) -> dict[str, Any]:
        """Validate ``row`` against this schema and return a normalised dict.

        The returned dict contains exactly the schema columns in schema order.
        Missing non-nullable columns and unexpected extra columns raise
        :class:`SchemaError`.
        """
        extra = set(row) - set(self.column_names)
        if extra:
            raise SchemaError(f"row has unknown columns {sorted(extra)}; schema has {self.column_names}")
        normalised: dict[str, Any] = {}
        for col in self.columns:
            value = row.get(col.name)
            if col.name not in row:
                if not col.nullable:
                    raise SchemaError(f"row is missing non-nullable column {col.name!r}")
                value = None
            col.validate(value)
            normalised[col.name] = value
        return normalised

    def key_of(self, row: Mapping[str, Any]) -> tuple[Any, ...] | None:
        """Return the key tuple of ``row``, or ``None`` when no key is declared."""
        if not self.key:
            return None
        return tuple(row[name] for name in self.key)

"""Disk-backed storage backends for the out-of-core claim store.

The in-memory :class:`~repro.store.Table` / :class:`~repro.store.HashIndex`
modules are the library's *working-set* tier; this module is the seam to the
*disk* tier.  :class:`StorageBackend` pins down the narrow DB-API 2.0 surface
:class:`~repro.store.claims.ClaimStore` actually needs — execute, batched
``executemany``, chunked row streaming, transactions — so any conforming
driver can back a claim store.  :class:`SQLiteBackend` is the bundled default
(stdlib ``sqlite3``): append-optimised with WAL journaling, so concurrent
readers (shard workers, a serving fit) stream index ranges while a single
writer appends.

Schema DDL and versioning live with the store that owns the tables
(:mod:`repro.store.claims`); the backend is storage, not schema.
"""

from __future__ import annotations

import abc
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator, Sequence

from repro.exceptions import StoreError

__all__ = ["StorageBackend", "SQLiteBackend"]

#: Rows fetched per round-trip when streaming a query result.
DEFAULT_CHUNK_ROWS = 4096


class StorageBackend(abc.ABC):
    """The DB-API 2.0 surface a :class:`~repro.store.claims.ClaimStore` uses.

    Implementations own exactly one connection.  SQL is written with the
    backend's :attr:`placeholder` parameter marker, so a ``qmark`` and a
    ``format`` driver can both plug in without string surgery in the store.
    """

    #: DB-API parameter marker of the driver (``"?"`` for sqlite3).
    placeholder: str = "?"

    @abc.abstractmethod
    def execute(self, sql: str, params: Sequence[Any] = ()) -> Any:
        """Run one statement and return its cursor."""

    @abc.abstractmethod
    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> None:
        """Run one statement against every row of ``rows`` (batched ingest)."""

    @abc.abstractmethod
    def commit(self) -> None:
        """Commit the current transaction."""

    @abc.abstractmethod
    def rollback(self) -> None:
        """Roll back the current transaction."""

    @abc.abstractmethod
    def close(self) -> None:
        """Close the connection (idempotent)."""

    def fetch_one(self, sql: str, params: Sequence[Any] = ()) -> tuple | None:
        """Run ``sql`` and return its first row (or ``None``)."""
        cursor = self.execute(sql, params)
        try:
            return cursor.fetchone()
        finally:
            cursor.close()

    def iter_rows(
        self,
        sql: str,
        params: Sequence[Any] = (),
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> Iterator[tuple]:
        """Stream the result of ``sql`` in ``chunk_rows``-sized fetches.

        This is the out-of-core read path: peak memory is one fetch chunk,
        never the full result set.
        """
        cursor = self.execute(sql, params)
        try:
            while True:
                rows = cursor.fetchmany(chunk_rows)
                if not rows:
                    return
                yield from rows
        finally:
            cursor.close()

    def begin(self) -> None:
        """Open an explicit transaction.

        Connections run in autocommit between transactions (so PRAGMAs and
        VACUUM work unwrapped); :meth:`transaction` brackets multi-statement
        work with an explicit ``BEGIN`` to make it atomic.
        """
        self.execute("BEGIN").close()

    @contextmanager
    def transaction(self) -> Iterator["StorageBackend"]:
        """Group statements into one transaction (commit / rollback on error)."""
        self.begin()
        try:
            yield self
        except BaseException:
            self.rollback()
            raise
        self.commit()

    def __enter__(self) -> "StorageBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class SQLiteBackend(StorageBackend):
    """The bundled stdlib ``sqlite3`` backend.

    Opened connections are tuned for the claim store's append-heavy,
    scan-heavy workload:

    * ``journal_mode=WAL`` — appends do not block index-range readers (and a
      read-only worker never blocks the writer);
    * ``synchronous=NORMAL`` — fsync per WAL checkpoint, not per commit (the
      standard WAL pairing; an OS crash can lose the tail of the log but
      never corrupts the store);
    * a larger page cache for index scans.

    Parameters
    ----------
    path:
        Database file (created on first write), or ``":memory:"`` for an
        ephemeral in-memory store (tests).
    read_only:
        Open via SQLite's ``mode=ro`` URI — writes fail, the file must
        exist, and many processes can scan the same store concurrently
        (how shard workers read their entity ranges).
    timeout:
        Seconds a statement waits on a locked database before failing.
    """

    placeholder = "?"

    def __init__(
        self,
        path: str | Path,
        *,
        read_only: bool = False,
        timeout: float = 30.0,
    ):
        self.path = str(path)
        self.read_only = bool(read_only)
        if self.path == ":memory:":
            if read_only:
                raise StoreError("an in-memory store cannot be opened read-only")
            target, uri = self.path, False
        elif read_only:
            if not Path(self.path).exists():
                raise StoreError(f"claim store {self.path!r} does not exist")
            target, uri = f"file:{Path(self.path).as_posix()}?mode=ro", True
        else:
            target, uri = self.path, False
        try:
            self._connection: sqlite3.Connection | None = sqlite3.connect(
                target, timeout=timeout, uri=uri, isolation_level=None
            )
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open claim store {self.path!r}: {exc}") from exc
        cursor = self._connection.cursor()
        try:
            if not read_only and self.path != ":memory:":
                cursor.execute("PRAGMA journal_mode=WAL")
                cursor.execute("PRAGMA synchronous=NORMAL")
            cursor.execute("PRAGMA cache_size=-16384")  # 16 MiB of pages
        finally:
            cursor.close()

    # -- DB-API surface ---------------------------------------------------------------
    def _require_connection(self) -> sqlite3.Connection:
        if self._connection is None:
            raise StoreError(f"claim store {self.path!r} is closed")
        return self._connection

    def execute(self, sql: str, params: Sequence[Any] = ()) -> sqlite3.Cursor:
        try:
            return self._require_connection().execute(sql, params)
        except sqlite3.Error as exc:
            raise StoreError(f"claim store {self.path!r}: {exc}") from exc

    def executemany(self, sql: str, rows: Iterable[Sequence[Any]]) -> None:
        try:
            self._require_connection().executemany(sql, rows).close()
        except sqlite3.Error as exc:
            raise StoreError(f"claim store {self.path!r}: {exc}") from exc

    def commit(self) -> None:
        try:
            self._require_connection().commit()
        except sqlite3.Error as exc:
            raise StoreError(f"claim store {self.path!r}: {exc}") from exc

    def rollback(self) -> None:
        if self._connection is not None:
            self._connection.rollback()

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "ro" if self.read_only else "rw"
        return f"SQLiteBackend(path={self.path!r}, mode={mode!r})"

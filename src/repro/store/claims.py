"""Disk-backed, append-only claim store with indexed entity scans.

This is the out-of-core tier of the storage engine: the in-memory
:class:`~repro.store.Table`/:class:`~repro.store.HashIndex` substrate holds a
working set, :class:`ClaimStore` holds the corpus.  Triples land in an
append-only ``claims`` log (one *generation* per ``append`` call) with
covering indexes on entity and source, so the two access patterns the LTM
pipeline needs —

* full-corpus replay in ingest order (``iter_triples``), and
* entity-grouped range reads (``iter_entities`` / ``entity_triples``), the
  scans :class:`~repro.io.store_source.StoreSource` and the shard planner
  stream instead of materialising the corpus —

are both pure index scans, never an in-memory sort.  Windowed retention
(:meth:`ClaimStore.compact`) evicts old generations so streaming re-fits run
against a bounded working set.

The schema is versioned (``store_meta.schema_version``) and lives here, with
the store that owns it; raw connection handling lives in
:mod:`repro.store.backend`.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import StoreError
from repro.obs import engine_metrics, get_tracer
from repro.store.backend import DEFAULT_CHUNK_ROWS, SQLiteBackend, StorageBackend
from repro.types import EntityKey, Triple

__all__ = ["ClaimStore", "SCHEMA_VERSION"]

#: Current on-disk schema version, recorded in ``store_meta``.
SCHEMA_VERSION = 1

#: Rows per ``executemany`` flush during ingest.
DEFAULT_APPEND_BATCH = 10_000

# ``seq`` is assigned explicitly by the single writer so replay order is the
# store's own fact, not an autoincrement implementation detail.  Attribute
# values are stored as text (matching the file-source convention that CSV
# round-trips stringify values) so scans are deterministic across drivers
# regardless of column affinity.
_SCHEMA_DDL = (
    """
    CREATE TABLE IF NOT EXISTS store_meta (
        key TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS claims (
        seq INTEGER PRIMARY KEY,
        entity TEXT NOT NULL,
        attribute TEXT NOT NULL,
        source TEXT NOT NULL,
        generation INTEGER NOT NULL,
        ingested_at REAL NOT NULL
    )
    """,
    # Covering index: an entity range read never touches the base table.
    """
    CREATE INDEX IF NOT EXISTS idx_claims_entity
        ON claims(entity, seq, attribute, source)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_claims_source
        ON claims(source, seq)
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_claims_generation
        ON claims(generation)
    """,
    # First-seen entity order as a materialised fact: ``ORDER BY first_seq``
    # over this covering index is an index scan, so batch order matches the
    # in-memory sources without ever sorting triples.
    """
    CREATE TABLE IF NOT EXISTS entities (
        entity TEXT PRIMARY KEY,
        first_seq INTEGER NOT NULL
    )
    """,
    """
    CREATE INDEX IF NOT EXISTS idx_entities_first_seq
        ON entities(first_seq, entity)
    """,
)


class ClaimStore:
    """Append-only relational store of ``(entity, attribute, source)`` claims.

    Parameters
    ----------
    path:
        SQLite database file (``":memory:"`` for tests), ignored when an
        explicit ``backend`` is supplied.
    read_only:
        Open for concurrent scanning only (shard workers); writes raise.
    backend:
        A pre-built :class:`~repro.store.backend.StorageBackend` to use
        instead of the bundled SQLite one (pluggable DB-API seam).
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        *,
        read_only: bool = False,
        backend: StorageBackend | None = None,
    ):
        self.path = str(path)
        self.read_only = bool(read_only)
        if backend is not None:
            self._backend = backend
        else:
            self._backend = SQLiteBackend(self.path, read_only=read_only)
        if read_only:
            self._check_schema_version()
        else:
            self._ensure_schema()

    # -- schema ------------------------------------------------------------------------
    def _ensure_schema(self) -> None:
        with self._backend.transaction() as txn:
            for statement in _SCHEMA_DDL:
                txn.execute(statement)
            row = txn.fetch_one(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            )
            if row is None:
                txn.execute(
                    "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            else:
                self._migrate(int(row[0]))

    def _check_schema_version(self) -> None:
        try:
            row = self._backend.fetch_one(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            )
        except StoreError as exc:
            # e.g. a foreign SQLite file without the store_meta table.
            raise StoreError(
                f"{self.path!r} is not a claim store (no store_meta): {exc}"
            ) from exc
        if row is None:
            raise StoreError(f"{self.path!r} is not a claim store (no store_meta)")
        self._migrate(int(row[0]))

    def _migrate(self, found: int) -> None:
        # Single-version schema today; the hook is where v(N) -> v(N+1)
        # upgrades slot in without changing callers.
        if found != SCHEMA_VERSION:
            raise StoreError(
                f"claim store {self.path!r} has schema version {found}, "
                f"this build supports version {SCHEMA_VERSION}"
            )

    # -- ingest ------------------------------------------------------------------------
    def append(
        self,
        triples: Iterable[Triple | Sequence[object]],
        *,
        batch_size: int = DEFAULT_APPEND_BATCH,
    ) -> int:
        """Append ``triples`` as one new generation; return the row count.

        The iterable is consumed streamingly — at most ``batch_size`` rows
        are buffered between ``executemany`` flushes, so a generator over an
        arbitrarily large corpus never materialises.  Duplicate triples are
        kept (the log records assertions; claim-matrix construction dedups),
        and attribute values are stringified exactly as the CSV round-trip
        does.
        """
        if self.read_only:
            raise StoreError(f"claim store {self.path!r} is read-only")
        if batch_size <= 0:
            raise StoreError(f"batch_size must be positive, got {batch_size}")
        tracer = get_tracer()
        span_start = tracer.now()
        started = time.perf_counter()
        generation = self.latest_generation() + 1
        next_seq = self._next_seq()
        now = time.time()
        appended = 0
        insert_sql = (
            "INSERT INTO claims (seq, entity, attribute, source, generation,"
            " ingested_at) VALUES (?, ?, ?, ?, ?, ?)"
        )
        entity_sql = (
            "INSERT OR IGNORE INTO entities (entity, first_seq) VALUES (?, ?)"
        )
        with self._backend.transaction() as txn:
            buffer: list[tuple] = []
            entity_buffer: list[tuple] = []
            for item in triples:
                if isinstance(item, Triple):
                    entity, attribute, source = item.entity, item.attribute, item.source
                else:
                    entity, attribute, source = item
                seq = next_seq + appended
                buffer.append(
                    (seq, str(entity), str(attribute), str(source), generation, now)
                )
                entity_buffer.append((str(entity), seq))
                appended += 1
                if len(buffer) >= batch_size:
                    txn.executemany(insert_sql, buffer)
                    txn.executemany(entity_sql, entity_buffer)
                    buffer.clear()
                    entity_buffer.clear()
            if buffer:
                txn.executemany(insert_sql, buffer)
                txn.executemany(entity_sql, entity_buffer)
        metrics = engine_metrics()
        metrics.store_rows.inc(appended, op="append")
        metrics.store_op_seconds.observe(time.perf_counter() - started, op="append")
        if tracer.enabled:
            tracer.record(
                "store.append",
                span_start,
                end=tracer.now(),
                path=self.path,
                rows=appended,
                generation=generation,
            )
        return appended

    def _next_seq(self) -> int:
        row = self._backend.fetch_one("SELECT MAX(seq) FROM claims")
        return 0 if row is None or row[0] is None else int(row[0]) + 1

    def latest_generation(self) -> int:
        """Highest generation currently in the log (0 when empty)."""
        row = self._backend.fetch_one("SELECT MAX(generation) FROM claims")
        return 0 if row is None or row[0] is None else int(row[0])

    # -- scans -------------------------------------------------------------------------
    def __len__(self) -> int:
        row = self._backend.fetch_one("SELECT COUNT(*) FROM claims")
        return 0 if row is None else int(row[0])

    def iter_triples(self, *, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[Triple]:
        """Replay the log in ingest (``seq``) order, streaming in chunks."""
        for entity, attribute, source in self._backend.iter_rows(
            "SELECT entity, attribute, source FROM claims ORDER BY seq",
            chunk_rows=chunk_size,
        ):
            yield Triple(entity=entity, attribute=attribute, source=source)

    def iter_entities(self, *, chunk_size: int = DEFAULT_CHUNK_ROWS) -> Iterator[EntityKey]:
        """Stream distinct entities in first-seen order (covering index scan)."""
        for (entity,) in self._backend.iter_rows(
            "SELECT entity FROM entities ORDER BY first_seq",
            chunk_rows=chunk_size,
        ):
            yield entity

    def num_entities(self) -> int:
        row = self._backend.fetch_one("SELECT COUNT(*) FROM entities")
        return 0 if row is None else int(row[0])

    def triples_of(self, entity: EntityKey) -> list[Triple]:
        """All claims about one entity, in ingest order (index range read)."""
        return [
            Triple(entity=row[0], attribute=row[1], source=row[2])
            for row in self._backend.iter_rows(
                "SELECT entity, attribute, source FROM claims"
                " WHERE entity = ? ORDER BY seq",
                (str(entity),),
            )
        ]

    def entity_triples(self, entities: Sequence[EntityKey]) -> list[Triple]:
        """Claims for a shard's entity list, grouped per entity.

        Each entity resolves through one ``idx_claims_entity`` range read;
        concatenation order follows the given ``entities`` order, matching
        how the in-memory planner lays out a shard's triples.
        """
        rows: list[Triple] = []
        for entity in entities:
            rows.extend(self.triples_of(entity))
        return rows

    def generations(self) -> list[Mapping[str, object]]:
        """Per-generation row counts and ingest timestamps, oldest first."""
        return [
            {
                "generation": int(gen),
                "rows": int(rows),
                "ingested_at": float(stamp),
            }
            for gen, rows, stamp in self._backend.iter_rows(
                "SELECT generation, COUNT(*), MIN(ingested_at) FROM claims"
                " GROUP BY generation ORDER BY generation"
            )
        ]

    def stats(self) -> Mapping[str, object]:
        """Summary counters for ``repro-truth store stats``."""
        sources = self._backend.fetch_one("SELECT COUNT(DISTINCT source) FROM claims")
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "triples": len(self),
            "entities": self.num_entities(),
            "sources": 0 if sources is None else int(sources[0]),
            "generations": self.latest_generation(),
        }

    # -- retention ---------------------------------------------------------------------
    def compact(
        self,
        *,
        keep_last: int | None = None,
        older_than: float | None = None,
    ) -> int:
        """Evict old claims and reclaim space; return rows deleted.

        ``keep_last=N`` keeps only the N most recent generations (windowed
        retention for streaming re-fits); ``older_than=T`` drops rows whose
        ``ingested_at`` is before the UNIX timestamp ``T`` (time-window
        eviction).  Passing both applies both cuts.  The ``entities``
        first-seen table is rebuilt from the surviving log so batch order
        stays consistent, then the file is vacuumed.
        """
        if self.read_only:
            raise StoreError(f"claim store {self.path!r} is read-only")
        if keep_last is None and older_than is None:
            raise StoreError("compact() needs keep_last and/or older_than")
        if keep_last is not None and keep_last < 1:
            raise StoreError(f"keep_last must be >= 1, got {keep_last}")
        tracer = get_tracer()
        span_start = tracer.now()
        started = time.perf_counter()
        deleted = 0
        with self._backend.transaction() as txn:
            if keep_last is not None:
                cutoff = self.latest_generation() - keep_last
                cursor = txn.execute(
                    "DELETE FROM claims WHERE generation <= ?", (cutoff,)
                )
                deleted += cursor.rowcount
                cursor.close()
            if older_than is not None:
                cursor = txn.execute(
                    "DELETE FROM claims WHERE ingested_at < ?", (float(older_than),)
                )
                deleted += cursor.rowcount
                cursor.close()
            txn.execute("DELETE FROM entities")
            txn.execute(
                "INSERT INTO entities (entity, first_seq)"
                " SELECT entity, MIN(seq) FROM claims GROUP BY entity"
            )
        if deleted:
            self._backend.execute("VACUUM").close()
        metrics = engine_metrics()
        metrics.store_rows.inc(deleted, op="deleted")
        metrics.store_op_seconds.observe(time.perf_counter() - started, op="compact")
        if tracer.enabled:
            tracer.record(
                "store.compact", span_start, end=tracer.now(), path=self.path, rows=deleted
            )
        return deleted

    # -- lifecycle ---------------------------------------------------------------------
    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "ClaimStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "ro" if self.read_only else "rw"
        return f"ClaimStore(path={self.path!r}, mode={mode!r})"

"""Hash indexes over table columns.

A :class:`HashIndex` maps the value(s) of one or more columns to the list of
row positions holding those values.  Indexes are maintained incrementally by
:class:`repro.store.table.Table` on insert and delete, and are used by the
claim-construction pipeline to look up, for example, all sources that asserted
anything about a given entity.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Iterable, Mapping

from repro.exceptions import UnknownColumnError

__all__ = ["HashIndex"]


class HashIndex:
    """An in-memory hash index over one or more columns of a table.

    Parameters
    ----------
    columns:
        Names of the indexed columns.  Lookups use a tuple of values in the
        same order (a single value may be passed for single-column indexes).
    """

    def __init__(self, columns: Iterable[str]):
        self.columns: tuple[str, ...] = tuple(columns)
        if not self.columns:
            raise UnknownColumnError("an index must cover at least one column")
        self._buckets: dict[tuple[Any, ...], list[int]] = defaultdict(list)

    # -- maintenance ----------------------------------------------------------
    def _key_for(self, row: Mapping[str, Any]) -> tuple[Any, ...]:
        try:
            return tuple(row[c] for c in self.columns)
        except KeyError as exc:  # pragma: no cover - defensive
            raise UnknownColumnError(f"row missing indexed column {exc}") from exc

    def add(self, position: int, row: Mapping[str, Any]) -> None:
        """Register ``row`` stored at ``position`` in the index."""
        self._buckets[self._key_for(row)].append(position)

    def remove(self, position: int, row: Mapping[str, Any]) -> None:
        """Remove the entry for ``row`` stored at ``position``."""
        key = self._key_for(row)
        bucket = self._buckets.get(key)
        if bucket is None:
            return
        try:
            bucket.remove(position)
        except ValueError:
            return
        if not bucket:
            del self._buckets[key]

    def rebuild(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Discard the index contents and rebuild from ``rows``."""
        self._buckets.clear()
        for position, row in enumerate(rows):
            self.add(position, row)

    # -- lookups ---------------------------------------------------------------
    def _normalise_key(self, key: Any) -> tuple[Any, ...]:
        if isinstance(key, tuple):
            return key
        return (key,)

    def lookup(self, key: Any) -> list[int]:
        """Return the row positions whose indexed columns equal ``key``."""
        return list(self._buckets.get(self._normalise_key(key), ()))

    def __contains__(self, key: object) -> bool:
        return self._normalise_key(key) in self._buckets

    def keys(self) -> list[tuple[Any, ...]]:
        """Return all distinct key tuples present in the index."""
        return list(self._buckets.keys())

    def __len__(self) -> int:
        return len(self._buckets)

"""A named collection of tables.

:class:`Database` is the integration workspace: the pipeline registers the raw
triple table, the derived fact table, the claim table and the output truth
table under well-known names so that examples and tests can inspect every
intermediate product of the integration run.
"""

from __future__ import annotations

from typing import Iterator

from repro.exceptions import StoreError
from repro.store.schema import Schema
from repro.store.table import Table

__all__ = ["Database"]


class Database:
    """A dictionary of named :class:`~repro.store.table.Table` objects."""

    def __init__(self, name: str = "repro"):
        self.name = name
        self._tables: dict[str, Table] = {}

    # -- table management ------------------------------------------------------
    def create_table(self, name: str, schema: Schema, replace: bool = False) -> Table:
        """Create a table called ``name`` with ``schema``.

        Raises
        ------
        StoreError
            If a table with the same name already exists and ``replace`` is
            false.
        """
        if name in self._tables and not replace:
            raise StoreError(f"database {self.name!r} already has a table named {name!r}")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def attach(self, table: Table, replace: bool = False) -> Table:
        """Register an existing :class:`Table` under its own name."""
        if table.name in self._tables and not replace:
            raise StoreError(f"database {self.name!r} already has a table named {table.name!r}")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove the table called ``name`` (missing tables are ignored)."""
        self._tables.pop(name, None)

    def table(self, name: str) -> Table:
        """Return the table called ``name``.

        Raises
        ------
        StoreError
            If the table does not exist.
        """
        try:
            return self._tables[name]
        except KeyError as exc:
            raise StoreError(
                f"database {self.name!r} has no table {name!r}; tables: {sorted(self._tables)}"
            ) from exc

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        """Names of all tables, in creation order."""
        return list(self._tables)

    def summary(self) -> dict[str, int]:
        """Return ``{table_name: row_count}`` for every table."""
        return {name: len(table) for name, table in self._tables.items()}

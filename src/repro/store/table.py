"""Row-oriented tables with schema validation, keys and secondary indexes."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import DuplicateKeyError, UnknownColumnError
from repro.store.index import HashIndex
from repro.store.schema import Schema

__all__ = ["Table"]


class Table:
    """An in-memory table: an ordered collection of schema-validated rows.

    Rows are plain dicts keyed by column name.  The table enforces the
    schema's unique key (if any), and maintains any secondary
    :class:`~repro.store.index.HashIndex` created through
    :meth:`create_index`.

    Parameters
    ----------
    name:
        Table name, used in error messages and by :class:`~repro.store.database.Database`.
    schema:
        The :class:`~repro.store.schema.Schema` rows must conform to.
    """

    def __init__(self, name: str, schema: Schema):
        self.name = name
        self.schema = schema
        self._rows: list[dict[str, Any]] = []
        self._key_index: dict[tuple[Any, ...], int] = {}
        self._indexes: dict[str, HashIndex] = {}

    # -- basic protocol --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._rows)

    def __getitem__(self, position: int) -> dict[str, Any]:
        return self._rows[position]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table(name={self.name!r}, rows={len(self._rows)}, columns={self.schema.column_names})"

    @property
    def rows(self) -> Sequence[Mapping[str, Any]]:
        """A read-only view of the stored rows."""
        return tuple(self._rows)

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return self.schema.column_names

    # -- mutation ---------------------------------------------------------------
    def insert(self, row: Mapping[str, Any]) -> int:
        """Validate and insert ``row``; return its position.

        Raises
        ------
        SchemaError
            If the row does not match the schema.
        DuplicateKeyError
            If the schema declares a key and the row's key already exists.
        """
        normalised = self.schema.validate_row(row)
        key = self.schema.key_of(normalised)
        if key is not None and key in self._key_index:
            raise DuplicateKeyError(
                f"table {self.name!r} already contains a row with key {key!r}"
            )
        position = len(self._rows)
        self._rows.append(normalised)
        if key is not None:
            self._key_index[key] = position
        for index in self._indexes.values():
            index.add(position, normalised)
        return position

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert every row of ``rows``; return their positions."""
        return [self.insert(row) for row in rows]

    def upsert(self, row: Mapping[str, Any]) -> int:
        """Insert ``row``, replacing an existing row with the same key."""
        normalised = self.schema.validate_row(row)
        key = self.schema.key_of(normalised)
        if key is not None and key in self._key_index:
            position = self._key_index[key]
            old = self._rows[position]
            for index in self._indexes.values():
                index.remove(position, old)
                index.add(position, normalised)
            self._rows[position] = normalised
            return position
        return self.insert(normalised)

    def clear(self) -> None:
        """Remove all rows (indexes are kept but emptied)."""
        self._rows.clear()
        self._key_index.clear()
        for index in self._indexes.values():
            index.rebuild(())

    # -- lookups ----------------------------------------------------------------
    def get(self, key: tuple[Any, ...] | Any) -> dict[str, Any] | None:
        """Return the row with primary key ``key``, or ``None`` if absent."""
        if not isinstance(key, tuple):
            key = (key,)
        position = self._key_index.get(key)
        if position is None:
            return None
        return self._rows[position]

    def contains_key(self, key: tuple[Any, ...] | Any) -> bool:
        """Whether a row with primary key ``key`` exists."""
        return self.get(key) is not None

    def create_index(self, name: str, columns: Iterable[str]) -> HashIndex:
        """Create (or replace) a secondary hash index over ``columns``."""
        for column in columns:
            if column not in self.schema:
                raise UnknownColumnError(
                    f"cannot index unknown column {column!r} on table {self.name!r}"
                )
        index = HashIndex(columns)
        index.rebuild(self._rows)
        self._indexes[name] = index
        return index

    def index(self, name: str) -> HashIndex:
        """Return the secondary index registered under ``name``."""
        try:
            return self._indexes[name]
        except KeyError as exc:
            raise UnknownColumnError(f"table {self.name!r} has no index {name!r}") from exc

    def lookup(self, index_name: str, key: Any) -> list[dict[str, Any]]:
        """Return the rows matching ``key`` in the secondary index ``index_name``."""
        positions = self.index(index_name).lookup(key)
        return [self._rows[p] for p in positions]

    # -- scanning ---------------------------------------------------------------
    def scan(
        self, predicate: Callable[[Mapping[str, Any]], bool] | None = None
    ) -> Iterator[dict[str, Any]]:
        """Yield rows, optionally filtered by ``predicate``."""
        if predicate is None:
            yield from self._rows
            return
        for row in self._rows:
            if predicate(row):
                yield row

    def column(self, name: str) -> list[Any]:
        """Return the values of column ``name`` for every row, in order."""
        if name not in self.schema:
            raise UnknownColumnError(f"table {self.name!r} has no column {name!r}")
        return [row[name] for row in self._rows]

    def distinct(self, name: str) -> list[Any]:
        """Return the distinct values of column ``name`` in first-seen order."""
        seen: dict[Any, None] = {}
        for value in self.column(name):
            seen.setdefault(value, None)
        return list(seen)

    def to_records(self) -> list[tuple[Any, ...]]:
        """Return rows as tuples in schema column order."""
        names = self.schema.column_names
        return [tuple(row[c] for c in names) for row in self._rows]

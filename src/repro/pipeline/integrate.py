"""The batch integration flow: raw triples in, merged records out.

:func:`run_integration` is the canonical end-to-end entry point: it resolves
the input through :func:`repro.io.as_source` (so catalog keys, files, tables
and in-memory triples all work), builds the claim matrix, hands it to the
unified :class:`~repro.engine.TruthEngine` for fitting and thresholding, and
optionally materialises the intermediate relational tables as a debug
workspace.  :func:`repro.discover` wraps it in one line.

With an :class:`~repro.engine.ExecutionConfig` of ``num_shards > 1`` the fit
runs entity-sharded through :mod:`repro.parallel` (the historical
``IntegrationPipeline`` class shim was removed in 1.4 after its two-PR
deprecation window; use :func:`run_integration` or
:class:`~repro.engine.TruthEngine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable

from repro.core.base import SourceQualityTable, TruthMethod, TruthResult
from repro.core.model import LatentTruthModel
from repro.data.claim_builder import ClaimTableBuilder, build_claim_matrix
from repro.data.dataset import ClaimMatrix
from repro.data.raw import RawDatabase
from repro.engine.config import EngineConfig, ExecutionConfig
from repro.engine.facade import TruthEngine
from repro.engine.registry import default_registry
from repro.exceptions import ConfigurationError
from repro.store import Column, Database, Schema
from repro.types import Triple

__all__ = ["IntegrationResult", "run_integration"]


@dataclass
class IntegrationResult:
    """Everything produced by one integration run.

    Attributes
    ----------
    merged_records:
        Mapping of entity to the attribute values accepted as true.
    rejected_records:
        Mapping of entity to the asserted attribute values rejected as false.
    fact_scores:
        Mapping of ``(entity, attribute)`` to the inferred truth probability.
    source_quality:
        Per-source quality table, when the method provides one.
    truth_result:
        The raw solver output.
    claims:
        The claim matrix the solver was fitted on.
    workspace:
        A relational :class:`~repro.store.Database` holding the raw, fact,
        claim and truth tables of the run (for inspection and debugging).
    """

    merged_records: dict[str, list[str]] = field(default_factory=dict)
    rejected_records: dict[str, list[str]] = field(default_factory=dict)
    fact_scores: dict[tuple[str, str], float] = field(default_factory=dict)
    source_quality: SourceQualityTable | None = None
    truth_result: TruthResult | None = None
    claims: ClaimMatrix | None = None
    workspace: Database | None = None

    def accepted_values(self, entity: str) -> list[str]:
        """Accepted attribute values of ``entity`` (empty when unknown)."""
        return list(self.merged_records.get(entity, ()))

    def num_accepted(self) -> int:
        """Total number of accepted facts."""
        return sum(len(values) for values in self.merged_records.values())

    def num_rejected(self) -> int:
        """Total number of rejected facts."""
        return sum(len(values) for values in self.rejected_records.values())


def run_integration(
    data: "Iterable[Triple | tuple] | RawDatabase | str | Any",
    *,
    method: TruthMethod | str | None = None,
    threshold: float = 0.5,
    keep_workspace: bool = False,
    execution: ExecutionConfig | None = None,
    **method_params: Any,
) -> IntegrationResult:
    """Run the full integration flow and return an :class:`IntegrationResult`.

    Parameters
    ----------
    data:
        The assertions to integrate: raw triples, a
        :class:`~repro.data.raw.RawDatabase`, any
        :class:`~repro.io.base.DataSource`, or a dataset-catalog key / file
        path (resolved through :func:`repro.io.as_source`).
    method:
        The truth-finding method: a :class:`~repro.core.base.TruthMethod`
        instance, a registry key such as ``"voting"`` (resolved through
        :func:`repro.engine.default_registry` and built with
        ``method_params``), or ``None`` for
        :class:`~repro.core.model.LatentTruthModel` with library defaults.
    threshold:
        Truth-probability threshold above which a fact is accepted into the
        merged records.
    keep_workspace:
        Whether to materialise the intermediate relational tables in the
        result's ``workspace`` database (useful for debugging, costs memory).
    execution:
        Optional :class:`~repro.engine.ExecutionConfig`; with
        ``num_shards > 1`` the fit runs entity-sharded through
        :mod:`repro.parallel` (requires a string ``method`` key — shard
        workers resolve the solver through the registry).
    **method_params:
        Hyperparameters for registry construction when ``method`` is a
        string (e.g. ``iterations``, ``seed``).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ConfigurationError("threshold must lie in [0, 1]")

    if execution is not None and execution.sharded:
        return _run_sharded_integration(
            data,
            method=method,
            threshold=threshold,
            keep_workspace=keep_workspace,
            execution=execution,
            method_params=method_params,
        )

    if isinstance(method, str):
        method = default_registry().create(method, **method_params)
    elif method_params:
        raise ConfigurationError(
            "method hyperparameters are only accepted with a string method name"
        )
    solver = method if method is not None else LatentTruthModel()

    # Every input style — raw databases, tables, datasets, catalog keys,
    # files, plain iterables — goes through the one coercion layer, so none
    # can fall through to a wrong interpretation.  The vectorized bulk path
    # builds the claim matrix; the per-row RawDatabase and relational views
    # are only materialised when the debug workspace is wanted.
    if isinstance(data, RawDatabase):
        raw: RawDatabase | None = data
        raw.require_non_empty()
        claims = build_claim_matrix(raw)
    else:
        from repro.io.catalog import as_source  # lazy: repro.io builds on the engine

        source = as_source(data)
        raw = source.to_raw(strict=False) if keep_workspace else None
        claims = build_claim_matrix(raw) if raw is not None else source.to_claim_matrix()

    engine = TruthEngine(EngineConfig(threshold=threshold), solver=solver)
    engine.fit(claims)
    truth_result = engine.result()

    workspace = (
        _build_workspace(raw, ClaimTableBuilder(raw), claims, truth_result, threshold)
        if keep_workspace and raw is not None
        else None
    )
    return IntegrationResult(
        merged_records=engine.merged_records(),
        rejected_records=engine.rejected_records(),
        fact_scores=engine.fact_scores,
        source_quality=truth_result.source_quality,
        truth_result=truth_result,
        claims=claims,
        workspace=workspace,
    )


def _run_sharded_integration(
    data: Any,
    *,
    method: TruthMethod | str | None,
    threshold: float,
    keep_workspace: bool,
    execution: ExecutionConfig,
    method_params: dict[str, Any],
) -> IntegrationResult:
    """The entity-sharded variant of :func:`run_integration`.

    The engine plans, executes and merges the shards
    (:meth:`~repro.engine.TruthEngine.fit` routes through
    :mod:`repro.parallel` when ``execution.num_shards > 1``); this wrapper
    only handles input coercion and the optional debug workspace.
    """
    if method is None:
        method = "ltm"
    if not isinstance(method, str):
        raise ConfigurationError(
            "sharded execution resolves the solver through the registry on "
            "every shard; pass a registry method key, not a solver instance"
        )
    engine = TruthEngine(
        EngineConfig(
            method=method,
            params=dict(method_params),
            threshold=threshold,
            execution=execution,
        )
    )
    if isinstance(data, RawDatabase):
        raw: RawDatabase | None = data
    else:
        from repro.io.catalog import as_source  # lazy: repro.io builds on the engine

        source = as_source(data)
        raw = source.to_raw(strict=False) if keep_workspace else None
        data = raw if raw is not None else source
    engine.fit(data)
    truth_result = engine.result()
    claims = engine.claims()
    workspace = (
        _build_workspace(raw, ClaimTableBuilder(raw), claims, truth_result, threshold)
        if keep_workspace and raw is not None
        else None
    )
    return IntegrationResult(
        merged_records=engine.merged_records(),
        rejected_records=engine.rejected_records(),
        fact_scores=engine.fact_scores,
        source_quality=truth_result.source_quality,
        truth_result=truth_result,
        claims=claims,
        workspace=workspace,
    )


def _build_workspace(
    raw: RawDatabase,
    builder: ClaimTableBuilder,
    claims: ClaimMatrix,
    truth_result: TruthResult,
    threshold: float,
) -> Database:
    """Materialise raw/fact/claim/truth tables as a relational workspace."""
    workspace = Database("integration")

    raw_table = workspace.create_table(
        "raw_database",
        Schema(
            columns=(Column("entity", object), Column("attribute", object), Column("source", object)),
        ),
    )
    for triple in raw:
        raw_table.insert(
            {"entity": triple.entity, "attribute": triple.attribute, "source": triple.source}
        )

    workspace.attach(builder.fact_table())
    workspace.attach(builder.claim_table())

    truth_table = workspace.create_table(
        "truths",
        Schema(
            columns=(
                Column("fact_id", int),
                Column("entity", object),
                Column("attribute", object),
                Column("score", float),
                Column("truth", bool),
            ),
            key=("fact_id",),
        ),
    )
    for fact in claims.facts:
        score = float(truth_result.scores[fact.fact_id])
        truth_table.insert(
            {
                "fact_id": fact.fact_id,
                "entity": fact.entity,
                "attribute": fact.attribute,
                "score": score,
                "truth": bool(score >= threshold),
            }
        )
    return workspace

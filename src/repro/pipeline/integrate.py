"""The batch integration pipeline: raw triples in, merged records out.

:class:`IntegrationPipeline` is the historical end-to-end entry point, kept
as a thin adapter over the unified :class:`~repro.engine.TruthEngine`: it
builds the claim matrix, hands it to the engine for fitting and thresholding,
and optionally materialises the intermediate relational tables as a debug
workspace.  New code can use :func:`repro.discover` for the same flow in one
line, or drive :class:`~repro.engine.TruthEngine` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.base import SourceQualityTable, TruthMethod, TruthResult
from repro.core.model import LatentTruthModel
from repro.data.claim_builder import ClaimTableBuilder
from repro.data.dataset import ClaimMatrix
from repro.data.raw import RawDatabase
from repro.engine.config import EngineConfig
from repro.engine.facade import TruthEngine
from repro.engine.registry import default_registry
from repro.exceptions import ConfigurationError
from repro.store import Column, Database, Schema
from repro.types import Triple

__all__ = ["IntegrationResult", "IntegrationPipeline"]


@dataclass
class IntegrationResult:
    """Everything produced by one integration run.

    Attributes
    ----------
    merged_records:
        Mapping of entity to the attribute values accepted as true.
    rejected_records:
        Mapping of entity to the asserted attribute values rejected as false.
    fact_scores:
        Mapping of ``(entity, attribute)`` to the inferred truth probability.
    source_quality:
        Per-source quality table, when the method provides one.
    truth_result:
        The raw solver output.
    claims:
        The claim matrix the solver was fitted on.
    workspace:
        A relational :class:`~repro.store.Database` holding the raw, fact,
        claim and truth tables of the run (for inspection and debugging).
    """

    merged_records: dict[str, list[str]] = field(default_factory=dict)
    rejected_records: dict[str, list[str]] = field(default_factory=dict)
    fact_scores: dict[tuple[str, str], float] = field(default_factory=dict)
    source_quality: SourceQualityTable | None = None
    truth_result: TruthResult | None = None
    claims: ClaimMatrix | None = None
    workspace: Database | None = None

    def accepted_values(self, entity: str) -> list[str]:
        """Accepted attribute values of ``entity`` (empty when unknown)."""
        return list(self.merged_records.get(entity, ()))

    def num_accepted(self) -> int:
        """Total number of accepted facts."""
        return sum(len(values) for values in self.merged_records.values())

    def num_rejected(self) -> int:
        """Total number of rejected facts."""
        return sum(len(values) for values in self.rejected_records.values())


class IntegrationPipeline:
    """Runs the full integration flow on a raw assertion database.

    Parameters
    ----------
    method:
        The truth-finding method to use: a
        :class:`~repro.core.base.TruthMethod` instance, a registry key such
        as ``"voting"`` (resolved through
        :func:`repro.engine.default_registry` and built with
        ``method_params``), or ``None`` for
        :class:`~repro.core.model.LatentTruthModel` with library defaults.
    threshold:
        Truth-probability threshold above which a fact is accepted into the
        merged records.
    keep_workspace:
        Whether to materialise the intermediate relational tables in the
        result's ``workspace`` database (useful for debugging, costs memory).
    **method_params:
        Hyperparameters for registry construction when ``method`` is a
        string (e.g. ``iterations``, ``seed``).
    """

    def __init__(
        self,
        method: TruthMethod | str | None = None,
        threshold: float = 0.5,
        keep_workspace: bool = False,
        **method_params: Any,
    ):
        if not 0.0 <= threshold <= 1.0:
            raise ConfigurationError("threshold must lie in [0, 1]")
        if isinstance(method, str):
            method = default_registry().create(method, **method_params)
        elif method_params:
            raise ConfigurationError(
                "method hyperparameters are only accepted with a string method name"
            )
        self.method = method if method is not None else LatentTruthModel()
        self.threshold = threshold
        self.keep_workspace = keep_workspace

    def run(self, triples: Iterable[Triple | tuple] | RawDatabase) -> IntegrationResult:
        """Integrate ``triples`` and return the merged records and quality report."""
        raw = triples if isinstance(triples, RawDatabase) else RawDatabase(triples, strict=False)
        raw.require_non_empty()

        builder = ClaimTableBuilder(raw)
        claims = builder.build()
        engine = TruthEngine(EngineConfig(threshold=self.threshold), solver=self.method)
        engine.fit(claims)
        truth_result = engine.result()

        workspace = self._build_workspace(raw, builder, claims, truth_result) if self.keep_workspace else None
        return IntegrationResult(
            merged_records=engine.merged_records(),
            rejected_records=engine.rejected_records(),
            fact_scores=engine.fact_scores,
            source_quality=truth_result.source_quality,
            truth_result=truth_result,
            claims=claims,
            workspace=workspace,
        )

    def _build_workspace(
        self,
        raw: RawDatabase,
        builder: ClaimTableBuilder,
        claims: ClaimMatrix,
        truth_result: TruthResult,
    ) -> Database:
        """Materialise raw/fact/claim/truth tables as a relational workspace."""
        workspace = Database("integration")

        raw_table = workspace.create_table(
            "raw_database",
            Schema(
                columns=(Column("entity", object), Column("attribute", object), Column("source", object)),
            ),
        )
        for triple in raw:
            raw_table.insert(
                {"entity": triple.entity, "attribute": triple.attribute, "source": triple.source}
            )

        workspace.attach(builder.fact_table())
        workspace.attach(builder.claim_table())

        truth_table = workspace.create_table(
            "truths",
            Schema(
                columns=(
                    Column("fact_id", int),
                    Column("entity", object),
                    Column("attribute", object),
                    Column("score", float),
                    Column("truth", bool),
                ),
                key=("fact_id",),
            ),
        )
        for fact in claims.facts:
            score = float(truth_result.scores[fact.fact_id])
            truth_table.insert(
                {
                    "fact_id": fact.fact_id,
                    "entity": fact.entity,
                    "attribute": fact.attribute,
                    "score": score,
                    "truth": bool(score >= self.threshold),
                }
            )
        return workspace

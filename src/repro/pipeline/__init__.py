"""End-to-end data-integration pipeline.

This package ties the substrate together into the workflow the paper's
introduction motivates: ingest raw ``(entity, attribute, source)`` assertions
from several sources, derive facts and claims, infer which facts are true
(and how reliable each source is), and emit merged records plus a
source-quality report.  :func:`~repro.pipeline.integrate.run_integration`
is the canonical entry point (:func:`repro.discover` wraps it); pass an
:class:`~repro.engine.ExecutionConfig` to run it entity-sharded through
:mod:`repro.parallel`.
"""

from repro.pipeline.integrate import IntegrationResult, run_integration
from repro.pipeline.report import format_quality_report, format_merged_records

__all__ = [
    "IntegrationResult",
    "run_integration",
    "format_quality_report",
    "format_merged_records",
]

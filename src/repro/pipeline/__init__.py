"""End-to-end data-integration pipeline.

This package ties the substrate together into the workflow the paper's
introduction motivates: ingest raw ``(entity, attribute, source)`` assertions
from several sources, derive facts and claims, infer which facts are true
(and how reliable each source is), and emit merged records plus a
source-quality report.
"""

from repro.pipeline.integrate import IntegrationPipeline, IntegrationResult, run_integration
from repro.pipeline.report import format_quality_report, format_merged_records

__all__ = [
    "IntegrationPipeline",
    "IntegrationResult",
    "run_integration",
    "format_quality_report",
    "format_merged_records",
]

"""Human-readable reports for integration runs."""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.base import SourceQualityTable
from repro.pipeline.integrate import IntegrationResult

__all__ = ["format_quality_report", "format_merged_records", "format_integration_summary"]


def format_quality_report(
    quality: SourceQualityTable,
    top: int | None = None,
    sort_by: str = "sensitivity",
) -> str:
    """Render a source-quality table as aligned text (paper Table 8 layout).

    Parameters
    ----------
    quality:
        The quality table to render.
    top:
        Optionally limit the output to the first ``top`` sources after sorting.
    sort_by:
        ``"sensitivity"`` (default, as in the paper), ``"specificity"`` or
        ``"precision"``.
    """
    rows = quality.as_rows()
    rows.sort(key=lambda row: row.get(sort_by, 0.0), reverse=True)
    if top is not None:
        rows = rows[:top]
    header = ("Source", "Sensitivity", "Specificity", "Precision")
    lines = [f"{header[0]:<24}{header[1]:>14}{header[2]:>14}{header[3]:>12}"]
    for row in rows:
        lines.append(
            f"{str(row['source']):<24}"
            f"{row['sensitivity']:>14.4f}"
            f"{row['specificity']:>14.4f}"
            f"{row['precision']:>12.4f}"
        )
    return "\n".join(lines)


def format_merged_records(
    merged: Mapping[str, Sequence[str]],
    limit: int | None = 20,
) -> str:
    """Render merged records as ``entity: value, value, ...`` lines."""
    lines = []
    for index, (entity, values) in enumerate(sorted(merged.items())):
        if limit is not None and index >= limit:
            lines.append(f"... and {len(merged) - limit} more entities")
            break
        lines.append(f"{entity}: {', '.join(sorted(str(v) for v in values))}")
    return "\n".join(lines)


def format_integration_summary(result: IntegrationResult) -> str:
    """One-paragraph summary of an integration run."""
    claims = result.claims
    lines = [
        "Integration summary",
        "-------------------",
        f"entities:          {claims.num_entities if claims else 0}",
        f"candidate facts:   {claims.num_facts if claims else 0}",
        f"claims:            {claims.num_claims if claims else 0}",
        f"accepted facts:    {result.num_accepted()}",
        f"rejected facts:    {result.num_rejected()}",
    ]
    if result.truth_result is not None:
        lines.append(f"method:            {result.truth_result.method}")
        lines.append(f"fit time (s):      {result.truth_result.runtime_seconds:.3f}")
    return "\n".join(lines)

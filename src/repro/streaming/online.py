"""The online integration engine (paper Section 5.4).

:class:`OnlineTruthFinder` consumes :class:`~repro.streaming.stream.ClaimBatch`
objects one at a time.  For each batch it:

1. builds the batch's claim matrix with the standard claim-generation rules;
2. scores the batch's facts with the closed-form LTMinc posterior
   (Equation 3) using the current source-quality estimate;
3. accumulates the batch into its history, and
4. every ``retrain_every`` batches re-fits the full Latent Truth Model on the
   cumulative data (or, optionally, only on the data accumulated since the
   last re-fit, carrying the learned quality over as priors).

This mirrors the deployment the paper recommends: "standard LTM be
infrequently run offline to update source quality and LTMinc be deployed for
online prediction".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core.base import SourceQualityTable
from repro.core.incremental import IncrementalLTM
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.data.claim_builder import build_claim_matrix
from repro.data.raw import RawDatabase
from repro.exceptions import StreamError
from repro.streaming.stream import ClaimBatch
from repro.types import Triple

__all__ = ["OnlineStepReport", "OnlineTruthFinder"]


@dataclass
class OnlineStepReport:
    """What happened when one batch was integrated.

    Attributes
    ----------
    batch_index:
        Sequence number of the integrated batch.
    num_triples, num_facts:
        Size of the batch.
    retrained:
        Whether a full model re-fit happened after this batch.
    fact_scores:
        Mapping of ``(entity, attribute)`` to the truth probability assigned
        by the incremental predictor.
    """

    batch_index: int
    num_triples: int
    num_facts: int
    retrained: bool
    fact_scores: dict[tuple[str, str], float] = field(default_factory=dict)

    def accepted_facts(self, threshold: float = 0.5) -> list[tuple[str, str]]:
        """Facts accepted as true at ``threshold``."""
        return [pair for pair, score in self.fact_scores.items() if score >= threshold]


class OnlineTruthFinder:
    """Streaming truth finder with periodic batch re-training.

    Parameters
    ----------
    priors:
        Priors of the underlying LTM.
    retrain_every:
        Re-fit the full model after every ``retrain_every`` batches
        (0 disables periodic re-training; the initial quality then persists).
    iterations:
        Gibbs iterations of each re-fit.
    cumulative:
        When true (default) re-fits use all data seen so far; when false they
        use only the data since the previous re-fit, with learned quality
        carried over as priors (the paper's cheaper alternative).
    seed:
        Random seed for the re-fits.
    """

    def __init__(
        self,
        priors: LTMPriors | None = None,
        retrain_every: int = 5,
        iterations: int = 50,
        cumulative: bool = True,
        seed: int | None = 11,
    ):
        if retrain_every < 0:
            raise StreamError("retrain_every must be non-negative")
        self.priors = priors if priors is not None else LTMPriors()
        self.retrain_every = retrain_every
        self.iterations = iterations
        self.cumulative = cumulative
        self.seed = seed

        self._history = RawDatabase(strict=False)
        self._since_last_fit = RawDatabase(strict=False)
        self._batches_since_fit = 0
        self._quality: SourceQualityTable | None = None
        self._scores: dict[tuple[str, str], float] = {}
        self.reports: list[OnlineStepReport] = []

    # -- state access -------------------------------------------------------------------
    @property
    def source_quality(self) -> SourceQualityTable | None:
        """The current source-quality estimate (``None`` before the first re-fit)."""
        return self._quality

    @property
    def fact_scores(self) -> dict[tuple[str, str], float]:
        """Latest truth probability of every fact integrated so far."""
        return dict(self._scores)

    def merged_records(self, threshold: float = 0.5) -> dict[str, list[str]]:
        """The integrated output: entity -> accepted attribute values."""
        merged: dict[str, list[str]] = {}
        for (entity, attribute), score in self._scores.items():
            if score >= threshold:
                merged.setdefault(entity, []).append(str(attribute))
        return merged

    # -- integration --------------------------------------------------------------------
    def bootstrap(self, triples: Iterable[Triple]) -> SourceQualityTable:
        """Fit the model on an initial historical corpus to obtain starting quality."""
        added = self._history.extend(triples)
        if added == 0:
            raise StreamError("bootstrap requires at least one new triple")
        self._refit()
        return self._quality  # type: ignore[return-value]

    def integrate_batch(self, batch: ClaimBatch) -> OnlineStepReport:
        """Integrate one arriving batch and return a step report."""
        if len(batch) == 0:
            raise StreamError("cannot integrate an empty batch")
        batch_matrix = build_claim_matrix(batch.triples, strict=False)

        if self._quality is not None:
            predictor = IncrementalLTM(self._quality, truth_prior=(
                self.priors.truth.positive, self.priors.truth.negative
            ))
            result = predictor.fit(batch_matrix)
            scores = result.scores
        else:
            # No quality learned yet: fall back to the per-fact voting proportion.
            positives = batch_matrix.positive_counts_per_fact().astype(float)
            totals = np.maximum(batch_matrix.claim_counts_per_fact().astype(float), 1.0)
            scores = positives / totals

        fact_scores = {
            (fact.entity, str(fact.attribute)): float(scores[fact.fact_id])
            for fact in batch_matrix.facts
        }
        self._scores.update(fact_scores)

        self._history.extend(batch.triples)
        self._since_last_fit.extend(batch.triples)
        self._batches_since_fit += 1

        retrained = False
        if self.retrain_every and self._batches_since_fit >= self.retrain_every:
            self._refit()
            retrained = True

        report = OnlineStepReport(
            batch_index=batch.index,
            num_triples=len(batch),
            num_facts=batch_matrix.num_facts,
            retrained=retrained,
            fact_scores=fact_scores,
        )
        self.reports.append(report)
        return report

    def run(self, batches: Iterable[ClaimBatch]) -> list[OnlineStepReport]:
        """Integrate every batch of a stream and return all step reports."""
        return [self.integrate_batch(batch) for batch in batches]

    # -- re-training ---------------------------------------------------------------------
    def _refit(self) -> None:
        if self.cumulative:
            corpus = self._history
            priors = self.priors
        else:
            corpus = self._since_last_fit if len(self._since_last_fit) else self._history
            priors = self.priors
            if self._quality is not None:
                # Carry learned quality over as priors (Section 5.4).
                counts = np.stack(
                    [
                        np.array(
                            [
                                [1.0, 1.0],
                                [1.0, 1.0],
                            ]
                        )
                        for _ in self._quality.source_names
                    ]
                )
                # Translate the quality table into soft pseudo-counts with a
                # fixed strength of 100 virtual claims per source.
                strength = 100.0
                for i, _ in enumerate(self._quality.source_names):
                    sens = float(self._quality.sensitivity[i])
                    spec = float(self._quality.specificity[i])
                    counts[i, 1, 1] = sens * strength
                    counts[i, 1, 0] = (1 - sens) * strength
                    counts[i, 0, 0] = spec * strength
                    counts[i, 0, 1] = (1 - spec) * strength
                priors = self.priors.with_learned_quality(self._quality.source_names, counts)

        matrix = build_claim_matrix(corpus, strict=False)
        model = LatentTruthModel(priors=priors, iterations=self.iterations, seed=self.seed)
        result = model.fit(matrix)
        self._quality = result.source_quality
        # Refresh stored scores for all facts covered by the refit.
        for fact in matrix.facts:
            self._scores[(fact.entity, str(fact.attribute))] = float(result.scores[fact.fact_id])
        self._since_last_fit = RawDatabase(strict=False)
        self._batches_since_fit = 0

"""The online integration engine (paper Section 5.4).

:class:`OnlineTruthFinder` is the historical streaming entry point, kept as a
thin adapter over the unified :class:`~repro.engine.TruthEngine`: each
arriving :class:`~repro.streaming.stream.ClaimBatch` is handed to
:meth:`~repro.engine.TruthEngine.partial_fit`, which

1. builds the batch's claim matrix with the standard claim-generation rules;
2. scores the batch's facts with the closed-form LTMinc posterior
   (Equation 3) using the current source-quality estimate;
3. accumulates the batch into its history, and
4. every ``retrain_every`` batches re-fits the full Latent Truth Model on the
   cumulative data (or, optionally, only on the data accumulated since the
   last re-fit, carrying the learned quality over as priors).

This mirrors the deployment the paper recommends: "standard LTM be
infrequently run offline to update source quality and LTMinc be deployed for
online prediction".

Deprecated: new code should construct a
:class:`~repro.engine.TruthEngine` directly and drive the
``partial_fit`` loop itself.
"""

from __future__ import annotations

import warnings
from typing import Iterable

from repro.core.base import SourceQualityTable
from repro.core.priors import LTMPriors
from repro.engine.config import EngineConfig
from repro.engine.facade import OnlineStepReport, TruthEngine
from repro.exceptions import StreamError
from repro.streaming.stream import ClaimBatch
from repro.types import Triple

__all__ = ["OnlineStepReport", "OnlineTruthFinder"]


class OnlineTruthFinder:
    """Streaming truth finder with periodic batch re-training.

    A deprecation shim over :class:`~repro.engine.TruthEngine` configured for
    streaming LTM (``method="ltm"``, ``partial_fit`` loop).

    Parameters
    ----------
    priors:
        Priors of the underlying LTM.
    retrain_every:
        Re-fit the full model after every ``retrain_every`` batches
        (0 disables periodic re-training; the initial quality then persists).
    iterations:
        Gibbs iterations of each re-fit.
    cumulative:
        When true (default) re-fits use all data seen so far; when false they
        use only the data since the previous re-fit, with learned quality
        carried over as priors (the paper's cheaper alternative).
    seed:
        Random seed for the re-fits.
    artifact_dir:
        When set, every integrated batch publishes a
        :class:`~repro.serving.TruthArtifact` snapshot under this directory
        (``step_00001``, ...) for a :class:`~repro.serving.TruthService` to
        :meth:`~repro.serving.TruthService.refresh` onto.

    .. deprecated:: 1.2
        Use :class:`~repro.engine.TruthEngine` directly.
    """

    def __init__(
        self,
        priors: LTMPriors | None = None,
        retrain_every: int = 5,
        iterations: int = 50,
        cumulative: bool = True,
        seed: int | None = 11,
        artifact_dir: str | None = None,
    ):
        warnings.warn(
            "OnlineTruthFinder is deprecated; construct a repro.engine.TruthEngine "
            "and drive its partial_fit loop (e.g. over DataSource.iter_batches) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if retrain_every < 0:
            raise StreamError("retrain_every must be non-negative")
        self.engine = TruthEngine(
            EngineConfig(
                method="ltm",
                params={
                    "priors": priors if priors is not None else LTMPriors(),
                    "iterations": iterations,
                    "seed": seed,
                },
                retrain_every=retrain_every,
                cumulative=cumulative,
                export_dir=artifact_dir,
            )
        )

    # -- configuration ------------------------------------------------------------------
    # The historical attributes stay readable and writable mid-stream (the
    # pre-engine implementation read them on every batch); they live in the
    # engine config, so mutations rewrite it.
    @property
    def priors(self) -> LTMPriors:
        """Priors of the underlying LTM."""
        return self.engine.config.params["priors"]

    @priors.setter
    def priors(self, value: LTMPriors | None) -> None:
        self.engine.config = self.engine.config.with_params(
            priors=value if value is not None else LTMPriors()
        )

    @property
    def retrain_every(self) -> int:
        """Current re-training cadence (0 = disabled)."""
        return self.engine.config.retrain_every

    @retrain_every.setter
    def retrain_every(self, value: int) -> None:
        if value < 0:
            raise StreamError("retrain_every must be non-negative")
        self.engine.config = self.engine.config.with_overrides(retrain_every=value)

    @property
    def iterations(self) -> int:
        """Gibbs iterations of each re-fit."""
        return self.engine.config.params["iterations"]

    @iterations.setter
    def iterations(self, value: int) -> None:
        self.engine.config = self.engine.config.with_params(iterations=value)

    @property
    def cumulative(self) -> bool:
        """Whether re-fits use all data seen so far."""
        return self.engine.config.cumulative

    @cumulative.setter
    def cumulative(self, value: bool) -> None:
        self.engine.config = self.engine.config.with_overrides(cumulative=value)

    @property
    def seed(self) -> int | None:
        """Random seed of the re-fits."""
        return self.engine.config.params["seed"]

    @seed.setter
    def seed(self, value: int | None) -> None:
        self.engine.config = self.engine.config.with_params(seed=value)

    # -- state access -------------------------------------------------------------------
    @property
    def source_quality(self) -> SourceQualityTable | None:
        """The current source-quality estimate (``None`` before the first re-fit)."""
        return self.engine.source_quality

    @property
    def fact_scores(self) -> dict[tuple[str, str], float]:
        """Latest truth probability of every fact integrated so far."""
        return self.engine.fact_scores

    @property
    def reports(self) -> list[OnlineStepReport]:
        """Step reports of every integrated batch, in arrival order."""
        return self.engine.reports

    def merged_records(self, threshold: float = 0.5) -> dict[str, list[str]]:
        """The integrated output: entity -> accepted attribute values."""
        return self.engine.merged_records(threshold)

    # -- integration --------------------------------------------------------------------
    def bootstrap(self, triples: Iterable[Triple]) -> SourceQualityTable:
        """Fit the model on an initial historical corpus to obtain starting quality."""
        added = self.engine.ingest(triples)
        if added == 0:
            raise StreamError("bootstrap requires at least one new triple")
        self.engine.fit()
        return self.engine.source_quality  # type: ignore[return-value]

    def integrate_batch(self, batch: ClaimBatch) -> OnlineStepReport:
        """Integrate one arriving batch and return a step report."""
        report = self.engine.partial_fit(batch).last_report
        assert report is not None  # partial_fit always appends a report
        return report

    def run(self, batches: Iterable[ClaimBatch]) -> list[OnlineStepReport]:
        """Integrate every batch of a stream and return all step reports."""
        return [self.integrate_batch(batch) for batch in batches]

"""Streaming / incremental data integration (paper Section 5.4).

When claims arrive online, the paper proposes reusing the source quality
learned so far: either as priors for a cheaper re-fit on the new data only,
or — the LTMinc mode — plugging it straight into the closed-form posterior of
Equation (3) to score new facts with no sampling at all, with an occasional
batch re-fit to refresh the quality estimates.

* :class:`~repro.streaming.stream.ClaimStream` slices a raw database or
  triple list into arrival-ordered batches.
* :class:`~repro.streaming.online.OnlineTruthFinder` consumes those batches,
  maintains the evolving source-quality estimate, scores each batch as it
  arrives and periodically retrains.
"""

from repro.streaming.stream import ClaimBatch, ClaimStream
from repro.streaming.online import OnlineTruthFinder, OnlineStepReport

__all__ = ["ClaimBatch", "ClaimStream", "OnlineTruthFinder", "OnlineStepReport"]

"""Streaming / incremental data integration (paper Section 5.4).

When claims arrive online, the paper proposes reusing the source quality
learned so far: either as priors for a cheaper re-fit on the new data only,
or — the LTMinc mode — plugging it straight into the closed-form posterior of
Equation (3) to score new facts with no sampling at all, with an occasional
batch re-fit to refresh the quality estimates.

* :class:`~repro.streaming.stream.ClaimStream` slices a raw database or
  triple list into arrival-ordered batches.
* :meth:`repro.engine.TruthEngine.partial_fit` consumes those batches,
  maintains the evolving source-quality estimate, scores each batch as it
  arrives and periodically retrains (sharded through :mod:`repro.parallel`
  when the engine's :class:`~repro.engine.ExecutionConfig` asks for it).

The historical ``OnlineTruthFinder`` adapter was removed in 1.4 after its
two-PR deprecation window; drive ``TruthEngine.partial_fit`` directly, e.g.
over :meth:`repro.io.DataSource.iter_batches`.
"""

from repro.streaming.stream import ClaimBatch, ClaimStream

__all__ = ["ClaimBatch", "ClaimStream"]

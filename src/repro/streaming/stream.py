"""Arrival-ordered claim streams.

A :class:`ClaimStream` turns a collection of raw triples into a sequence of
:class:`ClaimBatch` objects, grouped either by a fixed batch size or by
entity, simulating data arriving online (new movies appearing in a feed, new
books being listed).

Since the :mod:`repro.io` unification, :class:`ClaimStream` is a thin
adapter over :meth:`repro.io.DataSource.iter_batches`: any
:class:`~repro.io.base.DataSource` (or anything
:func:`~repro.io.catalog.as_source` accepts, including catalog keys) can be
streamed, and the entity-grouped batching algorithm itself lives in the
source protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.exceptions import StreamError
from repro.types import Triple

__all__ = ["ClaimBatch", "ClaimStream"]


@dataclass(frozen=True)
class ClaimBatch:
    """One batch of raw triples arriving together.

    Attributes
    ----------
    index:
        Zero-based batch sequence number.
    triples:
        The raw triples in the batch.
    """

    index: int
    triples: tuple[Triple, ...]

    @property
    def entities(self) -> list[str]:
        """Distinct entities mentioned in the batch, in first-seen order."""
        seen: dict[str, None] = {}
        for triple in self.triples:
            seen.setdefault(triple.entity, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self.triples)


class ClaimStream:
    """Splits a data source's triples into arrival batches.

    Parameters
    ----------
    triples:
        The triples to stream: a list, a
        :class:`~repro.data.raw.RawDatabase`, any
        :class:`~repro.io.base.DataSource`, or a catalog key / file path
        (resolved through :func:`repro.io.as_source`).
    batch_entities:
        Number of entities per batch when grouping by entity (the default
        grouping: all triples about the same entity arrive together, which is
        how crawls and feeds typically deliver data).
    shuffle_entities:
        Whether to shuffle the entity arrival order.
    seed:
        Seed of the shuffle.
    """

    def __init__(
        self,
        triples: Iterable[Triple] | object,
        batch_entities: int = 50,
        shuffle_entities: bool = False,
        seed: int | None = None,
    ):
        if batch_entities <= 0:
            raise StreamError("batch_entities must be positive")
        # Imported lazily: repro.io builds on this module's ClaimBatch.
        from repro.io.catalog import as_source

        self._source = as_source(triples)
        self._triples = list(self._source.iter_triples())
        if not self._triples:
            raise StreamError("cannot stream an empty triple collection")
        self.batch_entities = batch_entities
        self.shuffle_entities = shuffle_entities
        self.seed = seed

    def __iter__(self) -> Iterator[ClaimBatch]:
        return self.batches()

    def batches(self) -> Iterator[ClaimBatch]:
        """Yield :class:`ClaimBatch` objects grouped by entity arrival."""
        return self._source.iter_batches(
            self.batch_entities,
            by_entity=True,
            shuffle=self.shuffle_entities,
            seed=self.seed,
        )

    def num_batches(self) -> int:
        """Number of batches the stream will produce."""
        entities = {t.entity for t in self._triples}
        return int(np.ceil(len(entities) / self.batch_entities))

    @staticmethod
    def split_prefix(
        triples: Sequence[Triple], fraction: float, seed: int | None = None
    ) -> tuple[list[Triple], list[Triple]]:
        """Split triples into a historical prefix and a future stream by entity.

        Returns ``(historical, future)`` where roughly ``fraction`` of the
        entities (and all their triples) land in the historical part.
        """
        if not 0.0 < fraction < 1.0:
            raise StreamError("fraction must lie strictly between 0 and 1")
        entities = sorted({t.entity for t in triples})
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(entities))
        cut = max(1, int(round(fraction * len(entities))))
        historical_entities = {entities[i] for i in order[:cut]}
        historical = [t for t in triples if t.entity in historical_entities]
        future = [t for t in triples if t.entity not in historical_entities]
        return historical, future

"""Legacy method-registry shim (deprecated — use :mod:`repro.engine.registry`).

This module used to hold its own factory table.  It is now a thin adapter
over the unified :class:`~repro.engine.registry.MethodRegistry`, kept so the
historical entry points (``all_methods``, ``get_method``,
``default_method_suite``) continue to work unchanged.  New code should
resolve solvers through :func:`repro.engine.default_registry` (or simply use
:class:`repro.engine.TruthEngine` / :func:`repro.discover`).

:func:`default_method_suite` builds fresh, consistently-configured instances
of the nine methods of the paper's Table 7 / Figures 2-3 comparison that can
be fitted directly on a claim matrix (LTMinc needs a previously learned
quality table and is constructed separately by the evaluation protocol).
"""

from __future__ import annotations

from typing import Mapping

from repro.core.base import TruthMethod
from repro.core.priors import LTMPriors

__all__ = ["all_methods", "default_method_suite", "get_method"]

#: Display names of the nine directly-fittable comparison methods, in the
#: historical registration order of this module.
_LEGACY_SUITE = (
    "LTM",
    "LTMpos",
    "Voting",
    "TruthFinder",
    "HubAuthority",
    "AvgLog",
    "Investment",
    "PooledInvestment",
    "3-Estimates",
)


def all_methods() -> list[str]:
    """Names of every method of the legacy comparison registry.

    Deprecated: prefer ``default_registry().names()`` which also covers the
    incremental and extension models.
    """
    return list(_LEGACY_SUITE)


def get_method(name: str, **kwargs) -> TruthMethod:
    """Instantiate the method registered under ``name`` with ``kwargs``.

    Deprecated: prefer ``default_registry().create(name, **kwargs)``.  Names
    are resolved through the unified registry, so both the historical
    display names (``"LTM"``, ``"3-Estimates"``) and the canonical keys
    (``"ltm"``, ``"three_estimates"``) work.
    """
    from repro.engine.registry import default_registry

    return default_registry().create(name, **kwargs)


def default_method_suite(
    priors: LTMPriors | None = None,
    iterations: int = 100,
    seed: int | None = 7,
    include: Mapping[str, bool] | None = None,
) -> list[TruthMethod]:
    """Build the standard comparison suite (every method except LTMinc).

    Parameters
    ----------
    priors:
        Priors used by LTM and LTMpos (defaults to the library defaults).
    iterations:
        Gibbs iterations for LTM and LTMpos.
    seed:
        Random seed shared by the sampling-based methods.
    include:
        Optional mapping of method name to a Boolean; methods mapped to
        ``False`` are skipped.
    """
    from repro.engine.registry import default_registry

    registry = default_registry()
    include = dict(include or {})

    def wanted(name: str) -> bool:
        return include.get(name, True)

    sampled_kwargs = {"priors": priors, "iterations": iterations, "seed": seed}
    suite: list[TruthMethod] = []
    # Paper presentation order (LTM first, heuristic baselines after).
    for name in (
        "LTM",
        "3-Estimates",
        "Voting",
        "TruthFinder",
        "Investment",
        "LTMpos",
        "HubAuthority",
        "AvgLog",
        "PooledInvestment",
    ):
        if not wanted(name):
            continue
        spec = registry.spec(name)
        kwargs = sampled_kwargs if spec.accepts("priors") else {}
        suite.append(registry.create(name, **kwargs))
    return suite

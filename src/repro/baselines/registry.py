"""Legacy method-registry shim (deprecated — use :mod:`repro.engine.registry`).

This module used to hold its own factory table.  It is now a thin adapter
over the unified :class:`~repro.engine.registry.MethodRegistry`, kept so the
historical entry points (``all_methods``, ``get_method``,
``default_method_suite``) continue to work unchanged — each now emits a
:class:`DeprecationWarning` and delegates.  New code should resolve solvers
through :func:`repro.engine.default_registry`, build the comparison suite
with :func:`repro.engine.registry.method_suite`, or simply use
:class:`repro.engine.TruthEngine` / :func:`repro.discover`.
"""

from __future__ import annotations

import warnings
from typing import Mapping

from repro.core.base import TruthMethod
from repro.core.priors import LTMPriors

__all__ = ["all_methods", "default_method_suite", "get_method"]

#: Display names of the nine directly-fittable comparison methods, in the
#: historical registration order of this module.
_LEGACY_SUITE = (
    "LTM",
    "LTMpos",
    "Voting",
    "TruthFinder",
    "HubAuthority",
    "AvgLog",
    "Investment",
    "PooledInvestment",
    "3-Estimates",
)


def _deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.baselines.registry.{name} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def all_methods() -> list[str]:
    """Names of every method of the legacy comparison registry.

    .. deprecated:: 1.2
        Use ``repro.engine.default_registry().names()``, which also covers
        the incremental and extension models.
    """
    _deprecated("all_methods", "repro.engine.default_registry().names()")
    return list(_LEGACY_SUITE)


def get_method(name: str, **kwargs) -> TruthMethod:
    """Instantiate the method registered under ``name`` with ``kwargs``.

    Names are resolved through the unified registry, so both the historical
    display names (``"LTM"``, ``"3-Estimates"``) and the canonical keys
    (``"ltm"``, ``"three_estimates"``) work.

    .. deprecated:: 1.2
        Use ``repro.engine.default_registry().create(name, **kwargs)``.
    """
    _deprecated("get_method", "repro.engine.default_registry().create(...)")
    from repro.engine.registry import default_registry

    return default_registry().create(name, **kwargs)


def default_method_suite(
    priors: LTMPriors | None = None,
    iterations: int = 100,
    seed: int | None = 7,
    include: Mapping[str, bool] | None = None,
) -> list[TruthMethod]:
    """Build the standard comparison suite (every method except LTMinc).

    .. deprecated:: 1.2
        Use :func:`repro.engine.registry.method_suite`, which this shim
        delegates to.

    Parameters
    ----------
    priors:
        Priors used by LTM and LTMpos (defaults to the library defaults).
    iterations:
        Gibbs iterations for LTM and LTMpos.
    seed:
        Random seed shared by the sampling-based methods.
    include:
        Optional mapping of method name to a Boolean; methods mapped to
        ``False`` are skipped.
    """
    _deprecated("default_method_suite", "repro.engine.registry.method_suite")
    from repro.engine.registry import method_suite

    return method_suite(
        priors=priors,
        iterations=iterations,
        seed=seed,
        include=dict(include) if include is not None else None,
    )

"""A registry of every truth-finding method, used by the comparison harness.

The paper's Table 7 / Figures 2-3 compare ten methods: LTM, LTMinc, LTMpos,
the seven baselines and Voting.  :func:`default_method_suite` builds fresh,
consistently-configured instances of the nine methods that can be fitted
directly on a claim matrix (LTMinc needs a previously learned quality table
and is constructed separately by the evaluation protocol).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.baselines.avglog import AvgLog
from repro.baselines.hubauthority import HubAuthority
from repro.baselines.investment import Investment
from repro.baselines.pooled_investment import PooledInvestment
from repro.baselines.three_estimates import ThreeEstimates
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.voting import Voting
from repro.core.base import TruthMethod
from repro.core.ltmpos import PositiveOnlyLTM
from repro.core.model import LatentTruthModel
from repro.core.priors import LTMPriors
from repro.exceptions import ConfigurationError

__all__ = ["all_methods", "default_method_suite", "get_method"]

_FACTORIES: dict[str, Callable[..., TruthMethod]] = {
    "LTM": LatentTruthModel,
    "LTMpos": PositiveOnlyLTM,
    "Voting": Voting,
    "TruthFinder": TruthFinder,
    "HubAuthority": HubAuthority,
    "AvgLog": AvgLog,
    "Investment": Investment,
    "PooledInvestment": PooledInvestment,
    "3-Estimates": ThreeEstimates,
}


def all_methods() -> list[str]:
    """Names of every registered method."""
    return list(_FACTORIES)


def get_method(name: str, **kwargs) -> TruthMethod:
    """Instantiate the method registered under ``name`` with ``kwargs``."""
    try:
        factory = _FACTORIES[name]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown method {name!r}; registered methods: {sorted(_FACTORIES)}"
        ) from exc
    return factory(**kwargs)


def default_method_suite(
    priors: LTMPriors | None = None,
    iterations: int = 100,
    seed: int | None = 7,
    include: Mapping[str, bool] | None = None,
) -> list[TruthMethod]:
    """Build the standard comparison suite (every method except LTMinc).

    Parameters
    ----------
    priors:
        Priors used by LTM and LTMpos (defaults to the library defaults).
    iterations:
        Gibbs iterations for LTM and LTMpos.
    seed:
        Random seed shared by the sampling-based methods.
    include:
        Optional mapping of method name to a Boolean; methods mapped to
        ``False`` are skipped.
    """
    include = dict(include or {})

    def wanted(name: str) -> bool:
        return include.get(name, True)

    suite: list[TruthMethod] = []
    if wanted("LTM"):
        suite.append(LatentTruthModel(priors=priors, iterations=iterations, seed=seed))
    if wanted("3-Estimates"):
        suite.append(ThreeEstimates())
    if wanted("Voting"):
        suite.append(Voting())
    if wanted("TruthFinder"):
        suite.append(TruthFinder())
    if wanted("Investment"):
        suite.append(Investment())
    if wanted("LTMpos"):
        suite.append(PositiveOnlyLTM(priors=priors, iterations=iterations, seed=seed))
    if wanted("HubAuthority"):
        suite.append(HubAuthority())
    if wanted("AvgLog"):
        suite.append(AvgLog())
    if wanted("PooledInvestment"):
        suite.append(PooledInvestment())
    return suite

"""PooledInvestment (Pasternack & Roth, IJCAI 2011).

Like :class:`~repro.baselines.investment.Investment`, sources invest their
trustworthiness uniformly across their positive claims, but the grown credit
is *pooled within each entity's candidate facts*:

``B(f) = H(f) * G(H(f)) / sum over f' of the same entity of G(H(f'))``

where ``H(f)`` is the invested total and ``G(x) = x**g`` with g = 1.4.  The
pooling makes the strongest candidate of each entity absorb most of the
credit, so the globally-normalised scores of everything else are small — the
over-conservative behaviour (perfect precision, very low recall at a 0.5
threshold) the paper reports for PooledInvestment in Table 7.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._graph import PositiveClaimGraph
from repro.core.base import TruthMethod, TruthResult, normalise_scores
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError

__all__ = ["PooledInvestment"]


class PooledInvestment(TruthMethod):
    """Investment with per-entity pooling of grown credit.

    Parameters
    ----------
    iterations:
        Number of invest/pool/repay rounds.
    growth:
        Exponent of the pooling growth function ``G(x) = x**g`` (1.4 as
        recommended by the original authors).
    """

    name = "PooledInvestment"

    def __init__(self, iterations: int = 20, growth: float = 1.4):
        super().__init__()
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if growth <= 0:
            raise ConfigurationError("growth must be positive")
        self.iterations = iterations
        self.growth = growth

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        graph = PositiveClaimGraph.from_claims(claims)
        trust = np.ones(graph.num_sources, dtype=float)
        belief = np.zeros(graph.num_facts, dtype=float)
        degree = graph.safe_source_degree()

        for _ in range(self.iterations):
            per_claim_investment = trust / degree
            invested = graph.facts_from_sources(per_claim_investment)
            belief = self._pool(invested, graph)

            edge_investment = per_claim_investment[graph.edge_source]
            pool_total = np.maximum(invested[graph.edge_fact], 1e-12)
            edge_share = edge_investment / pool_total
            repayments = belief[graph.edge_fact] * edge_share
            trust = np.zeros(graph.num_sources, dtype=float)
            np.add.at(trust, graph.edge_source, repayments)
            max_trust = trust.max()
            if max_trust > 0:
                trust = trust / max_trust
            else:
                trust = np.ones(graph.num_sources, dtype=float)

        return TruthResult(
            method=self.name,
            scores=normalise_scores(belief),
            extras={"trustworthiness": trust, "iterations": self.iterations},
        )

    def _pool(self, invested: np.ndarray, graph: PositiveClaimGraph) -> np.ndarray:
        """Pool grown credit within each entity's candidate facts."""
        grown = np.power(np.maximum(invested, 0.0), self.growth)
        belief = np.zeros_like(invested)
        for group in graph.entity_groups:
            total = grown[group].sum()
            if total <= 0:
                continue
            belief[group] = invested[group] * grown[group] / total
        return belief

"""TruthFinder (Yin, Han & Yu, KDD 2007).

TruthFinder iterates between source trustworthiness and fact confidence over
the *positive* claims only:

* a source's trustworthiness is the average confidence of the facts it
  asserts;
* a fact's confidence is (a dampened version of) the probability that at
  least one of its asserting sources is correct,
  ``1 - prod_s (1 - t(s))``, computed in log space via the trustworthiness
  score ``tau(s) = -ln(1 - t(s))`` and squashed with a logistic of gain
  ``gamma``.

Because it only looks at positive claims and scores a fact highly as soon as
one reasonably trusted source asserts it, on multi-truth data it tends to
assign nearly every candidate fact a high confidence — the behaviour the
paper reports as a 1.0 false-positive rate in Table 7.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._graph import PositiveClaimGraph
from repro.core.base import TruthMethod, TruthResult
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError

__all__ = ["TruthFinder"]


class TruthFinder(TruthMethod):
    """Iterative trustworthiness / confidence propagation over positive claims.

    Parameters
    ----------
    initial_trust:
        Initial trustworthiness of every source (paper default 0.9).
    gamma:
        Dampening gain of the logistic adjustment (paper default 0.3).
    max_iterations:
        Maximum number of alternating updates.
    tolerance:
        Convergence threshold on the cosine distance between successive
        source-trustworthiness vectors.
    """

    name = "TruthFinder"

    def __init__(
        self,
        initial_trust: float = 0.9,
        gamma: float = 0.3,
        max_iterations: int = 100,
        tolerance: float = 1e-6,
    ):
        super().__init__()
        if not 0.0 < initial_trust < 1.0:
            raise ConfigurationError("initial_trust must lie in (0, 1)")
        if gamma <= 0:
            raise ConfigurationError("gamma must be positive")
        if max_iterations <= 0:
            raise ConfigurationError("max_iterations must be positive")
        self.initial_trust = initial_trust
        self.gamma = gamma
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        graph = PositiveClaimGraph.from_claims(claims)
        trust = np.full(graph.num_sources, self.initial_trust, dtype=float)
        confidence = np.zeros(graph.num_facts, dtype=float)
        iterations_run = 0

        for iteration in range(self.max_iterations):
            iterations_run = iteration + 1
            # Trustworthiness score tau(s) = -ln(1 - t(s)).
            tau = -np.log(np.clip(1.0 - trust, 1e-12, None))
            # Fact confidence score sigma*(f) = sum of tau over asserting sources,
            # squashed with the dampened logistic 1 / (1 + exp(-gamma * sigma*)).
            sigma = graph.facts_from_sources(tau)
            confidence = 1.0 / (1.0 + np.exp(-self.gamma * sigma))
            # Facts nobody asserts keep zero confidence.
            confidence = np.where(graph.fact_degree > 0, confidence, 0.0)

            # New trustworthiness: average confidence of asserted facts.
            sums = graph.sources_from_facts(confidence)
            new_trust = sums / graph.safe_source_degree()
            new_trust = np.clip(new_trust, 1e-6, 1.0 - 1e-6)

            if self._converged(trust, new_trust):
                trust = new_trust
                break
            trust = new_trust

        return TruthResult(
            method=self.name,
            scores=np.clip(confidence, 0.0, 1.0),
            extras={"trustworthiness": trust, "iterations": iterations_run},
        )

    def _converged(self, old: np.ndarray, new: np.ndarray) -> bool:
        denom = float(np.linalg.norm(old) * np.linalg.norm(new))
        if denom == 0.0:
            return True
        cosine = float(np.dot(old, new)) / denom
        return 1.0 - cosine < self.tolerance

"""Investment (Pasternack & Roth, COLING 2010).

Each source uniformly *invests* its trustworthiness across the facts it claims
positively; a fact's credit is the invested total grown by the super-linear
function ``G(x) = x**g`` (g = 1.2), and sources are repaid in proportion to
their share of each fact's investment — so sources that back winning facts
grow richer and amplify those facts further.

Pasternack & Roth's evaluation picks the highest-credit candidate within a
*mutual-exclusion set* of answers.  With a multi-valued attribute type there
is no mutual exclusion between a fact and any other candidate: the only
candidate in a fact's exclusion set is the fact itself, so every fact with at
least one positive claim is accepted.  The paper observes exactly this
behaviour — Investment "consistently thinks everything is true" with a
false-positive rate of 1.0 (Table 7).  We therefore report scores in
``[0.5, 1]`` for asserted facts (ranked by their final credit, so ROC/AUC
analysis remains meaningful) and 0 for facts with no positive claim.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._graph import PositiveClaimGraph
from repro.core.base import TruthMethod, TruthResult
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError

__all__ = ["Investment"]


class Investment(TruthMethod):
    """Credit-investment truth finder over positive claims.

    Parameters
    ----------
    iterations:
        Number of invest/repay rounds.
    growth:
        Exponent ``g`` of the credit growth function ``G(x) = x**g``
        (1.2 as recommended by the original authors).
    """

    name = "Investment"

    def __init__(self, iterations: int = 20, growth: float = 1.2):
        super().__init__()
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if growth <= 0:
            raise ConfigurationError("growth must be positive")
        self.iterations = iterations
        self.growth = growth

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        graph = PositiveClaimGraph.from_claims(claims)
        trust = np.ones(graph.num_sources, dtype=float)
        credit = np.zeros(graph.num_facts, dtype=float)
        degree = graph.safe_source_degree()

        for _ in range(self.iterations):
            # Each source invests trust / |F_s| in each of its claims.
            per_claim_investment = trust / degree
            invested = graph.facts_from_sources(per_claim_investment)
            credit = np.power(np.maximum(invested, 0.0), self.growth)

            # Sources are repaid proportionally to their share of each fact's
            # investment pool.
            edge_investment = per_claim_investment[graph.edge_source]
            pool = np.maximum(invested[graph.edge_fact], 1e-12)
            edge_share = edge_investment / pool
            repayments = credit[graph.edge_fact] * edge_share
            trust = np.zeros(graph.num_sources, dtype=float)
            np.add.at(trust, graph.edge_source, repayments)
            max_trust = trust.max()
            if max_trust > 0:
                trust = trust / max_trust
            else:  # no positive claims at all
                trust = np.ones(graph.num_sources, dtype=float)

        scores = self._decision_scores(credit, graph)
        return TruthResult(
            method=self.name,
            scores=scores,
            extras={"credit": credit, "trustworthiness": trust, "iterations": self.iterations},
        )

    def _decision_scores(self, credit: np.ndarray, graph: PositiveClaimGraph) -> np.ndarray:
        """Map raw credits to scores: asserted facts >= 0.5, ranked by credit."""
        asserted = graph.fact_degree > 0
        max_credit = credit.max() if credit.size else 0.0
        if max_credit <= 0:
            ranked = np.zeros_like(credit)
        else:
            ranked = credit / max_credit
        scores = np.where(asserted, 0.5 + 0.5 * ranked, 0.0)
        return np.clip(scores, 0.0, 1.0)

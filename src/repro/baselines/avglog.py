"""AvgLog (Pasternack & Roth, COLING 2010) — a HITS variation.

The update dampens the influence of prolific sources: a source's
trustworthiness is the *average* belief of its claims scaled by the log of
how many claims it makes,

``T(s) = log(|F_s|) * (sum of B(f) for f claimed by s) / |F_s|``

and a fact's belief is the sum of its claimants' trustworthiness,
``B(f) = sum of T(s)``.  Scores are normalised by the maximum each round and
at the end, which (as in the paper's experiments) leaves most facts well
below the 0.5 threshold — AvgLog is the most conservative method in Table 7.
"""

from __future__ import annotations

import numpy as np

from repro.baselines._graph import PositiveClaimGraph
from repro.core.base import TruthMethod, TruthResult, normalise_scores
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError

__all__ = ["AvgLog"]


class AvgLog(TruthMethod):
    """Average-log trustworthiness propagation over positive claims.

    Parameters
    ----------
    iterations:
        Number of alternating updates (the original paper uses a small fixed
        number; 20 by default).
    """

    name = "AvgLog"

    def __init__(self, iterations: int = 20):
        super().__init__()
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        self.iterations = iterations

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        graph = PositiveClaimGraph.from_claims(claims)
        # Initial belief: the voting proportion, as in Pasternack & Roth.
        positives = claims.positive_counts_per_fact().astype(float)
        totals = np.maximum(claims.claim_counts_per_fact().astype(float), 1.0)
        belief = positives / totals

        degree = graph.safe_source_degree()
        log_degree = np.log(np.maximum(graph.source_degree, 1.0) + 1.0)
        trust = np.zeros(graph.num_sources, dtype=float)

        for _ in range(self.iterations):
            sums = graph.sources_from_facts(belief)
            trust = log_degree * sums / degree
            max_trust = trust.max()
            if max_trust > 0:
                trust = trust / max_trust
            belief = graph.facts_from_sources(trust)
            max_belief = belief.max()
            if max_belief > 0:
                belief = belief / max_belief

        return TruthResult(
            method=self.name,
            scores=normalise_scores(belief),
            extras={"trustworthiness": trust, "iterations": self.iterations},
        )

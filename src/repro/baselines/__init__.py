"""Baseline truth-finding methods the paper compares against (Section 6.2).

All baselines implement the same :class:`~repro.core.base.TruthMethod`
interface as LTM, so the comparison harness can run any mix of methods.

* :class:`Voting` — fraction of a fact's claims that are positive.
* :class:`TruthFinder` — Yin et al. (KDD 2007): iterative source
  trustworthiness / fact confidence over positive claims.
* :class:`HubAuthority` — Kleinberg's HITS on the bipartite source-fact graph
  of positive claims.
* :class:`AvgLog` — Pasternack & Roth (COLING 2010) variation of HITS with a
  log-scaled claim-count weighting.
* :class:`Investment` — sources invest credit uniformly in their positive
  claims and are repaid proportionally (non-linear growth ``G(x) = x**1.2``).
* :class:`PooledInvestment` — Investment with per-entity pooling
  (``G(x) = x**1.4``).
* :class:`ThreeEstimates` — Galland et al. (WSDM 2010): jointly estimates fact
  truth, source error and fact difficulty using both positive and negative
  claims.

Method resolution lives in the unified registry
(:func:`repro.engine.default_registry`); the comparison suite is built by
:func:`repro.engine.method_suite`.  The historical
``repro.baselines.registry`` shim (``all_methods`` / ``get_method`` /
``default_method_suite``) was removed in 1.4 after its two-PR deprecation
window.
"""

from repro.baselines.voting import Voting
from repro.baselines.truthfinder import TruthFinder
from repro.baselines.hubauthority import HubAuthority
from repro.baselines.avglog import AvgLog
from repro.baselines.investment import Investment
from repro.baselines.pooled_investment import PooledInvestment
from repro.baselines.three_estimates import ThreeEstimates

__all__ = [
    "Voting",
    "TruthFinder",
    "HubAuthority",
    "AvgLog",
    "Investment",
    "PooledInvestment",
    "ThreeEstimates",
]

"""3-Estimates (Galland, Abiteboul, Marian & Senellart, WSDM 2010).

3-Estimates is the strongest baseline in the paper's comparison because —
unlike the positive-claim methods — it consumes *negative* claims as well.
It jointly estimates three quantities:

* the probability ``T(f)`` that each fact is true,
* the error factor ``epsilon(s)`` of each source, and
* the difficulty ``phi(f)`` of each fact (how easy it is to get wrong),

with mutually-recursive averaging updates and per-round renormalisation.  A
source is only penalised lightly for erring on a hard fact, and a fact
contradicted by low-error sources is unlikely to be true.

Because source error is a *single* scalar, 3-Estimates cannot distinguish a
source that omits values (false negatives) from one that invents them (false
positives); the paper shows this costs it recall relative to LTM while its
precision stays high (Table 7).

This implementation follows the structure of the original algorithm with the
normalisation simplified to clamping and min-max rescaling; the qualitative
behaviour (high precision, recall between Voting and LTM) is preserved.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TruthMethod, TruthResult
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError

__all__ = ["ThreeEstimates"]


class ThreeEstimates(TruthMethod):
    """Joint estimation of fact truth, source error and fact difficulty.

    Parameters
    ----------
    iterations:
        Number of rounds of the three alternating updates.
    initial_error:
        Initial per-source error factor (small: sources assumed mostly right).
    initial_difficulty:
        Initial per-fact difficulty.
    epsilon:
        Lower clamp applied to error and difficulty to avoid divisions by
        zero and degenerate fixed points.
    """

    name = "3-Estimates"

    def __init__(
        self,
        iterations: int = 20,
        initial_error: float = 0.1,
        initial_difficulty: float = 0.5,
        max_error: float = 0.4,
        epsilon: float = 1e-3,
    ):
        super().__init__()
        if iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if not 0.0 < initial_error < 1.0:
            raise ConfigurationError("initial_error must be in (0, 1)")
        if not 0.0 < initial_difficulty <= 1.0:
            raise ConfigurationError("initial_difficulty must be in (0, 1]")
        if not 0.0 < max_error < 1.0:
            raise ConfigurationError("max_error must be in (0, 1)")
        self.iterations = iterations
        self.initial_error = initial_error
        self.initial_difficulty = initial_difficulty
        self.max_error = max_error
        self.epsilon = epsilon

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        num_facts = claims.num_facts
        num_sources = claims.num_sources

        fact_idx = claims.claim_fact
        source_idx = claims.claim_source
        obs = claims.claim_obs.astype(float)

        fact_degree = np.maximum(np.bincount(fact_idx, minlength=num_facts), 1).astype(float)
        source_degree = np.maximum(np.bincount(source_idx, minlength=num_sources), 1).astype(float)

        truth = np.full(num_facts, 0.5, dtype=float)
        error = np.full(num_sources, self.initial_error, dtype=float)
        difficulty = np.full(num_facts, self.initial_difficulty, dtype=float)

        for _ in range(self.iterations):
            # --- update truth: a positive claim supports the fact with weight
            # (1 - error * difficulty); a negative claim supports it only with
            # weight (error * difficulty) -- i.e. "the source is wrong here".
            wrong_prob = np.clip(error[source_idx] * difficulty[fact_idx], self.epsilon, 1.0 - self.epsilon)
            support = obs * (1.0 - wrong_prob) + (1.0 - obs) * wrong_prob
            truth_sum = np.zeros(num_facts, dtype=float)
            np.add.at(truth_sum, fact_idx, support)
            truth = np.clip(truth_sum / fact_degree, 0.0, 1.0)

            # --- update source error: how often the source's claims disagree
            # with the current truth estimate, discounted by fact difficulty.
            disagreement = obs * (1.0 - truth[fact_idx]) + (1.0 - obs) * truth[fact_idx]
            scaled = disagreement / np.clip(difficulty[fact_idx], self.epsilon, 1.0)
            # The error estimate is clamped well below 1: a claim's meaning must
            # never invert (Galland et al. achieve the same effect with their
            # normalisation step).
            error_sum = np.zeros(num_sources, dtype=float)
            np.add.at(error_sum, source_idx, scaled)
            error = error_sum / source_degree
            error = np.clip(error, self.epsilon, self.max_error)

            # --- update fact difficulty: how much disagreement remains on this
            # fact, discounted by the error of the sources involved.
            scaled_difficulty = disagreement / np.clip(error[source_idx], self.epsilon, 1.0)
            difficulty_sum = np.zeros(num_facts, dtype=float)
            np.add.at(difficulty_sum, fact_idx, scaled_difficulty)
            difficulty = difficulty_sum / fact_degree
            difficulty = np.clip(difficulty, 0.1, 1.0)

        return TruthResult(
            method=self.name,
            scores=np.clip(truth, 0.0, 1.0),
            extras={
                "source_error": error,
                "fact_difficulty": difficulty,
                "iterations": self.iterations,
            },
        )

    @staticmethod
    def _rescale(values: np.ndarray) -> np.ndarray:
        """Min-max rescale into [0, 1]; constant vectors are passed through clipped."""
        low = float(values.min()) if values.size else 0.0
        high = float(values.max()) if values.size else 1.0
        if high - low < 1e-12:
            return np.clip(values, 0.0, 1.0)
        return (values - low) / (high - low)

"""Majority voting baseline.

For each fact the score is the proportion of its claims that are positive —
i.e. of the sources that said anything about the fact's entity, the fraction
that asserted this particular attribute value.  At the canonical threshold of
0.5 this is exactly "treat claims made by at least half of the relevant
sources as true".

As the paper notes (Section 6.2.1), when votes are counted per individual
attribute value (rather than per concatenated value list) voting is a
surprisingly strong baseline, but it cannot recover unpopular true values
(e.g. co-authors listed by few sellers) and it has no notion of source
quality.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import TruthMethod, TruthResult
from repro.data.dataset import ClaimMatrix

__all__ = ["Voting"]


class Voting(TruthMethod):
    """Per-fact positive-claim proportion (the paper's Voting baseline)."""

    name = "Voting"

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        positives = claims.positive_counts_per_fact().astype(float)
        totals = claims.claim_counts_per_fact().astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            scores = np.where(totals > 0, positives / np.maximum(totals, 1.0), 0.0)
        return TruthResult(
            method=self.name,
            scores=scores,
            extras={"positives": positives, "totals": totals},
        )

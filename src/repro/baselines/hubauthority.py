"""HubAuthority — Kleinberg's HITS on the source-fact bipartite graph.

Sources are hubs, facts are authorities, and an edge links a source to every
fact it claims positively.  The fixed point of the mutual reinforcement
(``authority(f) = sum of hub(s)``, ``hub(s) = sum of authority(f)``) is found
by power iteration with L2 normalisation; final fact scores are rescaled by
the maximum authority so they land in ``[0, 1]``.

Because authority mass concentrates on facts asserted by many well-connected
sources, the normalised scores of ordinary facts are small — which is why the
paper finds HubAuthority overly conservative at a 0.5 threshold (perfect
precision, low recall).
"""

from __future__ import annotations

import numpy as np

from repro.baselines._graph import PositiveClaimGraph
from repro.core.base import TruthMethod, TruthResult, normalise_scores
from repro.data.dataset import ClaimMatrix
from repro.exceptions import ConfigurationError

__all__ = ["HubAuthority"]


class HubAuthority(TruthMethod):
    """HITS-style mutual reinforcement between sources (hubs) and facts (authorities).

    Parameters
    ----------
    max_iterations:
        Number of power iterations (HITS converges quickly; 50 is plenty).
    tolerance:
        Early-stopping threshold on the L1 change of the authority vector.
    """

    name = "HubAuthority"

    def __init__(self, max_iterations: int = 50, tolerance: float = 1e-9):
        super().__init__()
        if max_iterations <= 0:
            raise ConfigurationError("max_iterations must be positive")
        self.max_iterations = max_iterations
        self.tolerance = tolerance

    def _fit(self, claims: ClaimMatrix) -> TruthResult:
        graph = PositiveClaimGraph.from_claims(claims)
        hubs = np.ones(graph.num_sources, dtype=float)
        authorities = np.ones(graph.num_facts, dtype=float)
        iterations_run = 0

        for iteration in range(self.max_iterations):
            iterations_run = iteration + 1
            new_authorities = graph.facts_from_sources(hubs)
            new_hubs = graph.sources_from_facts(new_authorities)

            authority_norm = np.linalg.norm(new_authorities)
            hub_norm = np.linalg.norm(new_hubs)
            if authority_norm > 0:
                new_authorities = new_authorities / authority_norm
            if hub_norm > 0:
                new_hubs = new_hubs / hub_norm

            delta = float(np.abs(new_authorities - authorities).sum())
            authorities, hubs = new_authorities, new_hubs
            if delta < self.tolerance:
                break

        return TruthResult(
            method=self.name,
            scores=normalise_scores(authorities),
            extras={"hub_scores": hubs, "iterations": iterations_run},
        )

"""Shared bipartite-graph plumbing for the positive-claim baselines.

TruthFinder, HubAuthority, AvgLog, Investment and PooledInvestment all operate
on the bipartite graph linking sources to the facts they claim *positively*.
This module extracts that graph once from a :class:`~repro.data.dataset.ClaimMatrix`
in a flat CSR-like form that the iterative updates can consume efficiently.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import ClaimMatrix

__all__ = ["PositiveClaimGraph"]


@dataclass
class PositiveClaimGraph:
    """The source-fact bipartite graph induced by positive claims.

    Attributes
    ----------
    num_facts, num_sources:
        Sizes of the two node sets (facts with no positive claims are kept,
        they simply have no incident edges).
    edge_fact, edge_source:
        Parallel arrays, one entry per positive claim.
    fact_degree, source_degree:
        Number of incident edges per fact / source (``|S_f|`` and ``|F_s|``).
    entity_groups:
        List of arrays of fact ids sharing an entity; used by baselines that
        normalise within an entity's candidate set (PooledInvestment).
    """

    num_facts: int
    num_sources: int
    edge_fact: np.ndarray
    edge_source: np.ndarray
    fact_degree: np.ndarray
    source_degree: np.ndarray
    entity_groups: list[np.ndarray]

    @classmethod
    def from_claims(cls, claims: ClaimMatrix) -> "PositiveClaimGraph":
        """Extract the positive-claim graph from a claim matrix."""
        mask = claims.claim_obs == 1
        edge_fact = claims.claim_fact[mask]
        edge_source = claims.claim_source[mask]
        fact_degree = np.bincount(edge_fact, minlength=claims.num_facts).astype(float)
        source_degree = np.bincount(edge_source, minlength=claims.num_sources).astype(float)
        entity_groups = [
            np.asarray(fact_ids, dtype=np.int64)
            for fact_ids in claims.entity_groups.values()
        ]
        return cls(
            num_facts=claims.num_facts,
            num_sources=claims.num_sources,
            edge_fact=edge_fact,
            edge_source=edge_source,
            fact_degree=fact_degree,
            source_degree=source_degree,
            entity_groups=entity_groups,
        )

    # -- message passing helpers ----------------------------------------------------
    def facts_from_sources(self, source_values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """Sum source values into facts along edges (optionally edge-weighted)."""
        contributions = source_values[self.edge_source]
        if weights is not None:
            contributions = contributions * weights
        out = np.zeros(self.num_facts, dtype=float)
        np.add.at(out, self.edge_fact, contributions)
        return out

    def sources_from_facts(self, fact_values: np.ndarray, weights: np.ndarray | None = None) -> np.ndarray:
        """Sum fact values into sources along edges (optionally edge-weighted)."""
        contributions = fact_values[self.edge_fact]
        if weights is not None:
            contributions = contributions * weights
        out = np.zeros(self.num_sources, dtype=float)
        np.add.at(out, self.edge_source, contributions)
        return out

    @property
    def num_edges(self) -> int:
        """Number of positive claims (edges)."""
        return int(self.edge_fact.shape[0])

    def safe_source_degree(self) -> np.ndarray:
        """Source degrees with zeros replaced by one (avoids division by zero)."""
        return np.where(self.source_degree > 0, self.source_degree, 1.0)

    def safe_fact_degree(self) -> np.ndarray:
        """Fact degrees with zeros replaced by one (avoids division by zero)."""
        return np.where(self.fact_degree > 0, self.fact_degree, 1.0)

"""Quickstart: resolve the paper's worked example (Tables 1-4) with LTM.

Run with::

    python examples/quickstart.py

The raw database below starts with Table 1 of the paper: three movie sources
disagree about the cast of "Harry Potter".  BadSource.com wrongly credits
Johnny Depp, and Netflix omits two real cast members.  Majority voting cannot
accept Rupert Grint (1 vote of 3) without also accepting Johnny Depp (also 1
vote of 3); LTM can, because it learns two-sided source quality.

A small "back catalogue" of additional movies gives the model the evidence it
needs about each source: IMDB and MovieMania list complete casts, Netflix
lists only the lead actor (false negatives), and BadSource.com keeps inventing
people (false positives).  From that history LTM learns that IMDB is sensitive
and specific, Netflix is specific but not sensitive, and BadSource.com is not
specific — which is exactly what is needed to keep Rupert Grint and drop
Johnny Depp.
"""

import repro
from repro.pipeline import format_merged_records, format_quality_report

# Table 1 of the paper.
PAPER_TABLE1 = [
    ("Harry Potter", "Daniel Radcliffe", "IMDB"),
    ("Harry Potter", "Emma Watson", "IMDB"),
    ("Harry Potter", "Rupert Grint", "IMDB"),
    ("Harry Potter", "Daniel Radcliffe", "Netflix"),
    ("Harry Potter", "Daniel Radcliffe", "BadSource.com"),
    ("Harry Potter", "Emma Watson", "BadSource.com"),
    ("Harry Potter", "Johnny Depp", "BadSource.com"),
    ("Pirates 4", "Johnny Depp", "Hulu.com"),
]


def back_catalogue(num_movies: int = 12) -> list[tuple[str, str, str]]:
    """Historical movies that reveal each source's behaviour."""
    triples = []
    for i in range(num_movies):
        movie = f"Back Catalogue {i}"
        lead, support = f"Lead Actor {i}", f"Supporting Actor {i}"
        triples += [
            (movie, lead, "IMDB"), (movie, support, "IMDB"),
            (movie, lead, "MovieMania"), (movie, support, "MovieMania"),
            (movie, lead, "Netflix"),                      # omits the supporting actor
            (movie, lead, "BadSource.com"),
            (movie, f"Invented Person {i}", "BadSource.com"),  # fabricated cast member
        ]
    return triples


def main() -> None:
    triples = PAPER_TABLE1 + back_catalogue()

    print("=== Integrating with the Latent Truth Model ===")
    # The one-liner API: the method is resolved through the unified registry,
    # extra keyword arguments become solver hyperparameters.
    result = repro.discover(triples, method="ltm", iterations=300, seed=0)

    print("\nHarry Potter, accepted cast:", sorted(result.accepted_values("Harry Potter")))
    print("Harry Potter, rejected cast:", sorted(result.rejected_records.get("Harry Potter", [])))

    print("\nAll merged records:")
    print(format_merged_records(result.merged_records, limit=6))

    print("\nInferred source quality (sensitivity / specificity):")
    print(format_quality_report(result.source_quality))

    print("\n=== The same data under majority voting ===")
    voting_result = repro.discover(triples, method="voting")
    print("Harry Potter, accepted cast:", sorted(voting_result.accepted_values("Harry Potter")))
    print(
        "\nVoting drops Rupert Grint (and would keep Johnny Depp if the threshold "
        "were lowered); LTM keeps Rupert Grint and drops Johnny Depp because it "
        "learned that BadSource.com has low specificity while IMDB has high "
        "sensitivity — the paper's Example 1."
    )


if __name__ == "__main__":
    main()

"""Movie-director integration: the paper's second (harder) evaluation scenario.

Simulates the Bing movie-vertical feed with the 12 sources of paper Table 8,
keeps only conflicting records (as the paper does), fits LTM and prints the
reproduced Table 8 — the per-source sensitivity/specificity ranking — next to
the generating quality, plus the accuracy comparison against Voting and
3-Estimates.

Run with::

    python examples/movie_directors.py [num_movies]
"""

import sys

from repro import (
    LatentTruthModel,
    MovieDirectorConfig,
    MovieDirectorSimulator,
    ThreeEstimates,
    Voting,
)
from repro.evaluation import evaluate_scores
from repro.synth.movies import PAPER_MOVIE_SOURCES


def main(num_movies: int = 1500) -> None:
    config = MovieDirectorConfig(num_movies=num_movies, seed=29)
    print(f"Simulating the movie feed with {config.num_movies} movies and "
          f"{len(PAPER_MOVIE_SOURCES)} sources ...")
    dataset = MovieDirectorSimulator(config).generate()
    print("Dataset (after the conflicting-records filter):", dataset.summary())

    print("\nFitting LTM ...")
    ltm = LatentTruthModel(iterations=100, seed=7)
    result = ltm.fit(dataset.claims)

    print("\nReproduced Table 8 — source quality, sorted by sensitivity")
    print(f"{'Source':<16}{'Sensitivity':>13}{'Specificity':>13}   (generating sens/spec)")
    for name, sens, spec in result.source_quality.ranked_by_sensitivity():
        true_sens, true_spec = PAPER_MOVIE_SOURCES.get(name, (float('nan'), float('nan')))
        print(f"{name:<16}{sens:>13.3f}{spec:>13.3f}   ({true_sens:.2f} / {true_spec:.2f})")

    print("\nAccuracy at threshold 0.5 on the labelled movies:")
    for method, fitted in (
        ("LTM", result),
        ("Voting", Voting().fit(dataset.claims)),
        ("3-Estimates", ThreeEstimates().fit(dataset.claims)),
    ):
        metrics = evaluate_scores(fitted, dataset.labels)
        print(
            f"  {method:12s} accuracy={metrics.accuracy:.3f} precision={metrics.precision:.3f} "
            f"recall={metrics.recall:.3f} fpr={metrics.false_positive_rate:.3f}"
        )

    print(
        "\nWith only 12 sources a single wrong feed can reach a majority, so "
        "Voting degrades here; LTM discounts the low-specificity feeds instead."
    )


if __name__ == "__main__":
    movies = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    main(movies)

"""Train → export → serve → refresh: the full serving lifecycle.

This is the deployment the paper recommends in Section 5.4 ("standard LTM be
infrequently run offline to update source quality and LTMinc be deployed for
online prediction"), expressed with :mod:`repro.serving`:

1. **Train** the Latent Truth Model on a simulated movie crawl from the
   dataset catalog.
2. **Export** the fitted engine as a versioned
   :class:`~repro.serving.TruthArtifact` directory (config + seed + learned
   quality + fact posteriors).
3. **Serve** point / batch / top-k truth queries from a
   :class:`~repro.serving.TruthService` — O(1) lookups, no inference — and
   score never-seen claims with the closed-form LTMinc posterior.
4. **Refresh**: keep answering queries while ``partial_fit`` integrates new
   batches and publishes step artifacts, then atomically swap the service
   onto the newest snapshot.

Run with::

    python examples/serve_lookup.py
"""

import tempfile
from pathlib import Path

from repro import EngineConfig, TruthEngine, as_source
from repro.serving import TruthArtifact, TruthService
from repro.streaming import ClaimStream


def main() -> None:
    workspace = Path(tempfile.mkdtemp(prefix="repro-serving-"))

    print("1) Training LTM on the simulated movie feed ...")
    source = as_source("movies", seed=5, num_movies=300, labelled_movies=50)
    triples = list(source.iter_triples())
    historical, future = ClaimStream.split_prefix(triples, fraction=0.7, seed=1)
    engine = TruthEngine(EngineConfig(
        method="ltm",
        params={"iterations": 80, "seed": 11},
        retrain_every=3,
        export_dir=str(workspace / "steps"),   # partial_fit publishes here
    ))
    engine.fit(historical)

    print("\n2) Exporting the fitted engine ...")
    artifact_path = engine.save(workspace / "movies-v1")
    artifact = TruthArtifact.load(artifact_path)
    print(f"   wrote {artifact_path}")
    print(f"   {artifact.summary()}")

    print("\n3) Serving queries from the artifact ...")
    service = TruthService(artifact_path)
    entity = service.entities()[0]
    print(f"   top facts for {entity!r}:")
    for _, attribute, score in service.top_k(3, entity=entity):
        print(f"     {attribute:30s} {score:.3f}")
    print("   global top-3:", [(e, a, round(s, 3)) for e, a, s in service.top_k(3)])
    unseen = [
        (entity, "A Brand New Claim", "brand-new-source"),
        (entity, "A Brand New Claim", "another-new-source"),
    ]
    print("   cold-start score of a claim from two unseen sources "
          "(prior-mean quality):", round(float(service.score(unseen)[0]), 3))

    print("\n4) Integrating new batches while the service keeps serving ...")
    stream = as_source(future)
    for batch in stream.iter_batches(40, by_entity=True):
        engine.partial_fit(batch)
        # Queries against the *old* snapshot keep working mid-retrain.
        service.truth_of(entity, service.lookup(entity)[0][0])
    steps = sorted((workspace / "steps").iterdir())
    print(f"   {len(steps)} step artifacts published, newest: {steps[-1].name}")

    print("\n5) Refreshing the service onto the newest snapshot ...")
    before = len(service)
    service.refresh(steps[-1])
    print(f"   facts served: {before} -> {len(service)}")
    print(f"   stats: {service.stats()}")


if __name__ == "__main__":
    main()

"""Adversarial-source filtering (paper Section 7).

Injects two adversarial feeds into a simulated movie dataset and shows the
iterative filter removing them: fit LTM, drop sources whose inferred
specificity and precision are both below threshold, and re-fit on the rest.

Run with::

    python examples/adversarial_sources.py
"""

import numpy as np

from repro import LatentTruthModel, MovieDirectorConfig, MovieDirectorSimulator
from repro.evaluation import evaluate_scores
from repro.extensions import AdversarialSourceFilter


def main() -> None:
    print("Simulating a movie feed with two injected adversarial sources ...")
    simulator = MovieDirectorSimulator(MovieDirectorConfig(num_movies=800, seed=41))
    # Two adversarial feeds: very low specificity, mediocre sensitivity.
    simulator.source_quality = dict(simulator.source_quality)
    simulator.source_quality["scraperbot"] = (0.30, 0.05)
    simulator.source_quality["linkfarm"] = (0.25, 0.10)
    dataset = simulator.generate()
    print("Dataset:", dataset.summary())

    print("\nLTM on the poisoned data (no filtering):")
    plain = LatentTruthModel(iterations=80, seed=3).fit(dataset.claims)
    plain_metrics = evaluate_scores(plain, dataset.labels)
    print(f"  accuracy={plain_metrics.accuracy:.3f} fpr={plain_metrics.false_positive_rate:.3f}")

    print("\nRunning the iterative adversarial filter ...")
    filter_loop = AdversarialSourceFilter(
        specificity_threshold=0.6,
        precision_threshold=0.6,
        iterations=80,
        seed=3,
    )
    report = filter_loop.run(dataset.claims)
    print(f"  rounds: {report.rounds}")
    print(f"  removed sources: {report.removed_sources}")

    # Grade the filtered fit on the facts that survived filtering.
    final_claims = report.final_claims
    final_result = report.final_result
    kept_fact_ids = [f.fact_id for f in final_claims.facts]
    labels = {i: dataset.labels[f] for i, f in enumerate(kept_fact_ids) if f in dataset.labels}
    filtered_metrics = evaluate_scores(np.asarray(final_result.scores), labels)
    print(
        f"\nAfter filtering: accuracy={filtered_metrics.accuracy:.3f} "
        f"fpr={filtered_metrics.false_positive_rate:.3f}"
    )
    print("Removing the adversarial feeds restores the false-positive rate of the clean setting.")


if __name__ == "__main__":
    main()

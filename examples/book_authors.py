"""Book-author integration: the paper's first evaluation scenario, simulated.

Generates a simulated abebooks.com-style crawl (many sellers listing only the
first author, a few noisy sellers inventing authors), runs the full method
comparison of paper Table 7 on it, and prints the per-method metrics plus the
LTM source-quality break-down.

Run with::

    python examples/book_authors.py [num_books]
"""

import sys

from repro import BookAuthorConfig, BookAuthorSimulator, method_suite
from repro.evaluation import compare_methods
from repro.pipeline import format_quality_report


def main(num_books: int = 300) -> None:
    config = BookAuthorConfig(
        num_books=num_books,
        num_sellers=max(40, num_books // 3),
        labelled_books=min(100, num_books),
        seed=17,
    )
    print(f"Simulating a book-seller crawl with {config.num_books} books "
          f"and {config.num_sellers} sellers ...")
    dataset = BookAuthorSimulator(config).generate()
    print("Dataset:", dataset.summary())

    print("\nRunning the Table-7 method comparison (threshold 0.5) ...")
    suite = method_suite(iterations=100, seed=7)
    table = compare_methods(
        dataset,
        suite,
        include_incremental=True,
        incremental_kwargs={"iterations": 100, "seed": 7},
    )
    print()
    print(table.format())

    print("\nAUC per method:")
    for name, auc in table.ranked_by("auc"):
        print(f"  {name:18s} {auc:.3f}")

    print("\nSource quality learned by LTM (top 15 sellers by sensitivity):")
    ltm_result = table.evaluation("LTM").result
    print(format_quality_report(ltm_result.source_quality, top=15))

    print("\nWhat to look for (paper Table 7 shape):")
    print(" * LTM / LTMinc have the best accuracy and F1;")
    print(" * Voting has perfect precision but misses co-authors (lower recall);")
    print(" * TruthFinder / Investment / LTMpos predict everything true (FPR ~ 1);")
    print(" * HubAuthority / AvgLog / PooledInvestment are over-conservative.")


if __name__ == "__main__":
    books = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    main(books)

"""Streaming integration with LTMinc (paper Section 5.4), via `repro.io`.

A historical corpus is integrated once with the full Latent Truth Model; the
learned source quality then scores newly arriving batches with the closed-form
posterior of Equation (3) — no re-sampling — and the model is periodically
re-fitted on the accumulated data.

The data side is the unified :mod:`repro.io` API: the crawl comes from the
dataset catalog (``as_source("books", ...)``), and the stream is chunked with
``DataSource.iter_batches`` feeding ``TruthEngine.partial_fit`` batch by
batch — the full claim table is never materialised.

Run with::

    python examples/streaming_integration.py
"""

import numpy as np

from repro import EngineConfig, TruthEngine, as_source
from repro.evaluation import evaluate_scores
from repro.io import MemorySource
from repro.streaming import ClaimStream


def main() -> None:
    print("Simulating a book crawl through the dataset catalog ...")
    source = as_source("books", seed=23, num_books=240, num_sellers=90, labelled_books=100)
    dataset = source.to_dataset()

    triples = list(source.iter_triples())
    historical, future = ClaimStream.split_prefix(triples, fraction=0.4, seed=1)
    print(f"history: {len(historical)} triples, stream: {len(future)} triples")

    engine = TruthEngine(EngineConfig(
        method="ltm",
        params={"iterations": 80, "seed": 11},
        retrain_every=4,
    ))

    print("\nBootstrapping source quality on the historical corpus ...")
    engine.fit(historical)
    quality = engine.quality_report()
    print("bootstrap quality for 5 sellers:",
          {name: round(float(quality.sensitivity[i]), 2) for i, name in enumerate(quality.source_names[:5])})

    print("\nIntegrating the stream batch by batch (25 entities per batch) ...")
    stream = MemorySource(future, name="book-stream")
    for batch in stream.iter_batches(25, by_entity=True, shuffle=True, seed=2):
        report = engine.partial_fit(batch).last_report
        accepted = len(report.accepted_facts())
        flag = " (re-trained)" if report.retrained else ""
        print(f"  batch {report.batch_index:2d}: {report.num_triples:4d} triples, "
              f"{report.num_facts:3d} facts, {accepted:3d} accepted{flag}")

    # Grade the final state against the simulator's ground truth.
    matrix = dataset.claims
    scores = engine.fact_scores
    labelled = [
        (scores.get((matrix.fact(f).entity, str(matrix.fact(f).attribute)), 0.0), truth)
        for f, truth in dataset.labels.items()
    ]
    metrics = evaluate_scores(
        np.array([s for s, _ in labelled]), np.array([t for _, t in labelled])
    )
    print(
        f"\nFinal streaming accuracy on the labelled books: {metrics.accuracy:.3f} "
        f"(precision={metrics.precision:.3f}, recall={metrics.recall:.3f})"
    )


if __name__ == "__main__":
    main()

"""Streaming integration with LTMinc (paper Section 5.4).

A historical corpus is integrated once with the full Latent Truth Model; the
learned source quality then scores newly arriving batches with the closed-form
posterior of Equation (3) — no re-sampling — and the model is periodically
re-fitted on the accumulated data.

Run with::

    python examples/streaming_integration.py
"""

from repro import BookAuthorConfig, BookAuthorSimulator
from repro.evaluation import evaluate_scores
from repro.streaming import ClaimStream, OnlineTruthFinder


def main() -> None:
    print("Simulating a book crawl and splitting it into history + stream ...")
    dataset = BookAuthorSimulator(
        BookAuthorConfig(num_books=240, num_sellers=90, labelled_books=100, seed=23)
    ).generate()

    # Re-derive raw triples from the positive claims of the simulation.
    matrix = dataset.claims
    triples = [
        (matrix.fact(int(f)).entity, matrix.fact(int(f)).attribute, matrix.source_names[int(s)])
        for f, s, o in zip(matrix.claim_fact, matrix.claim_source, matrix.claim_obs)
        if o
    ]
    from repro.types import Triple

    triples = [Triple(*t) for t in triples]
    historical, future = ClaimStream.split_prefix(triples, fraction=0.4, seed=1)
    print(f"history: {len(historical)} triples, stream: {len(future)} triples")

    engine = OnlineTruthFinder(retrain_every=4, iterations=80, seed=11)
    print("\nBootstrapping source quality on the historical corpus ...")
    quality = engine.bootstrap(historical)
    print("bootstrap quality for 5 sellers:",
          {name: round(float(quality.sensitivity[i]), 2) for i, name in enumerate(quality.source_names[:5])})

    print("\nIntegrating the stream batch by batch ...")
    for report in engine.run(ClaimStream(future, batch_entities=25, shuffle_entities=True, seed=2)):
        accepted = len(report.accepted_facts())
        flag = " (re-trained)" if report.retrained else ""
        print(f"  batch {report.batch_index:2d}: {report.num_triples:4d} triples, "
              f"{report.num_facts:3d} facts, {accepted:3d} accepted{flag}")

    # Grade the final state against the simulator's ground truth.
    scores = engine.fact_scores
    labelled = [
        (scores.get((matrix.fact(f).entity, str(matrix.fact(f).attribute)), 0.0), truth)
        for f, truth in dataset.labels.items()
    ]
    import numpy as np

    metrics = evaluate_scores(
        np.array([s for s, _ in labelled]), np.array([t for _, t in labelled])
    )
    print(
        f"\nFinal streaming accuracy on the labelled books: {metrics.accuracy:.3f} "
        f"(precision={metrics.precision:.3f}, recall={metrics.recall:.3f})"
    )


if __name__ == "__main__":
    main()

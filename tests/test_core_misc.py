"""Tests for LTMpos, likelihoods, diagnostics and the TruthMethod base types."""

import numpy as np
import pytest

from repro.core.base import SourceQualityTable, TruthResult, normalise_scores, timed_fit
from repro.core.diagnostics import assess_convergence, mean_and_confidence_interval
from repro.core.gibbs import GibbsTrace
from repro.core.ltmpos import PositiveOnlyLTM
from repro.core.model import LatentTruthModel
from repro.core.posterior import claim_log_likelihood, complete_log_likelihood, log_beta_function
from repro.core.priors import LTMPriors
from repro.evaluation.metrics import evaluate_scores
from repro.exceptions import EvaluationError, ModelError


class TestTruthResult:
    def test_scores_must_be_1d(self):
        with pytest.raises(EvaluationError):
            TruthResult(method="x", scores=np.zeros((2, 2)))

    def test_predictions_and_top_facts(self):
        result = TruthResult(method="x", scores=np.array([0.9, 0.2, 0.6]))
        assert result.predictions().tolist() == [True, False, True]
        assert result.predictions(0.7).tolist() == [True, False, False]
        assert result.top_facts(2) == [(0, 0.9), (2, 0.6)]
        assert result.scores_for([2, 0]).tolist() == [0.6, 0.9]

    def test_quality_table_validation(self):
        with pytest.raises(EvaluationError):
            SourceQualityTable(
                source_names=("a", "b"),
                sensitivity=np.array([0.5]),
                specificity=np.array([0.5, 0.5]),
                precision=np.array([0.5, 0.5]),
            )

    def test_quality_table_validates_accuracy_shape(self):
        with pytest.raises(EvaluationError, match="accuracy"):
            SourceQualityTable(
                source_names=("a", "b"),
                sensitivity=np.array([0.5, 0.5]),
                specificity=np.array([0.5, 0.5]),
                precision=np.array([0.5, 0.5]),
                accuracy=np.array([0.5]),
            )

    def test_quality_table_accuracy_defaults_to_nan(self):
        table = SourceQualityTable(
            source_names=("a",),
            sensitivity=np.array([0.5]),
            specificity=np.array([0.5]),
            precision=np.array([0.5]),
        )
        assert np.isnan(table.accuracy).all()

    def test_quality_table_unknown_source(self):
        table = SourceQualityTable(
            source_names=("a",),
            sensitivity=np.array([0.5]),
            specificity=np.array([0.5]),
            precision=np.array([0.5]),
        )
        with pytest.raises(EvaluationError):
            table.of("missing")

    def test_normalise_scores(self):
        assert normalise_scores(np.array([2.0, 1.0])).tolist() == [1.0, 0.5]
        assert normalise_scores(np.array([0.0, 0.0])).tolist() == [0.0, 0.0]
        assert normalise_scores(np.array([])).size == 0

    def test_timed_fit(self, paper_claims):
        result, runtime = timed_fit(LatentTruthModel(iterations=20, seed=0), paper_claims)
        assert runtime == result.runtime_seconds > 0


class TestPositiveOnlyLTM:
    def test_predicts_everything_true(self, medium_book_dataset):
        """Without negative claims LTMpos collapses to all-true (paper Table 7)."""
        result = PositiveOnlyLTM(iterations=50, seed=0).fit(medium_book_dataset.claims)
        metrics = evaluate_scores(result, medium_book_dataset.labels)
        assert metrics.recall == pytest.approx(1.0)
        assert metrics.false_positive_rate > 0.9

    def test_records_dropped_negative_claims(self, paper_claims):
        result = PositiveOnlyLTM(iterations=20, seed=0).fit(paper_claims)
        assert result.extras["dropped_negative_claims"] == paper_claims.num_negative_claims
        assert result.method == "LTMpos"


class TestLikelihoods:
    def test_log_beta_function(self):
        assert log_beta_function(1.0, 1.0) == pytest.approx(0.0)
        assert log_beta_function(2.0, 2.0) == pytest.approx(np.log(1 / 6))

    def test_claim_log_likelihood_mixture(self):
        # theta=1 reduces to the sensitivity; theta=0 to the false-positive rate.
        assert claim_log_likelihood(1, 1.0, 0.1, 0.8) == pytest.approx(np.log(0.8))
        assert claim_log_likelihood(1, 0.0, 0.1, 0.8) == pytest.approx(np.log(0.1))
        assert claim_log_likelihood(0, 0.0, 0.1, 0.8) == pytest.approx(np.log(0.9))

    def test_claim_log_likelihood_invalid_theta(self):
        with pytest.raises(ModelError):
            claim_log_likelihood(1, 1.5, 0.1, 0.8)

    def test_complete_log_likelihood_prefers_consistent_truth(self, paper_dataset):
        claims = paper_dataset.claims
        truth = np.array([1 if paper_dataset.labels[f] else 0 for f in range(claims.num_facts)])
        theta = np.full(claims.num_facts, 0.5)
        phi0 = np.full(claims.num_sources, 0.1)
        phi1 = np.full(claims.num_sources, 0.8)
        priors = LTMPriors.uniform()
        good = complete_log_likelihood(claims, truth, theta, phi0, phi1, priors)
        flipped = complete_log_likelihood(claims, 1 - truth, theta, phi0, phi1, priors)
        assert good > flipped

    def test_complete_log_likelihood_validation(self, paper_claims):
        n_f, n_s = paper_claims.num_facts, paper_claims.num_sources
        with pytest.raises(ModelError):
            complete_log_likelihood(
                paper_claims, np.zeros(3), np.full(n_f, 0.5), np.full(n_s, 0.1), np.full(n_s, 0.8)
            )
        with pytest.raises(ModelError):
            complete_log_likelihood(
                paper_claims,
                np.zeros(n_f, dtype=int),
                np.full(n_f, 0.5),
                np.full(n_s, 0.0),
                np.full(n_s, 0.8),
            )


class TestDiagnostics:
    def test_mean_and_confidence_interval(self):
        mean, low, high = mean_and_confidence_interval([0.8, 0.9, 1.0])
        assert mean == pytest.approx(0.9)
        assert low < mean < high

    def test_single_value_interval_collapses(self):
        mean, low, high = mean_and_confidence_interval([0.7])
        assert mean == low == high == pytest.approx(0.7)

    def test_empty_values_rejected(self):
        with pytest.raises(EvaluationError):
            mean_and_confidence_interval([])

    def test_invalid_confidence(self):
        with pytest.raises(EvaluationError):
            mean_and_confidence_interval([0.5, 0.6], confidence=1.5)

    def test_assess_convergence(self):
        trace = GibbsTrace(flips_per_iteration=[50, 30, 10, 2, 1, 1, 0, 1, 0, 1])
        report = assess_convergence(trace, num_facts=100, threshold=0.02, window=5)
        assert report.converged
        assert report.iterations == 10

    def test_assess_convergence_not_converged(self):
        trace = GibbsTrace(flips_per_iteration=[50, 48, 51, 49, 50])
        report = assess_convergence(trace, num_facts=100, threshold=0.02, window=5)
        assert not report.converged

    def test_assess_convergence_empty_trace(self):
        report = assess_convergence(GibbsTrace(), num_facts=10)
        assert not report.converged

    def test_assess_convergence_invalid_facts(self):
        with pytest.raises(EvaluationError):
            assess_convergence(GibbsTrace(), num_facts=0)

    def test_sampler_converges_quickly_on_book_data(self, medium_book_dataset):
        """Paper Section 6.3.1: LTM converges within ~50 iterations."""
        result = LatentTruthModel(iterations=50, seed=0).fit(medium_book_dataset.claims)
        trace = result.extras["trace"]
        report = assess_convergence(trace, medium_book_dataset.claims.num_facts, threshold=0.1)
        assert report.converged

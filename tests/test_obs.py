"""Unit tests of the repro.obs telemetry package: tracing, metrics, rendering."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.exceptions import ConfigurationError
from repro.obs import (
    InMemorySpanCollector,
    JsonlSpanExporter,
    NOOP_TRACER,
    NoopTracer,
    TelemetryConfig,
    Tracer,
)
from repro.obs.metrics import (
    EngineMetrics,
    MetricsRegistry,
    engine_metrics,
    global_registry,
    reset_global_registry,
    set_global_registry,
)
from repro.obs.render import (
    format_span_line,
    format_span_summary,
    format_span_tree,
    load_spans,
)


class FakeClock:
    """A hand-advanced wall clock for deterministic span timing tests."""

    def __init__(self, now: float = 0.0, step: float = 0.0):
        self.now = now
        self.step = step

    def __call__(self) -> float:
        current = self.now
        self.now += self.step
        return current

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _isolated_telemetry():
    obs.reset()
    yield
    obs.reset()


# ---------------------------------------------------------------------------
# Tracer / spans
# ---------------------------------------------------------------------------
class TestTracer:
    def test_nested_spans_share_trace_and_link_parents(self):
        clock = FakeClock()
        collector = InMemorySpanCollector()
        tracer = Tracer(collector, clock=clock)
        with tracer.span("outer", kind="test"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.5)
        outer = collector.find("outer")[0]
        inner = collector.find("inner")[0]
        assert outer["trace_id"] == inner["trace_id"]
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["duration_ms"] == pytest.approx(1500.0)
        assert inner["duration_ms"] == pytest.approx(500.0)
        assert outer["attributes"] == {"kind": "test"}

    def test_children_close_before_parents(self):
        clock = FakeClock()
        collector = InMemorySpanCollector()
        tracer = Tracer(collector, clock=clock)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span["name"] for span in collector.spans] == ["inner", "outer"]

    def test_record_attaches_retroactive_child(self):
        clock = FakeClock(now=10.0)
        collector = InMemorySpanCollector()
        tracer = Tracer(collector, clock=clock)
        with tracer.span("outer"):
            tracer.record("work", 10.0, end=10.25, rows=3)
        work = collector.find("work")[0]
        assert work["parent_id"] == collector.find("outer")[0]["span_id"]
        assert work["duration_ms"] == pytest.approx(250.0)
        assert work["attributes"] == {"rows": 3}

    def test_span_set_is_chainable_and_merges(self):
        collector = InMemorySpanCollector()
        tracer = Tracer(collector, clock=FakeClock())
        with tracer.span("s", a=1) as span:
            assert span.set(b=2) is span
        assert collector.spans[0]["attributes"] == {"a": 1, "b": 2}

    def test_exception_marks_span_and_propagates(self):
        collector = InMemorySpanCollector()
        tracer = Tracer(collector, clock=FakeClock())
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        span = collector.spans[0]
        assert span["attributes"]["error"] == "ValueError"

    def test_current_context_inside_and_outside(self):
        tracer = Tracer(InMemorySpanCollector(), clock=FakeClock())
        assert tracer.current_context() is None
        with tracer.span("outer"):
            context = tracer.current_context()
            assert set(context) == {"trace_id", "span_id"}

    def test_adopt_reids_spans_and_preserves_structure(self):
        # A worker-side tracer records an isolated tree...
        worker = Tracer(InMemorySpanCollector(), clock=FakeClock())
        with worker.span("shard.fit"):
            with worker.span("gibbs.iteration"):
                pass
        batch = list(worker.collector.spans)
        # ...which the parent grafts under its own open span.
        parent = Tracer(InMemorySpanCollector(), clock=FakeClock())
        with parent.span("fit"):
            parent.adopt(batch)
        spans = {span["name"]: span for span in parent.collector.spans}
        fit = spans["fit"]
        shard = spans["shard.fit"]
        gibbs = spans["gibbs.iteration"]
        assert shard["parent_id"] == fit["span_id"]
        assert gibbs["parent_id"] == shard["span_id"]
        assert shard["trace_id"] == fit["trace_id"]
        # Re-identified: the adopted ids are fresh in the parent's id space.
        assert shard["span_id"] != batch[-1]["span_id"] or fit["span_id"] != 1

    def test_adopt_falls_back_to_serialized_context(self):
        worker = Tracer(InMemorySpanCollector(), clock=FakeClock())
        with worker.span("shard.fit"):
            pass
        parent = Tracer(InMemorySpanCollector(), clock=FakeClock())
        with parent.span("fit"):
            context = parent.current_context()
        parent.adopt(worker.collector.spans, context=context)
        adopted = parent.collector.find("shard.fit")[0]
        assert adopted["parent_id"] == context["span_id"]
        assert adopted["trace_id"] == context["trace_id"]

    def test_noop_tracer_is_inert(self):
        tracer = NoopTracer()
        assert tracer.enabled is False
        assert tracer.now() == 0.0
        assert tracer.collector is None
        with tracer.span("anything", key="value") as span:
            span.set(more="attrs")
        tracer.record("x", 0.0)
        tracer.adopt([{"name": "x", "span_id": 1}])
        tracer.close()
        assert NOOP_TRACER.enabled is False


class TestSinks:
    def test_collector_find_len_clear(self):
        tracer = Tracer(InMemorySpanCollector(), clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        collector = tracer.collector
        assert len(collector) == 2
        assert [span["name"] for span in collector.find("a")] == ["a"]
        collector.clear()
        assert len(collector) == 0

    def test_jsonl_exporter_is_byte_stable_under_fake_clock(self, tmp_path):
        def run(path):
            tracer = Tracer(JsonlSpanExporter(str(path)), clock=FakeClock(step=0.125))
            with tracer.span("fit", method="ltm"):
                with tracer.span("gibbs.iteration", flips=3):
                    pass
            tracer.close()
            return path.read_bytes()

        first = run(tmp_path / "one.jsonl")
        second = run(tmp_path / "two.jsonl")
        assert first == second
        lines = first.decode().strip().split("\n")
        assert len(lines) == 2
        for line in lines:
            span = json.loads(line)
            # Canonical JSON: keys sorted, compact separators.
            assert list(span) == sorted(span)
            assert ", " not in line

    def test_callable_sink_receives_span_dicts(self):
        seen = []
        tracer = Tracer(seen.append, clock=FakeClock())
        with tracer.span("x"):
            pass
        assert [span["name"] for span in seen] == ["x"]


# ---------------------------------------------------------------------------
# module-level wiring: get_tracer / use_tracer / configure / tracer_for
# ---------------------------------------------------------------------------
class TestGlobalWiring:
    def test_default_is_noop(self):
        assert obs.get_tracer() is NOOP_TRACER

    def test_configure_installs_and_shutdown_restores(self):
        tracer = obs.configure()
        assert obs.get_tracer() is tracer
        assert tracer.enabled
        obs.shutdown()
        assert obs.get_tracer() is NOOP_TRACER

    def test_use_tracer_overrides_context_locally(self):
        inner = Tracer(InMemorySpanCollector(), clock=FakeClock())
        with obs.use_tracer(inner):
            assert obs.get_tracer() is inner
        assert obs.get_tracer() is NOOP_TRACER

    def test_tracer_for_disabled_config_keeps_noop(self):
        assert obs.tracer_for(TelemetryConfig()) is NOOP_TRACER
        assert obs.tracer_for(None) is NOOP_TRACER

    def test_tracer_for_enabled_config_installs_tracer(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = obs.tracer_for(TelemetryConfig(enabled=True, trace_path=str(path)))
        assert tracer.enabled
        assert obs.get_tracer() is tracer
        with tracer.span("x"):
            pass
        obs.shutdown()
        assert load_spans(str(path))[0]["name"] == "x"

    def test_tracer_for_prefers_active_recording_tracer(self):
        active = obs.configure()
        assert obs.tracer_for(TelemetryConfig(enabled=True)) is active


# ---------------------------------------------------------------------------
# TelemetryConfig
# ---------------------------------------------------------------------------
class TestTelemetryConfig:
    def test_defaults_disabled(self):
        config = TelemetryConfig()
        assert config.enabled is False
        assert config.trace_path is None

    def test_round_trip(self):
        config = TelemetryConfig(enabled=True, trace_path="spans.jsonl")
        assert TelemetryConfig.from_dict(config.to_dict()) == config

    def test_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown TelemetryConfig keys"):
            TelemetryConfig.from_dict({"enabled": True, "nope": 1})

    def test_validates_types(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(enabled="yes")
        with pytest.raises(ConfigurationError):
            TelemetryConfig(trace_path=123)

    def test_engine_config_coerces_mapping(self):
        from repro.engine.config import EngineConfig

        config = EngineConfig(telemetry={"enabled": True})
        assert isinstance(config.telemetry, TelemetryConfig)
        assert config.telemetry.enabled
        assert config.to_dict()["telemetry"] == {"enabled": True, "trace_path": None}
        with pytest.raises(ConfigurationError):
            EngineConfig(telemetry="on")


# ---------------------------------------------------------------------------
# metrics: global registry + engine series
# ---------------------------------------------------------------------------
class TestGlobalMetrics:
    def test_global_registry_set_and_reset(self):
        original = global_registry()
        replacement = MetricsRegistry()
        previous = set_global_registry(replacement)
        assert previous is original
        assert global_registry() is replacement
        fresh = reset_global_registry()
        assert global_registry() is fresh
        assert len(fresh) == 0

    def test_engine_metrics_is_idempotent(self):
        first = engine_metrics()
        second = engine_metrics()
        assert first.registry is second.registry is global_registry()
        assert first.fit_seconds is second.fit_seconds
        assert first.store_rows is second.store_rows

    def test_engine_metrics_accepts_explicit_registry(self):
        registry = MetricsRegistry()
        metrics = EngineMetrics(registry)
        metrics.fits_total.inc(method="ltm", mode="batch")
        assert 'repro_engine_fits_total{method="ltm",mode="batch"} 1' in registry.render()
        assert len(global_registry()) == 0

    def test_histogram_sum_and_registry_names(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h_seconds", "help", (1.0, 2.0))
        histogram.observe(0.5, op="x")
        histogram.observe(1.5, op="x")
        assert histogram.sum(op="x") == pytest.approx(2.0)
        assert histogram.count(op="x") == 2
        registry.counter("a_total", "help")
        assert registry.names() == ["a_total", "h_seconds"]
        assert len(registry) == 2


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------
class TestRender:
    def _spans(self):
        return [
            {
                "trace_id": 1,
                "span_id": 1,
                "parent_id": None,
                "name": "fit",
                "start": 0.0,
                "end": 0.004,
                "duration_ms": 4.0,
                "attributes": {"method": "ltm"},
            },
            {
                "trace_id": 1,
                "span_id": 2,
                "parent_id": 1,
                "name": "gibbs.iteration",
                "start": 0.001,
                "end": 0.002,
                "duration_ms": 1.0,
                "attributes": {"flips": 5},
            },
            {
                "trace_id": 1,
                "span_id": 3,
                "parent_id": 1,
                "name": "gibbs.iteration",
                "start": 0.002,
                "end": 0.003,
                "duration_ms": 1.0,
                "attributes": {},
            },
        ]

    def test_format_span_line(self):
        line = format_span_line(self._spans()[1])
        assert line == "gibbs.iteration (1.0 ms) flips=5"

    def test_format_span_tree_structure(self):
        tree = format_span_tree(self._spans())
        lines = tree.split("\n")
        assert lines[0].startswith("fit (4.0 ms)")
        assert lines[1].startswith("├── gibbs.iteration")
        assert lines[2].startswith("└── gibbs.iteration")

    def test_orphan_parent_becomes_root(self):
        spans = self._spans()[1:]  # drop the root; parent_id=1 dangles
        tree = format_span_tree(spans)
        assert tree.split("\n")[0].startswith("gibbs.iteration")

    def test_summary_has_aggregate_table(self):
        summary = format_span_summary(self._spans())
        assert "gibbs.iteration" in summary
        assert "3 spans" in summary
        assert "count" in summary and "total ms" in summary

    def test_empty_inputs(self):
        assert format_span_tree([]) == "(no spans)"
        assert format_span_summary([]) == "(no spans)"

    def test_load_spans_round_trip_and_errors(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        tracer = Tracer(JsonlSpanExporter(str(path)), clock=FakeClock())
        with tracer.span("fit"):
            pass
        tracer.close()
        assert [span["name"] for span in load_spans(str(path))] == ["fit"]

        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "ok"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            load_spans(str(bad))
        not_span = tmp_path / "notspan.jsonl"
        not_span.write_text('{"foo": 1}\n')
        with pytest.raises(ValueError, match="not a span record"):
            load_spans(str(not_span))

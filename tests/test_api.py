"""Tests for the :mod:`repro.api` network serving tier (in-process ASGI).

Covers the response codec, the token-bucket rate limiter, the idempotency
cache, the metrics/logging observability pieces, the router, every HTTP
endpoint of :class:`~repro.api.TruthAPI` (success and error paths), and the
concurrency contract: many reader tasks in flight while a writer republishes
artifacts through the hot-swap endpoints — no torn reads, no 5xx, a
monotonic generation counter.

The bundled HTTP/1.1 server and the CLI are exercised in
``tests/test_api_server.py``; this module drives the app through the
socketless :class:`~repro.api.ASGIClient` harness.
"""

from __future__ import annotations

import asyncio
import json
import logging

import numpy as np
import pytest

from repro.api import (
    ASGIClient,
    IdempotencyCache,
    MetricsRegistry,
    RateLimiter,
    Router,
    TruthAPI,
    canonical_json,
    create_app,
    encode_json,
    fact_row,
)
from repro.api.codec import sanitize
from repro.api.observability import Counter, Gauge, Histogram, RequestLogger
from repro.api.routing import MethodNotAllowed, NotFound
from repro.engine import TruthEngine
from repro.engine.config import EngineConfig
from repro.exceptions import ConfigurationError
from repro.serving import TruthArtifact, TruthService


class FakeClock:
    """A hand-advanced monotonic clock for deterministic timing tests."""

    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(scope="module")
def ltm_artifact():
    engine = TruthEngine(method="ltm", iterations=30, seed=7).fit("paper_example")
    return engine.to_artifact(name="api-test")


@pytest.fixture(scope="module")
def voting_artifact():
    engine = TruthEngine(method="voting").fit("paper_example")
    return engine.to_artifact(name="api-voting")


def make_app(artifact, **options) -> TruthAPI:
    options.setdefault("rate", None)
    return create_app(artifact, **options)


def fetch(app, method, target, **kwargs):
    return asyncio.run(ASGIClient(app).request(method, target, **kwargs))


def mini_artifact(name: str, facts: dict, threshold: float = 0.5) -> TruthArtifact:
    """A hand-built artifact with exactly the given (entity, attr) -> score."""
    pairs = list(facts.items())
    return TruthArtifact(
        config=EngineConfig(method="voting", threshold=threshold),
        fact_entity=np.array([entity for (entity, _), _ in pairs], dtype=str),
        fact_attribute=np.array([attr for (_, attr), _ in pairs], dtype=str),
        fact_score=np.array([score for _, score in pairs], dtype=float),
        name=name,
    )


# ---------------------------------------------------------------------------
# codec
# ---------------------------------------------------------------------------
class TestCodec:
    def test_canonical_json_is_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_non_finite_floats_become_null(self):
        assert canonical_json({"x": float("nan"), "y": float("inf")}) == '{"x":null,"y":null}'

    def test_numpy_scalars_unwrap(self):
        assert canonical_json({"s": np.float64(0.5), "n": np.int64(3)}) == '{"n":3,"s":0.5}'
        assert sanitize(np.bool_(True)) is True

    def test_unicode_not_escaped(self):
        assert canonical_json({"e": "café"}) == '{"e":"café"}'

    def test_encode_json_appends_newline(self):
        assert encode_json({"a": 1}) == b'{"a":1}\n'

    def test_unserialisable_type_raises(self):
        with pytest.raises(TypeError):
            canonical_json({"x": object()})

    def test_fact_row_shape(self):
        row = fact_row("e", "a", 0.75, threshold=0.5)
        assert row == {"entity": "e", "attribute": "a", "score": 0.75, "accepted": True}
        assert fact_row("e", "a", 0.25) == {"entity": "e", "attribute": "a", "score": 0.25}


# ---------------------------------------------------------------------------
# rate limiting
# ---------------------------------------------------------------------------
class TestRateLimiter:
    def test_burst_then_429_then_refill(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=2.0, burst=3, clock=clock)
        assert [limiter.check("c")[0] for _ in range(3)] == [True, True, True]
        allowed, retry = limiter.check("c")
        assert not allowed and retry == pytest.approx(0.5)
        clock.advance(0.5)  # one token refilled at 2/s
        assert limiter.check("c")[0]
        assert not limiter.check("c")[0]

    def test_clients_are_independent(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock())
        assert limiter.check("a")[0]
        assert not limiter.check("a")[0]
        assert limiter.check("b")[0]

    def test_bucket_caps_at_burst(self):
        clock = FakeClock()
        limiter = RateLimiter(rate=100.0, burst=2, clock=clock)
        clock.advance(1000.0)
        assert limiter.check("c")[0]
        assert limiter.check("c")[0]
        assert not limiter.check("c")[0]

    def test_lru_eviction_bounds_memory(self):
        limiter = RateLimiter(rate=1.0, burst=1, clock=FakeClock(), max_clients=2)
        limiter.check("a")
        limiter.check("b")
        limiter.check("c")
        assert len(limiter) == 2
        # 'a' was evicted, so it starts over with a full bucket.
        assert limiter.check("a")[0]

    def test_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            RateLimiter(rate=0)
        with pytest.raises(ConfigurationError):
            RateLimiter(rate=5, burst=0.5)


# ---------------------------------------------------------------------------
# idempotency
# ---------------------------------------------------------------------------
class TestIdempotencyCache:
    def test_store_and_replay(self):
        cache = IdempotencyCache(ttl=10.0, clock=FakeClock())
        cache.store("k", "digest", 200, b"body", "application/json")
        cached, conflict = cache.lookup("k", "digest")
        assert not conflict and cached.status == 200 and cached.body == b"body"

    def test_conflict_on_different_body(self):
        cache = IdempotencyCache(ttl=10.0, clock=FakeClock())
        cache.store("k", "digest-1", 200, b"body", "application/json")
        cached, conflict = cache.lookup("k", "digest-2")
        assert cached is None and conflict

    def test_keys_expire(self):
        clock = FakeClock()
        cache = IdempotencyCache(ttl=5.0, clock=clock)
        cache.store("k", "d", 200, b"body", "application/json")
        clock.advance(5.1)
        assert cache.lookup("k", "d") == (None, False)
        assert len(cache) == 0

    def test_capacity_eviction_drops_oldest(self):
        cache = IdempotencyCache(ttl=100.0, clock=FakeClock(), max_keys=2)
        for key in ("a", "b", "c"):
            cache.store(key, "d", 200, b"x", "t")
        assert cache.lookup("a", "d") == (None, False)
        assert cache.lookup("c", "d")[0] is not None


# ---------------------------------------------------------------------------
# observability
# ---------------------------------------------------------------------------
class TestObservability:
    def test_counter_and_gauge(self):
        counter = Counter("c", "help")
        counter.inc(method="GET")
        counter.inc(2, method="GET")
        assert counter.value(method="GET") == 3
        gauge = Gauge("g", "help")
        gauge.set(7)
        assert gauge.value() == 7

    def test_histogram_buckets_are_cumulative(self):
        hist = Histogram("h", "help", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            hist.observe(value, route="/x")
        lines = list(hist.render())
        assert 'h_bucket{route="/x",le="0.1"} 1' in lines
        assert 'h_bucket{route="/x",le="1"} 2' in lines
        assert 'h_bucket{route="/x",le="+Inf"} 3' in lines
        assert 'h_count{route="/x"} 3' in lines

    def test_registry_renders_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("requests", "Requests.").inc(status="200")
        text = registry.render()
        assert "# HELP requests Requests.\n# TYPE requests counter\n" in text
        assert 'requests{status="200"} 1\n' in text

    def test_registry_rejects_kind_conflicts(self):
        registry = MetricsRegistry()
        registry.counter("m", "x")
        with pytest.raises(TypeError):
            registry.gauge("m", "x")

    def test_request_logger_emits_canonical_json(self, caplog):
        logger = logging.getLogger("repro.api.test")
        with caplog.at_level(logging.INFO, logger="repro.api.test"):
            RequestLogger(logger, wall_clock=lambda: 123.0).log_request(
                request_id="rid",
                method="GET",
                path="/x",
                route="/x",
                status=200,
                duration_s=0.001,
                client="c",
                body_bytes=10,
            )
        record = json.loads(caplog.records[0].getMessage())
        assert record["request_id"] == "rid"
        assert record["status"] == 200
        assert record["ts"] == 123.0
        assert record["duration_ms"] == 1.0


# ---------------------------------------------------------------------------
# routing
# ---------------------------------------------------------------------------
class TestRouter:
    def make(self):
        router = Router()
        router.add("GET", "/truth/{entity}", "truth")
        router.add("POST", "/batch", "batch")
        return router

    def test_match_binds_decoded_segments(self):
        handler, pattern, params = self.make().match("GET", "/truth/Harry%20Potter")
        assert handler == "truth"
        assert pattern == "/truth/{entity}"
        assert params == {"entity": "Harry Potter"}

    def test_unknown_path_is_not_found(self):
        with pytest.raises(NotFound):
            self.make().match("GET", "/nope")

    def test_wrong_method_is_405_with_allow(self):
        with pytest.raises(MethodNotAllowed) as excinfo:
            self.make().match("GET", "/batch")
        assert excinfo.value.allowed == ("POST",)


# ---------------------------------------------------------------------------
# endpoints
# ---------------------------------------------------------------------------
class TestEndpoints:
    def test_healthz(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/healthz")
        payload = response.json()
        assert response.status == 200
        assert payload["status"] == "ok"
        assert payload["generation"] == 1
        assert payload["artifact"]["name"] == "api-test"
        assert payload["artifact"]["facts"] == 5

    def test_truth_entity_listing(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/truth/Harry%20Potter")
        payload = response.json()
        assert response.status == 200
        assert payload["entity"] == "Harry Potter"
        assert payload["count"] == 4
        scores = [fact["score"] for fact in payload["facts"]]
        assert scores == sorted(scores, reverse=True)
        assert all(set(f) == {"entity", "attribute", "score", "accepted"} for f in payload["facts"])

    def test_truth_top_limits(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/truth/Harry%20Potter?top=2")
        assert response.json()["count"] == 2

    def test_truth_point_lookup(self, ltm_artifact):
        response = fetch(
            make_app(ltm_artifact),
            "GET",
            "/truth/Harry%20Potter?attribute=Daniel%20Radcliffe",
        )
        payload = response.json()
        assert response.status == 200
        assert payload["attribute"] == "Daniel Radcliffe"
        assert payload["accepted"] is True

    def test_truth_unknown_entity_404(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/truth/Nobody")
        assert response.status == 404
        assert response.json()["error"] == "unknown_entity"

    def test_truth_unknown_fact_404(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/truth/Harry%20Potter?attribute=Nobody")
        assert response.status == 404
        assert response.json()["error"] == "unknown_fact"

    def test_batch_lookup_with_unknown_null(self, ltm_artifact):
        response = fetch(
            make_app(ltm_artifact),
            "POST",
            "/batch",
            json_body={"pairs": [["Harry Potter", "Daniel Radcliffe"], ["no", "no"]]},
        )
        payload = response.json()
        assert response.status == 200
        assert payload["count"] == 2
        assert payload["scores"][0] == pytest.approx(1.0)
        assert payload["scores"][1] is None

    def test_batch_empty_is_ok(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "POST", "/batch", json_body={"pairs": []})
        assert response.status == 200
        assert response.json() == {"count": 0, "scores": []}

    def test_top_k_global(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/top-k?k=3")
        payload = response.json()
        assert response.status == 200
        assert payload["count"] == 3
        scores = [fact["score"] for fact in payload["facts"]]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_entity_scoped(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/top-k?k=2&entity=Harry%20Potter")
        payload = response.json()
        assert payload["count"] == 2
        assert all(fact["entity"] == "Harry Potter" for fact in payload["facts"])

    def test_top_k_unknown_entity_404(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/top-k?entity=Nobody")
        assert response.status == 404

    def test_score_unseen_claims(self, ltm_artifact):
        response = fetch(
            make_app(ltm_artifact),
            "POST",
            "/score",
            json_body={"triples": [["New", "Thing", "imdb"], ["New", "Thing", "unseen"]]},
        )
        payload = response.json()
        assert response.status == 200
        assert payload["count"] == 2
        assert all(0.0 <= score <= 1.0 for score in payload["scores"])

    def test_score_without_quality_is_422(self, voting_artifact):
        response = fetch(
            make_app(voting_artifact),
            "POST",
            "/score",
            json_body={"triples": [["a", "b", "c"]]},
        )
        assert response.status == 422
        assert response.json()["error"] == "not_scorable"

    def test_metrics_exposition(self, ltm_artifact):
        app = make_app(ltm_artifact)
        fetch(app, "GET", "/healthz")
        response = fetch(app, "GET", "/metrics")
        text = response.body.decode()
        assert response.status == 200
        assert response.headers["content-type"].startswith("text/plain")
        assert 'repro_api_requests_total{method="GET",route="/healthz",status="200"} 1' in text
        assert "repro_api_snapshot_generation 1" in text
        assert "repro_api_request_seconds_bucket" in text

    def test_unknown_route_404(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "GET", "/nope")
        assert response.status == 404
        assert response.json()["error"] == "not_found"

    def test_wrong_method_405_with_allow(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "POST", "/healthz")
        assert response.status == 405
        assert response.headers["allow"] == "GET"

    def test_invalid_json_400(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "POST", "/batch", body=b"not json")
        assert response.status == 400
        assert response.json()["error"] == "invalid_json"

    def test_malformed_rows_400(self, ltm_artifact):
        response = fetch(
            make_app(ltm_artifact), "POST", "/batch", json_body={"pairs": [["only-one"]]}
        )
        assert response.status == 400
        assert response.json()["error"] == "invalid_payload"

    def test_too_many_items_413(self, ltm_artifact):
        app = make_app(ltm_artifact, max_items=2)
        response = fetch(
            app, "POST", "/batch", json_body={"pairs": [["a", "b"]] * 3}
        )
        assert response.status == 413
        assert response.json()["error"] == "too_many_items"

    def test_body_too_large_413(self, ltm_artifact):
        app = make_app(ltm_artifact, max_body_bytes=16)
        response = fetch(app, "POST", "/batch", body=b"x" * 64)
        assert response.status == 413
        assert response.json()["error"] == "body_too_large"

    def test_request_id_propagates(self, ltm_artifact):
        response = fetch(
            make_app(ltm_artifact), "GET", "/healthz", headers={"X-Request-Id": "trace-me"}
        )
        assert response.headers["x-request-id"] == "trace-me"

    def test_request_id_generated_when_absent(self, ltm_artifact):
        app = make_app(ltm_artifact, request_id_factory=lambda: "generated")
        response = fetch(app, "GET", "/healthz")
        assert response.headers["x-request-id"] == "generated"

    def test_structured_log_line(self, ltm_artifact, caplog):
        app = make_app(ltm_artifact)
        with caplog.at_level(logging.INFO, logger="repro.api"):
            fetch(app, "GET", "/truth/Harry%20Potter")
        record = json.loads(caplog.records[-1].getMessage())
        assert record["event"] == "request"
        assert record["method"] == "GET"
        assert record["route"] == "/truth/{entity}"
        assert record["status"] == 200
        assert record["body_bytes"] > 0

    def test_lifespan_protocol(self, ltm_artifact):
        app = make_app(ltm_artifact)

        async def run_lifespan():
            incoming = iter(
                [{"type": "lifespan.startup"}, {"type": "lifespan.shutdown"}]
            )
            sent = []

            async def receive():
                return next(incoming)

            async def send(message):
                sent.append(message["type"])

            await app({"type": "lifespan"}, receive, send)
            return sent

        assert asyncio.run(run_lifespan()) == [
            "lifespan.startup.complete",
            "lifespan.shutdown.complete",
        ]

    def test_app_from_service_and_path(self, ltm_artifact, tmp_path):
        path = ltm_artifact.save(tmp_path / "artifact")
        app = make_app(str(path))
        assert fetch(app, "GET", "/healthz").status == 200
        app2 = make_app(TruthService(ltm_artifact))
        assert fetch(app2, "GET", "/healthz").status == 200

    def test_app_rejects_non_service(self):
        with pytest.raises(ConfigurationError):
            TruthAPI(42)  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# rate limiting through the app
# ---------------------------------------------------------------------------
class TestAppRateLimiting:
    def test_429_with_retry_after(self, ltm_artifact):
        clock = FakeClock()
        app = create_app(ltm_artifact, rate=2.0, burst=2, clock=clock)
        assert fetch(app, "GET", "/top-k").status == 200
        assert fetch(app, "GET", "/top-k").status == 200
        response = fetch(app, "GET", "/top-k")
        assert response.status == 429
        assert response.json()["error"] == "rate_limited"
        assert response.headers["retry-after"] == "1"
        clock.advance(1.0)
        assert fetch(app, "GET", "/top-k").status == 200

    def test_clients_limited_independently(self, ltm_artifact):
        app = create_app(ltm_artifact, rate=1.0, burst=1, clock=FakeClock())
        assert fetch(app, "GET", "/top-k", headers={"X-API-Key": "a"}).status == 200
        assert fetch(app, "GET", "/top-k", headers={"X-API-Key": "a"}).status == 429
        assert fetch(app, "GET", "/top-k", headers={"X-API-Key": "b"}).status == 200

    def test_healthz_and_metrics_exempt(self, ltm_artifact):
        app = create_app(ltm_artifact, rate=1.0, burst=1, clock=FakeClock())
        assert fetch(app, "GET", "/top-k").status == 200
        assert fetch(app, "GET", "/top-k").status == 429
        assert fetch(app, "GET", "/healthz").status == 200
        assert fetch(app, "GET", "/metrics").status == 200

    def test_rate_limited_requests_counted(self, ltm_artifact):
        app = create_app(ltm_artifact, rate=1.0, burst=1, clock=FakeClock())
        fetch(app, "GET", "/top-k")
        fetch(app, "GET", "/top-k")
        text = fetch(app, "GET", "/metrics").body.decode()
        assert "repro_api_rate_limited_total 1" in text


# ---------------------------------------------------------------------------
# ingest + idempotency through the app
# ---------------------------------------------------------------------------
class TestIngest:
    def test_ingest_integrates_and_hot_swaps(self, ltm_artifact):
        app = make_app(ltm_artifact)
        before = fetch(app, "GET", "/healthz").json()
        response = fetch(
            app,
            "POST",
            "/ingest",
            json_body={"triples": [["New Movie", "Someone", "imdb"]]},
        )
        payload = response.json()
        assert response.status == 200
        assert payload["ingested"] == 1
        assert payload["generation"] == before["generation"] + 1
        assert payload["total_facts"] == before["artifact"]["facts"] + 1
        # The new fact is immediately servable from the swapped snapshot.
        lookup = fetch(app, "GET", "/truth/New%20Movie")
        assert lookup.status == 200
        assert lookup.json()["facts"][0]["attribute"] == "Someone"

    def test_ingest_without_quality_uses_voting_fallback(self, voting_artifact):
        app = make_app(voting_artifact)
        response = fetch(
            app,
            "POST",
            "/ingest",
            json_body={"triples": [["X", "y", "s1"], ["X", "y", "s2"], ["X", "z", "s2"]]},
        )
        assert response.status == 200
        assert fetch(app, "GET", "/truth/X").status == 200

    def test_ingest_empty_batch_400(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "POST", "/ingest", json_body={"triples": []})
        assert response.status == 400

    def test_idempotent_replay_returns_cached_bytes(self, ltm_artifact):
        app = make_app(ltm_artifact)
        body = {"triples": [["R", "r", "s"]]}
        headers = {"Idempotency-Key": "key-1"}
        first = fetch(app, "POST", "/ingest", json_body=body, headers=headers)
        replay = fetch(app, "POST", "/ingest", json_body=body, headers=headers)
        assert first.status == replay.status == 200
        assert replay.body == first.body
        assert replay.headers["idempotency-replay"] == "true"
        assert "idempotency-replay" not in first.headers
        # The write was applied exactly once: generation did not advance again.
        assert fetch(app, "GET", "/healthz").json()["generation"] == first.json()["generation"]
        text = fetch(app, "GET", "/metrics").body.decode()
        assert "repro_api_idempotent_replays_total 1" in text

    def test_idempotency_key_conflict_409(self, ltm_artifact):
        app = make_app(ltm_artifact)
        headers = {"Idempotency-Key": "key-1"}
        assert (
            fetch(app, "POST", "/ingest", json_body={"triples": [["A", "a", "s"]]}, headers=headers).status
            == 200
        )
        conflict = fetch(
            app, "POST", "/ingest", json_body={"triples": [["B", "b", "s"]]}, headers=headers
        )
        assert conflict.status == 409
        assert conflict.json()["error"] == "idempotency_key_conflict"

    def test_idempotency_keys_expire(self, ltm_artifact):
        clock = FakeClock()
        app = make_app(ltm_artifact, idempotency_ttl=10.0, clock=clock)
        body = {"triples": [["E", "e", "s"]]}
        headers = {"Idempotency-Key": "key-1"}
        first = fetch(app, "POST", "/ingest", json_body=body, headers=headers)
        clock.advance(11.0)
        again = fetch(app, "POST", "/ingest", json_body=body, headers=headers)
        assert "idempotency-replay" not in again.headers
        assert again.json()["generation"] == first.json()["generation"] + 1


# ---------------------------------------------------------------------------
# refresh + the concurrency contract
# ---------------------------------------------------------------------------
class TestRefresh:
    def test_refresh_from_explicit_path(self, ltm_artifact, tmp_path):
        app = make_app(ltm_artifact)
        replacement = mini_artifact("v2", {("only", "fact"): 0.9})
        path = replacement.save(tmp_path / "v2")
        response = fetch(app, "POST", "/refresh", json_body={"artifact": str(path)})
        payload = response.json()
        assert response.status == 200
        assert payload["generation"] == 2
        assert payload["artifact"]["name"] == "v2"
        assert fetch(app, "GET", "/truth/only").status == 200

    def test_refresh_defaults_to_boot_path(self, ltm_artifact, tmp_path):
        path = ltm_artifact.save(tmp_path / "boot")
        app = make_app(str(path))
        response = fetch(app, "POST", "/refresh")
        assert response.status == 200
        assert response.json()["generation"] == 2

    def test_refresh_without_any_path_400(self, ltm_artifact):
        response = fetch(make_app(ltm_artifact), "POST", "/refresh")
        assert response.status == 400
        assert response.json()["error"] == "no_artifact_path"

    def test_refresh_bad_artifact_400(self, ltm_artifact, tmp_path):
        response = fetch(
            make_app(ltm_artifact), "POST", "/refresh", json_body={"artifact": str(tmp_path)}
        )
        assert response.status == 400
        assert response.json()["error"] == "artifact_error"

    def test_refresh_resets_ingest_writer(self, ltm_artifact, tmp_path):
        app = make_app(ltm_artifact)
        fetch(app, "POST", "/ingest", json_body={"triples": [["Old", "o", "s"]]})
        path = mini_artifact("clean", {("fresh", "f"): 1.0}).save(tmp_path / "clean")
        fetch(app, "POST", "/refresh", json_body={"artifact": str(path)})
        # Ingest after refresh continues from the *new* snapshot: the pre-swap
        # ingested fact is gone, the refreshed fact stays.
        fetch(app, "POST", "/ingest", json_body={"triples": [["newer", "n", "s"]]})
        assert fetch(app, "GET", "/truth/Old").status == 404
        assert fetch(app, "GET", "/truth/fresh").status == 200
        assert fetch(app, "GET", "/truth/newer").status == 200


class TestRefreshRace:
    """Many concurrent readers while a writer republishes: the hot-swap contract."""

    def test_concurrent_readers_during_hot_swap(self, tmp_path):
        artifact_a = mini_artifact(
            "gen-a", {("city", "blue"): 0.9, ("city", "red"): 0.2, ("marker", "A"): 1.0}
        )
        artifact_b = mini_artifact(
            "gen-b", {("city", "blue"): 0.1, ("city", "red"): 0.8, ("marker", "B"): 1.0}
        )
        path_a = artifact_a.save(tmp_path / "a")
        path_b = artifact_b.save(tmp_path / "b")

        # The exact bodies each artifact serves, captured from static apps.
        body_city_a = fetch(make_app(artifact_a), "GET", "/truth/city").body
        body_city_b = fetch(make_app(artifact_b), "GET", "/truth/city").body
        assert body_city_a != body_city_b

        app = make_app(str(path_a))
        client = ASGIClient(app)
        writer_generations: list[int] = []
        statuses: list[int] = []

        async def reader() -> None:
            last_generation = 0
            for _ in range(40):
                response = await client.get("/truth/city")
                statuses.append(response.status)
                # No torn reads: every response is exactly artifact A's or
                # exactly artifact B's rendering, never a mixture.
                assert response.body in (body_city_a, body_city_b)
                health = await client.get("/healthz")
                statuses.append(health.status)
                generation = health.json()["generation"]
                # The generation a reader observes never goes backwards.
                assert generation >= last_generation
                last_generation = generation

        async def writer() -> None:
            for i in range(25):
                target = path_b if i % 2 == 0 else path_a
                response = await client.post(
                    "/refresh", json_body={"artifact": str(target)}
                )
                assert response.status == 200
                writer_generations.append(response.json()["generation"])
                await asyncio.sleep(0)

        async def race() -> None:
            await asyncio.gather(*[reader() for _ in range(8)], writer())

        asyncio.run(race())
        assert all(status < 500 for status in statuses)
        assert statuses.count(200) == len(statuses)
        # Strictly monotonic generations: one bump per successful republish.
        assert writer_generations == list(range(2, 27))
        assert app.generation == 26


class TestServiceRefreshUnderAsyncio:
    """TruthService.refresh itself, driven by raw asyncio tasks (no HTTP)."""

    def test_snapshot_reads_are_atomic_across_refresh(self):
        artifact_a = mini_artifact("a", {("e", "x"): 0.9, ("e", "y"): 0.1})
        artifact_b = mini_artifact("b", {("e", "x"): 0.2, ("e", "y"): 0.7})
        service = TruthService(artifact_a)
        valid = {
            ("a", (("x", 0.9), ("y", 0.1))),
            ("b", (("y", 0.7), ("x", 0.2))),
        }

        async def reader() -> None:
            for _ in range(200):
                snapshot = service.snapshot()
                ranked = tuple(
                    (attr, round(score, 6)) for attr, score in snapshot.entity_top("e")
                )
                assert (snapshot.artifact.name, ranked) in valid
                await asyncio.sleep(0)

        async def writer() -> None:
            for i in range(100):
                service.refresh(artifact_b if i % 2 == 0 else artifact_a)
                await asyncio.sleep(0)

        async def race() -> None:
            await asyncio.gather(*[reader() for _ in range(4)], writer())

        asyncio.run(race())

"""Unit tests for the raw database (Definition 1)."""

import pytest

from repro.data.raw import RawDatabase
from repro.exceptions import DuplicateRowError, EmptyDatasetError
from repro.types import Triple


class TestRawDatabase:
    def test_add_and_len(self, paper_triples):
        raw = RawDatabase(paper_triples)
        assert len(raw) == len(paper_triples)

    def test_rows_are_unique(self):
        raw = RawDatabase(strict=True)
        raw.add(("e", "a", "s"))
        with pytest.raises(DuplicateRowError):
            raw.add(("e", "a", "s"))

    def test_non_strict_ignores_duplicates(self):
        raw = RawDatabase(strict=False)
        assert raw.add(("e", "a", "s")) is True
        assert raw.add(("e", "a", "s")) is False
        assert len(raw) == 1

    def test_accepts_triple_objects_and_tuples(self):
        raw = RawDatabase()
        raw.add(Triple("e", "a", "s"))
        raw.add(("e", "b", "s"))
        assert len(raw) == 2

    def test_contains(self, paper_raw):
        assert Triple("Harry Potter", "Rupert Grint", "IMDB") in paper_raw
        assert ("Harry Potter", "Rupert Grint", "Netflix") not in paper_raw
        assert "not a triple" not in paper_raw

    def test_entities_and_sources(self, paper_raw):
        assert paper_raw.num_entities == 2
        assert paper_raw.num_sources == 4
        assert "Harry Potter" in paper_raw.entities
        assert "Hulu.com" in paper_raw.sources

    def test_attributes_of(self, paper_raw):
        attrs = paper_raw.attributes_of("Harry Potter")
        assert attrs == ["Daniel Radcliffe", "Emma Watson", "Rupert Grint", "Johnny Depp"]
        assert paper_raw.attributes_of("unknown movie") == []

    def test_sources_of(self, paper_raw):
        assert paper_raw.sources_of("Harry Potter") == {"IMDB", "Netflix", "BadSource.com"}
        assert paper_raw.sources_of("Pirates 4") == {"Hulu.com"}

    def test_entities_of(self, paper_raw):
        assert paper_raw.entities_of("IMDB") == {"Harry Potter"}
        assert paper_raw.entities_of("unknown") == set()

    def test_triples_of(self, paper_raw):
        assert len(paper_raw.triples_of("Pirates 4")) == 1

    def test_extend_counts_new_rows(self):
        raw = RawDatabase(strict=False)
        added = raw.extend([("e", "a", "s"), ("e", "a", "s"), ("e", "b", "s")])
        assert added == 2

    def test_restrict_to_entities(self, paper_raw):
        restricted = paper_raw.restrict_to_entities(["Pirates 4"])
        assert restricted.num_entities == 1
        assert len(restricted) == 1

    def test_require_non_empty(self):
        with pytest.raises(EmptyDatasetError):
            RawDatabase().require_non_empty()

    def test_summary(self, paper_raw):
        assert paper_raw.summary() == {"triples": 8, "entities": 2, "sources": 4}

    def test_iteration_yields_triples(self, paper_raw):
        triples = list(paper_raw)
        assert all(isinstance(t, Triple) for t in triples)
        assert len(triples) == 8

    def test_underlying_table_has_key(self, paper_raw):
        assert paper_raw.table.contains_key(("Harry Potter", "Rupert Grint", "IMDB"))


class TestTripleType:
    def test_as_tuple(self):
        triple = Triple("e", "a", "s")
        assert triple.as_tuple() == ("e", "a", "s")

    def test_frozen(self):
        triple = Triple("e", "a", "s")
        with pytest.raises(AttributeError):
            triple.entity = "other"

    def test_equality_and_hash(self):
        assert Triple("e", "a", "s") == Triple("e", "a", "s")
        assert len({Triple("e", "a", "s"), Triple("e", "a", "s")}) == 1

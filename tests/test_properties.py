"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.counts import SourceCounts
from repro.core.gibbs import CollapsedGibbsSampler, GibbsConfig
from repro.core.incremental import posterior_truth_probability
from repro.core.quality import expected_confusion_counts
from repro.data.claim_builder import build_claim_matrix
from repro.evaluation.confusion import ConfusionMatrix
from repro.evaluation.metrics import evaluate_predictions
from repro.evaluation.roc import auc_score
from repro.store.schema import Column, Schema
from repro.store.table import Table

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------
entities = st.integers(min_value=0, max_value=5).map(lambda i: f"e{i}")
attributes = st.integers(min_value=0, max_value=4).map(lambda i: f"a{i}")
sources = st.integers(min_value=0, max_value=4).map(lambda i: f"s{i}")

triples = st.lists(
    st.tuples(entities, attributes, sources),
    min_size=1,
    max_size=60,
)


@st.composite
def claim_matrices(draw):
    return build_claim_matrix(draw(triples), strict=False)


# ---------------------------------------------------------------------------
# Claim construction invariants (Definitions 2-3)
# ---------------------------------------------------------------------------
@given(triples)
@settings(max_examples=60, deadline=None)
def test_claim_builder_invariants(raw_triples):
    claims = build_claim_matrix(raw_triples, strict=False)
    distinct_pairs = {(e, a) for e, a, _ in raw_triples}
    distinct_rows = {(e, a, s) for e, a, s in raw_triples}

    # One fact per distinct (entity, attribute) pair.
    assert claims.num_facts == len(distinct_pairs)
    # One positive claim per distinct raw row.
    assert claims.num_positive_claims == len(distinct_rows)
    # At most one claim per (fact, source) pair.
    pairs = list(zip(claims.claim_fact.tolist(), claims.claim_source.tolist()))
    assert len(pairs) == len(set(pairs))
    # A source has a claim on a fact only if it asserted the fact's entity.
    entity_sources = {}
    for e, _, s in raw_triples:
        entity_sources.setdefault(e, set()).add(s)
    for fact_id, source_id in pairs:
        fact = claims.fact(fact_id)
        assert claims.source_names[source_id] in entity_sources[fact.entity]


@given(claim_matrices(), st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_counts_match_assignment_after_any_truth(claims, seed):
    rng = np.random.default_rng(seed)
    truth = (rng.random(claims.num_facts) < 0.5).astype(np.int64)
    counts = SourceCounts.from_assignment(claims, truth)
    assert counts.total() == claims.num_claims
    assert (counts.counts >= 0).all()
    # Moving every fact to the opposite bucket and back restores the counts.
    before = counts.counts.copy()
    for f in range(claims.num_facts):
        srcs, obs = claims.claims_of(f)
        counts.move_fact(srcs, obs, int(truth[f]), 1 - int(truth[f]))
    for f in range(claims.num_facts):
        srcs, obs = claims.claims_of(f)
        counts.move_fact(srcs, obs, 1 - int(truth[f]), int(truth[f]))
    assert np.array_equal(counts.counts, before)


# ---------------------------------------------------------------------------
# Inference invariants
# ---------------------------------------------------------------------------
@given(claim_matrices(), st.integers(min_value=0, max_value=10_000))
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_gibbs_scores_are_probabilities(claims, seed):
    config = GibbsConfig(iterations=8, burn_in=2, thin=1, seed=seed)
    scores, counts, trace = CollapsedGibbsSampler(config=config).run(claims)
    assert scores.shape == (claims.num_facts,)
    assert np.all((scores >= 0.0) & (scores <= 1.0))
    assert counts.total() == claims.num_claims
    assert trace.total_iterations == 8


@given(claim_matrices())
@settings(max_examples=30, deadline=None)
def test_expected_counts_preserve_mass(claims):
    rng = np.random.default_rng(0)
    scores = rng.random(claims.num_facts)
    expected = expected_confusion_counts(claims, scores)
    assert expected.shape == (claims.num_sources, 2, 2)
    np.testing.assert_allclose(expected.sum(), claims.num_claims)
    assert (expected >= 0).all()


@given(
    claim_matrices(),
    st.floats(min_value=0.05, max_value=0.95),
    st.floats(min_value=0.05, max_value=0.95),
)
@settings(max_examples=30, deadline=None)
def test_incremental_posterior_is_probability(claims, sens, spec):
    scores = posterior_truth_probability(
        claims,
        sensitivity=np.full(claims.num_sources, sens),
        specificity=np.full(claims.num_sources, spec),
    )
    assert np.all((scores >= 0.0) & (scores <= 1.0))


# ---------------------------------------------------------------------------
# Evaluation invariants
# ---------------------------------------------------------------------------
@given(
    st.lists(st.tuples(st.booleans(), st.booleans()), min_size=1, max_size=200)
)
@settings(max_examples=80, deadline=None)
def test_metrics_consistency(pairs):
    predictions = np.array([p for p, _ in pairs])
    labels = np.array([l for _, l in pairs])
    metrics = evaluate_predictions(predictions, labels)
    assert 0.0 <= metrics.precision <= 1.0
    assert 0.0 <= metrics.recall <= 1.0
    assert 0.0 <= metrics.accuracy <= 1.0
    assert 0.0 <= metrics.f1 <= 1.0
    confusion = metrics.confusion
    assert confusion.total == len(pairs)
    # Accuracy equals the weighted combination of sensitivity and specificity.
    positives = labels.sum()
    negatives = len(labels) - positives
    expected_accuracy = (
        confusion.sensitivity * positives + confusion.specificity * negatives
    ) / len(labels)
    np.testing.assert_allclose(metrics.accuracy, expected_accuracy)


@given(
    st.lists(
        st.integers(min_value=0, max_value=1000).map(lambda i: i / 1000.0),
        min_size=4,
        max_size=100,
    ),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_auc_invariant_under_monotone_transform(scores, seed):
    rng = np.random.default_rng(seed)
    scores = np.asarray(scores)
    labels = rng.random(len(scores)) < 0.5
    if labels.all() or (~labels).all():
        return
    base = auc_score(scores, labels)
    transformed = auc_score(scores * 0.5 + 0.25, labels)
    np.testing.assert_allclose(base, transformed)
    assert 0.0 <= base <= 1.0


@given(
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
    st.integers(min_value=0, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_confusion_matrix_measures_bounded(tp, fp, fn, tn):
    matrix = ConfusionMatrix(tp, fp, fn, tn)
    for value in (matrix.precision, matrix.sensitivity, matrix.specificity, matrix.f1):
        assert 0.0 <= value <= 1.0
    if matrix.total > 0:
        assert 0.0 <= matrix.accuracy <= 1.0
    assert matrix.false_positive_rate == 1.0 - matrix.specificity


# ---------------------------------------------------------------------------
# Store invariants
# ---------------------------------------------------------------------------
@given(st.lists(st.tuples(st.text(min_size=1, max_size=8), st.integers()), min_size=0, max_size=50))
@settings(max_examples=60, deadline=None)
def test_table_key_uniqueness(rows):
    schema = Schema(columns=(Column("k", str), Column("v", int)), key=("k",))
    table = Table("t", schema)
    seen = {}
    for key, value in rows:
        if key in seen:
            continue
        table.insert({"k": key, "v": value})
        seen[key] = value
    assert len(table) == len(seen)
    for key, value in seen.items():
        assert table.get(key)["v"] == value

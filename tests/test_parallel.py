"""Tests for repro.parallel: planning, execution backends, score-parity merge.

The contract pinned here (see ISSUE 5 / README "Scaling out"):

* entity partitioning is stable across runs, hash seeds and Python versions;
* sharded fits are **score-identical** to serial for the entity-decomposable
  methods (Voting exactly; LTMinc and the trust-synchronised TruthFinder to
  floating-point reduction order) on every catalog dataset shape;
* sampled LTM is statistically equivalent (pinned AUC tolerance on the LTM
  generative workload) with one globally consistent quality table;
* results are deterministic for a fixed seed **across backends**
  (serial / threads / processes);
* the merged artifact set round-trips through
  :class:`~repro.serving.TruthService` with identical query results;
* clustered entities co-locate, and scaling curves built from sharded runs
  match serial ones.
"""

import numpy as np
import pytest

from repro.core.model import LatentTruthModel
from repro.data.claim_builder import build_claim_matrix
from repro.engine import EngineConfig, ExecutionConfig, TruthEngine, default_registry
from repro.evaluation.roc import auc_score
from repro.evaluation.scaling import entity_subsets, linear_fit
from repro.exceptions import ArtifactError, ConfigurationError, NotFittedError
from repro.extensions.entity_clusters import EntityClusteredLTM
from repro.io import MemorySource, as_source, entity_partition_key
from repro.parallel import (
    MergedFit,
    ParallelExecutor,
    ShardPlanner,
    merge_artifacts,
)
from repro.serving import TruthService

# Small catalog variants: every catalog dataset *shape* (worked example, the
# two simulators, the generative process, the adversarial profile), sized for
# CI.  (key, factory params)
CATALOG_CASES = [
    ("paper_example", {}),
    ("books_small", {}),
    ("movies_small", {}),
    ("ltm_generative", {"num_facts": 400, "num_sources": 10, "seed": 42}),
    ("adversarial", {"num_movies": 80, "labelled_movies": 30, "seed": 41}),
]


def _aligned_scores(engine: TruthEngine, reference: TruthEngine) -> np.ndarray:
    """``engine``'s scores reordered to ``reference``'s fact ids."""
    scores = engine.fact_scores
    return np.array(
        [
            scores[(fact.entity, str(fact.attribute))]
            for fact in reference.claims().facts
        ]
    )


def _sharded(method, num_shards=4, backend="serial", sync_rounds=1, **params):
    return TruthEngine(
        EngineConfig(
            method=method,
            params=params,
            execution=ExecutionConfig(
                num_shards=num_shards,
                backend=backend,
                quality_sync_rounds=sync_rounds,
            ),
        )
    )


# ---------------------------------------------------------------------------
# Partition key and planner
# ---------------------------------------------------------------------------
class TestEntityPartitionKey:
    def test_pinned_values_are_version_stable(self):
        # These values must NEVER change: shard routing depends on them.
        assert entity_partition_key("Harry Potter") == 11092153610038008094
        assert entity_partition_key("Harry Potter", seed=1) == 4037308553356559288

    def test_independent_of_hash_randomisation(self):
        # Same digest regardless of str-hash; non-str keys go through str().
        assert entity_partition_key(42) == entity_partition_key("42")
        assert entity_partition_key("e1") == entity_partition_key("e1")

    def test_seed_changes_partitioning(self):
        entities = [f"e{i}" for i in range(200)]
        a = [entity_partition_key(e, seed=0) % 4 for e in entities]
        b = [entity_partition_key(e, seed=1) % 4 for e in entities]
        assert a != b

    def test_roughly_uniform(self):
        counts = np.bincount(
            [entity_partition_key(f"entity-{i}") % 4 for i in range(2000)], minlength=4
        )
        assert counts.min() > 350


class TestShardPlanner:
    def test_partition_is_disjoint_and_covering(self):
        source = as_source("books_small")
        plan = ShardPlanner(4).plan(source)
        all_triples = list(source.iter_triples())
        assert plan.num_triples == len(all_triples)
        seen_entities = [e for shard in plan for e in shard.entities]
        assert len(seen_entities) == len(set(seen_entities))
        assert set(seen_entities) == {t.entity for t in all_triples}
        for shard in plan:
            for triple in shard.triples:
                assert plan.shards[shard.index].index == ShardPlanner(4).shard_of(
                    triple.entity
                )

    def test_assignment_is_stable_across_planners(self):
        first = ShardPlanner(8, seed=3)
        second = ShardPlanner(8, seed=3)
        for entity in ("Harry Potter", "movie-17", "book 4", "ä-umlaut"):
            assert first.shard_of(entity) == second.shard_of(entity)

    def test_entity_triples_stay_together(self):
        plan = ShardPlanner(3).plan("paper_example")
        entity_shards = {}
        for shard in plan:
            for triple in shard.triples:
                entity_shards.setdefault(triple.entity, set()).add(shard.index)
        assert all(len(shards) == 1 for shards in entity_shards.values())

    def test_more_shards_than_entities_leaves_empty_shards(self):
        plan = ShardPlanner(16).plan("paper_example")  # 2 entities
        assert plan.num_shards == 16
        assert len(plan.non_empty()) <= 2
        assert plan.num_triples == 8

    def test_group_of_co_locates_groups(self):
        clusters = {f"e{i}": f"cluster{i % 3}" for i in range(30)}
        triples = [(e, "v", "s1") for e in clusters] + [(e, "w", "s2") for e in clusters]
        planner = ShardPlanner(5, group_of=lambda e: clusters[e])
        plan = planner.plan(triples)
        cluster_shards = {}
        for shard in plan:
            for entity in shard.entities:
                cluster_shards.setdefault(clusters[entity], set()).add(shard.index)
        assert all(len(shards) == 1 for shards in cluster_shards.values())

    def test_invalid_num_shards(self):
        with pytest.raises(ConfigurationError):
            ShardPlanner(0)


# ---------------------------------------------------------------------------
# Score parity on every catalog dataset shape
# ---------------------------------------------------------------------------
class TestScoreParity:
    @pytest.mark.parametrize("key,params", CATALOG_CASES, ids=[c[0] for c in CATALOG_CASES])
    def test_voting_is_score_identical(self, key, params):
        source = as_source(key, **params)
        serial = TruthEngine(method="voting").fit(source)
        sharded = _sharded("voting").fit(source)
        np.testing.assert_array_equal(_aligned_scores(sharded, serial), serial.predict_proba())

    @pytest.mark.parametrize("key,params", CATALOG_CASES, ids=[c[0] for c in CATALOG_CASES])
    def test_truthfinder_is_score_identical(self, key, params):
        source = as_source(key, **params)
        serial = TruthEngine(method="truthfinder").fit(source)
        sharded = _sharded("truthfinder").fit(source)
        np.testing.assert_allclose(
            _aligned_scores(sharded, serial), serial.predict_proba(), rtol=0, atol=1e-9
        )

    @pytest.mark.parametrize("key,params", CATALOG_CASES, ids=[c[0] for c in CATALOG_CASES])
    def test_ltm_inc_is_score_identical(self, key, params):
        source = as_source(key, **params)
        quality = LatentTruthModel(iterations=30, seed=3).fit(
            build_claim_matrix(source.iter_triples())
        ).source_quality
        serial = TruthEngine(method="ltm_inc", params={"source_quality": quality}).fit(source)
        sharded = _sharded("ltm_inc", source_quality=quality).fit(source)
        np.testing.assert_allclose(
            _aligned_scores(sharded, serial), serial.predict_proba(), rtol=0, atol=1e-12
        )

    def test_sampled_ltm_auc_within_tolerance_on_ltm_generative(self):
        """Sharded LTM is statistically equivalent to serial (pinned AUC tol)."""
        source = as_source("ltm_generative", num_facts=600, num_sources=12, seed=42)
        dataset = source.to_dataset()
        # Label facts by identity: the engine rebuilds its matrix from the
        # positive triples, which drops facts no source ever asserted.
        pair_labels = {
            (fact.entity, str(fact.attribute)): dataset.labels[fact.fact_id]
            for fact in dataset.claims.facts
            if fact.fact_id in dataset.labels
        }

        serial = TruthEngine(method="ltm", params={"iterations": 40, "seed": 7}).fit(source)
        sharded = _sharded("ltm", iterations=40, seed=7).fit(source)

        common = [pair for pair in pair_labels if pair in serial.fact_scores]
        assert len(common) >= 400
        labels = np.array([pair_labels[pair] for pair in common])
        serial_auc = auc_score([serial.fact_scores[p] for p in common], labels)
        sharded_auc = auc_score([sharded.fact_scores[p] for p in common], labels)
        # Pinned tolerance: sharding must never cost more than 0.02 AUC.  (It
        # may *gain* AUC: the quality-sync rounds replace finite-sample Gibbs
        # averages with the closed-form posterior under the merged quality.)
        assert sharded_auc >= serial_auc - 0.02
        assert serial_auc >= 0.85 and sharded_auc >= 0.85  # both fits work

    def test_ltm_pos_keeps_positive_only_semantics_when_sharded(self):
        """LTMpos never sees negative claims: the sharded merge (counts and
        quality-sync re-scoring) must stay on the positive-claim domain, so
        the method's documented optimism (junk facts scored high — the
        paper's FPR ~1.0 ablation behaviour) survives sharding."""
        triples = []
        for e in range(24):
            for s in range(5):
                triples.append((f"e{e}", f"true_{e}", f"good{s}"))
            triples.append((f"e{e}", f"junk_{e}", "spammer"))
        serial = TruthEngine(method="ltm_pos", params={"iterations": 60, "seed": 3}).fit(
            triples
        )
        sharded = _sharded("ltm_pos", num_shards=3, iterations=60, seed=3).fit(triples)
        serial_scores, sharded_scores = serial.fact_scores, sharded.fact_scores
        assert all(
            (serial_scores[k] >= 0.5) == (sharded_scores[k] >= 0.5)
            for k in serial_scores
        )
        junk = [v for k, v in sharded_scores.items() if k[1].startswith("junk_")]
        assert min(junk) >= 0.5  # still optimistic, like serial LTMpos
        diffs = [abs(serial_scores[k] - sharded_scores[k]) for k in serial_scores]
        assert float(np.mean(diffs)) < 0.05

    def test_ltm_quality_sync_gives_one_global_quality(self):
        sharded = _sharded("ltm", iterations=30, seed=5, sync_rounds=2).fit("books_small")
        quality = sharded.quality_report()
        serial = TruthEngine(method="ltm", params={"iterations": 30, "seed": 5}).fit(
            "books_small"
        )
        reference = serial.quality_report()
        assert set(quality.source_names) == set(reference.source_names)
        lookup = {n: i for i, n in enumerate(quality.source_names)}
        aligned = np.array([quality.sensitivity[lookup[n]] for n in reference.source_names])
        # Statistically close, not identical: different Gibbs chains.
        assert np.abs(aligned - reference.sensitivity).mean() < 0.1


# ---------------------------------------------------------------------------
# Backend determinism
# ---------------------------------------------------------------------------
class TestBackendDeterminism:
    @pytest.mark.parametrize("method,params", [
        ("voting", {}),
        ("truthfinder", {}),
        ("ltm", {"iterations": 20, "seed": 11}),
    ])
    def test_backends_agree_bitwise(self, method, params):
        reference = None
        for backend in ("serial", "threads", "processes"):
            engine = _sharded(method, backend=backend, **params).fit("books_small")
            scores = engine.predict_proba()
            if reference is None:
                reference = scores
            else:
                np.testing.assert_array_equal(scores, reference)

    def test_same_seed_same_result_repeated(self):
        a = _sharded("ltm", iterations=20, seed=9).fit("books_small").predict_proba()
        b = _sharded("ltm", iterations=20, seed=9).fit("books_small").predict_proba()
        np.testing.assert_array_equal(a, b)

    def test_shard_seeds_are_slot_stable(self):
        seeds = ParallelExecutor.shard_seeds(7, 4)
        assert seeds == ParallelExecutor.shard_seeds(7, 4)
        assert len(set(seeds)) == 4
        assert ParallelExecutor.shard_seeds(None, 3) == [None, None, None]
        # A shard's seed must not depend on the plan width's occupancy, only
        # on (base seed, slot, width).
        assert ParallelExecutor.shard_seeds(7, 4) != ParallelExecutor.shard_seeds(8, 4)


# ---------------------------------------------------------------------------
# Engine and serving integration
# ---------------------------------------------------------------------------
class TestEngineIntegration:
    def test_sharded_artifact_serves_identically(self, tmp_path):
        engine = _sharded("ltm", iterations=25, seed=3).fit("books_small")
        path = engine.save(tmp_path / "artifact")
        service = TruthService(path)
        pairs = [(f.entity, str(f.attribute)) for f in engine.claims().facts]
        np.testing.assert_array_equal(service.batch(pairs), engine.predict_proba())

    def test_shard_artifacts_merge_back_to_engine_state(self, tmp_path):
        engine = _sharded("ltm", num_shards=3, iterations=25, seed=3).fit("books_small")
        paths = [
            artifact.save(tmp_path / f"shard_{i:02d}")
            for i, artifact in enumerate(engine.shard_artifacts())
        ]
        merged = merge_artifacts(paths)
        service = TruthService(merged)
        pairs = [(f.entity, str(f.attribute)) for f in engine.claims().facts]
        np.testing.assert_allclose(
            service.batch(pairs), engine.predict_proba(), rtol=0, atol=1e-12
        )
        quality = engine.quality_report()
        lookup = {n: i for i, n in enumerate(merged.quality.source_names)}
        idx = [lookup[n] for n in quality.source_names]
        np.testing.assert_allclose(
            merged.quality.sensitivity[idx], quality.sensitivity, rtol=0, atol=1e-9
        )

    def test_merge_artifacts_rejects_overlap(self, tmp_path):
        engine = TruthEngine(method="voting").fit("paper_example")
        artifact = engine.to_artifact()
        with pytest.raises(ArtifactError, match="overlap"):
            merge_artifacts([artifact, artifact])

    def test_shard_artifacts_requires_sharded_fit(self):
        engine = TruthEngine(method="voting").fit("paper_example")
        with pytest.raises(NotFittedError):
            engine.shard_artifacts()

    def test_sharded_streaming_refit(self):
        engine = TruthEngine(
            EngineConfig(
                method="ltm",
                params={"iterations": 15, "seed": 2},
                retrain_every=1,
                execution=ExecutionConfig(num_shards=2, backend="threads"),
            )
        )
        source = MemorySource(
            [(f"e{i}", f"v{i}", f"s{j}") for i in range(8) for j in range(3)]
        )
        for batch in source.iter_batches(4, by_entity=True):
            engine.partial_fit(batch)
        assert engine.is_fitted
        assert engine.source_quality is not None
        assert all(r.retrained for r in engine.reports)
        assert engine.result().extras["execution"]["num_shards"] == 2

    def test_sharded_fit_rejects_claim_matrix_input(self):
        claims = build_claim_matrix([("e", "a", "s1"), ("e", "b", "s2")])
        with pytest.raises(ConfigurationError, match="ClaimMatrix"):
            _sharded("voting").fit(claims)

    def test_sharded_engine_rejects_solver_instance(self):
        from repro.baselines.voting import Voting

        with pytest.raises(ConfigurationError, match="prebuilt solver"):
            TruthEngine(
                EngineConfig(method="voting", execution=ExecutionConfig(num_shards=2)),
                solver=Voting(),
            )

    def test_config_mutated_to_sharded_with_solver_raises_not_degrades(self):
        """Reassigning engine.config mid-lifecycle must never silently run
        a requested sharded fit single-shard."""
        from repro.baselines.voting import Voting

        engine = TruthEngine(solver=Voting())
        engine.config = engine.config.with_overrides(
            execution=ExecutionConfig(num_shards=4)
        )
        with pytest.raises(ConfigurationError, match="prebuilt solver"):
            engine.fit([("e", "a", "s1"), ("e", "b", "s2")])

    def test_custom_registry_shards_on_in_process_backends(self):
        from repro.baselines.voting import Voting
        from repro.engine.registry import MethodRegistry

        registry = MethodRegistry()
        registry.register_method(
            "myvote", Voting, "custom voting", shard_strategy="local"
        )
        for backend in ("serial", "threads"):
            engine = TruthEngine(
                EngineConfig(
                    method="myvote",
                    execution=ExecutionConfig(num_shards=3, backend=backend),
                ),
                registry=registry,
            ).fit("paper_example")
            reference = TruthEngine(method="voting").fit("paper_example")
            np.testing.assert_array_equal(
                _aligned_scores(engine, reference), reference.predict_proba()
            )
        with pytest.raises(ConfigurationError, match="serial.*threads|default registry"):
            TruthEngine(
                EngineConfig(
                    method="myvote",
                    execution=ExecutionConfig(num_shards=3, backend="processes"),
                ),
                registry=registry,
            ).fit("paper_example")

    def test_non_shardable_method_raises_pointed_error(self):
        with pytest.raises(ConfigurationError, match="shardable methods"):
            _sharded("investment").fit("paper_example")


class TestExecutionConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutionConfig(num_shards=0)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(backend="gpu")
        with pytest.raises(ConfigurationError):
            ExecutionConfig(quality_sync_rounds=-1)
        with pytest.raises(ConfigurationError):
            ExecutionConfig(max_workers=0)

    def test_round_trips_through_dicts_and_engine_config(self):
        execution = ExecutionConfig(num_shards=4, backend="processes", quality_sync_rounds=2)
        assert ExecutionConfig.from_dict(execution.to_dict()) == execution
        config = EngineConfig(method="voting", execution=execution)
        assert EngineConfig.from_dict(config.to_dict()) == config
        coerced = EngineConfig(method="voting", execution={"num_shards": 3})
        assert coerced.execution == ExecutionConfig(num_shards=3)

    def test_execution_survives_artifact_round_trip(self, tmp_path):
        engine = _sharded("voting", num_shards=2, backend="threads").fit("paper_example")
        path = engine.save(tmp_path / "artifact")
        restored = TruthEngine.load(path)
        assert restored.config.execution == engine.config.execution


# ---------------------------------------------------------------------------
# Satellites: entity clusters and scaling curves under sharded execution
# ---------------------------------------------------------------------------
class TestClusteredSharding:
    def test_cluster_assignment_co_shards_with_group_of(self):
        clusters = {f"m{i}": ("horror" if i % 2 else "drama") for i in range(40)}
        triples = [
            (entity, f"director-{i % 5}", f"src{j}")
            for i, entity in enumerate(clusters)
            for j in range(3)
        ]
        planner = ShardPlanner(4, group_of=lambda e: clusters[e])
        plan = planner.plan(triples)
        shard_of_cluster = {}
        for shard in plan:
            for entity in shard.entities:
                label = clusters[entity]
                assert shard_of_cluster.setdefault(label, shard.index) == shard.index

    def test_clustered_ltm_fits_whole_clusters_per_shard(self):
        """Each shard holds whole clusters, so per-shard EntityClusteredLTM
        sees every cluster exactly once across the plan."""
        clusters = {f"m{i}": f"c{i % 3}" for i in range(18)}
        triples = [
            (entity, "true-value", f"good{j}") for entity in clusters for j in range(3)
        ] + [(entity, "junk", "spammer") for entity in clusters]
        planner = ShardPlanner(3, group_of=lambda e: clusters[e])
        plan = planner.plan(triples)

        seen_clusters = []
        for shard in plan.non_empty():
            matrix = build_claim_matrix(shard.triples)
            model = EntityClusteredLTM(
                {e: clusters[e] for e in shard.entities},
                min_cluster_entities=1,
                iterations=15,
                seed=4,
            )
            scores, results = model.fit(matrix)
            assert scores.shape == (matrix.num_facts,)
            seen_clusters.extend(results)
        assert sorted(seen_clusters) == sorted(set(clusters.values()))


class TestScalingUnderSharding:
    def test_sharded_scaling_curve_matches_serial(self):
        source = as_source("movies_small")
        claims = build_claim_matrix(source.iter_triples())
        subsets = entity_subsets(claims, fractions=(0.4, 0.7, 1.0), seed=13)

        measurements = []
        for subset in subsets:
            triples = [
                (subset.fact(int(f)).entity, subset.fact(int(f)).attribute,
                 subset.source_names[int(s)])
                for f, s, o in zip(subset.claim_fact, subset.claim_source, subset.claim_obs)
                if o
            ]
            serial = TruthEngine(method="voting").fit(triples)
            sharded = _sharded("voting", num_shards=3).fit(triples)
            np.testing.assert_array_equal(
                _aligned_scores(sharded, serial), serial.predict_proba()
            )
            measurements.append(
                (float(serial.claims().num_claims),
                 float(sharded.result().runtime_seconds))
            )

        claims_counts = [m[0] for m in measurements]
        assert claims_counts == sorted(claims_counts)
        fit = linear_fit(claims_counts, [m[1] for m in measurements])
        assert np.isfinite(fit.slope) and np.isfinite(fit.r_squared)


# ---------------------------------------------------------------------------
# Stable batch ordering (repro.io satellite)
# ---------------------------------------------------------------------------
class TestStableBatchOrdering:
    def test_unshuffled_order_is_first_seen(self):
        source = MemorySource([("b", "1", "s"), ("a", "2", "s"), ("b", "3", "t")])
        batches = list(source.iter_batches(10, by_entity=True))
        assert batches[0].entities == ["b", "a"]

    def test_seeded_shuffle_is_digest_stable(self):
        triples = [(f"e{i}", "v", "s") for i in range(12)]
        source = MemorySource(triples)
        order = [b.entities for b in source.iter_batches(3, by_entity=True, shuffle=True, seed=5)]
        again = [b.entities for b in source.iter_batches(3, by_entity=True, shuffle=True, seed=5)]
        other = [b.entities for b in source.iter_batches(3, by_entity=True, shuffle=True, seed=6)]
        assert order == again
        assert order != other
        # The order is the digest order — reproducible from first principles,
        # independent of interpreter hash randomisation.
        expected = sorted(
            (e for e, _, _ in triples), key=lambda e: entity_partition_key(e, seed=5)
        )
        assert [e for batch in order for e in batch] == expected


class TestExecutorSurface:
    def test_executor_fit_returns_merged_fit(self):
        plan = ShardPlanner(2).plan("paper_example")
        merged = ParallelExecutor("serial").fit(plan, "voting")
        assert isinstance(merged, MergedFit)
        assert merged.num_facts == 5
        assert merged.strategy == "local"
        assert len(merged.shard_summaries()) == len(plan.non_empty())

    def test_executor_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            ParallelExecutor("quantum")

    def test_registry_declares_shard_strategies(self):
        registry = default_registry()
        assert registry.spec("voting").shard_strategy == "local"
        assert registry.spec("ltm_inc").shard_strategy == "local"
        assert registry.spec("ltm").shard_strategy == "counts"
        assert registry.spec("ltm_pos").shard_strategy == "counts_positive"
        assert registry.spec("truthfinder").shard_strategy == "trust_sync"
        assert registry.spec("investment").shard_strategy is None
        assert "shard_strategy" in registry.spec("ltm").metadata()


# ---------------------------------------------------------------------------
# Out-of-core key-range plans (ISSUE 7)
# ---------------------------------------------------------------------------
class TestKeyShardPlans:
    """plan_keys + RangeShardTask: sharding without materialising the corpus."""

    def _triples(self, num_entities=16):
        triples = []
        for e in range(num_entities):
            for s in range(3):
                triples.append((f"e{e}", f"true_{e}", f"good{s}"))
            triples.append((f"e{e}", f"junk_{e}", "spammer"))
        return triples

    @pytest.fixture
    def store_path(self, tmp_path):
        from repro.store import ClaimStore

        path = tmp_path / "claims.db"
        with ClaimStore(path) as store:
            store.append(self._triples())
        return path

    def test_plan_keys_membership_matches_eager_plan(self, store_path):
        from repro.io import StoreSource

        planner = ShardPlanner(4, seed=3)
        with StoreSource(store_path) as source:
            keyed = planner.plan_keys(source)
            eager = planner.plan(source)
        assert keyed.store_path == str(store_path)
        assert keyed.num_entities == eager.num_entities
        for key_shard, shard in zip(keyed.shards, eager.shards):
            assert key_shard.entities == shard.entities
        assert [s.index for s in keyed.non_empty()] == [
            s.index for s in eager.non_empty()
        ]

    def test_plan_keys_accepts_store_urls(self, store_path):
        plan = ShardPlanner(2).plan_keys(f"store://{store_path}")
        assert plan.num_entities == 16

    def test_plan_keys_rejects_unindexed_sources(self):
        with pytest.raises(ConfigurationError, match="plan_keys"):
            ShardPlanner(2).plan_keys(MemorySource([("e", "a", "s")]))

    @pytest.mark.parametrize("backend", ["serial", "threads", "processes"])
    def test_range_fit_is_score_identical_to_eager_fit(self, store_path, backend):
        planner = ShardPlanner(3, seed=1)
        keyed = planner.plan_keys(f"store://{store_path}")
        eager = planner.plan(f"store://{store_path}")
        executor = ParallelExecutor(backend)
        from_keys = executor.fit(keyed, "voting")
        from_triples = executor.fit(eager, "voting")
        assert from_keys.fact_scores() == from_triples.fact_scores()

    def test_range_fit_gibbs_ltm_parity(self, store_path):
        planner = ShardPlanner(2, seed=0)
        params = {"iterations": 30, "seed": 11}
        from_keys = ParallelExecutor("serial").fit(
            planner.plan_keys(f"store://{store_path}"), "ltm", params,
            quality_sync_rounds=1,
        )
        from_triples = ParallelExecutor("serial").fit(
            planner.plan(f"store://{store_path}"), "ltm", params,
            quality_sync_rounds=1,
        )
        assert from_keys.fact_scores() == from_triples.fact_scores()

    def test_fit_shard_range_reopens_the_store_read_only(self, store_path):
        from repro.parallel import RangeShardTask, fit_shard_range

        task = RangeShardTask(
            index=0,
            num_shards=1,
            method="voting",
            params={},
            seed=None,
            strategy="local",
            store_path=str(store_path),
            entities=("e0", "e1"),
        )
        fit = fit_shard_range(task)
        # 2 entities x (1 true fact + 1 junk fact) each.
        assert fit.num_facts == 4
        assert sorted(set(fit.fact_entities)) == ["e0", "e1"]

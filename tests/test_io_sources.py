"""Tests for the concrete :mod:`repro.io` data sources."""

import numpy as np
import pytest

from repro.data.claim_builder import build_dataset
from repro.data.loaders import save_dataset_json, save_labels_csv, save_triples_csv
from repro.data.raw import RawDatabase
from repro.exceptions import ConfigurationError, StreamError
from repro.io.base import DataSource, SourceSchema
from repro.io.sources import (
    DatasetSource,
    JsonDatasetSource,
    MemorySource,
    SyntheticSource,
    TableSource,
    TripleFileSource,
)
from repro.store import Column, Database, Schema, Table
from repro.streaming import ClaimStream
from repro.types import Triple

TRIPLES = [
    Triple("e1", "a", "s1"),
    Triple("e1", "a", "s2"),
    Triple("e1", "b", "s3"),
    Triple("e2", "c", "s1"),
    Triple("e2", "c", "s3"),
    Triple("e3", "d", "s2"),
]
TRUTH = {("e1", "a"): True, ("e1", "b"): False, ("e2", "c"): True}


class TestMemorySource:
    def test_schema_and_triples(self):
        source = MemorySource(TRIPLES, truth=TRUTH, name="mem")
        info = source.schema()
        assert info == SourceSchema(
            name="mem", kind="memory", has_labels=True, num_triples=len(TRIPLES)
        )
        assert list(source.iter_triples()) == TRIPLES
        assert source.labels() == TRUTH

    def test_accepts_tuples_generators_and_rawdb(self):
        from_tuples = MemorySource([t.as_tuple() for t in TRIPLES])
        from_gen = MemorySource(t for t in TRIPLES)
        from_raw = MemorySource(RawDatabase(TRIPLES))
        for source in (from_tuples, from_gen, from_raw):
            assert list(source.iter_triples()) == TRIPLES
        # Generators are materialised: re-iteration works.
        assert list(from_gen.iter_triples()) == TRIPLES

    def test_to_dataset_uses_labels(self):
        dataset = MemorySource(TRIPLES, truth=TRUTH, name="mem").to_dataset()
        assert dataset.name == "mem"
        expected = build_dataset(TRIPLES, truth=TRUTH)
        assert dataset.labels == expected.labels
        assert np.array_equal(dataset.claims.claim_obs, expected.claims.claim_obs)

    def test_to_claim_matrix_matches_build_dataset(self):
        matrix = MemorySource(TRIPLES).to_claim_matrix()
        expected = build_dataset(TRIPLES).claims
        assert np.array_equal(matrix.claim_fact, expected.claim_fact)
        assert np.array_equal(matrix.claim_obs, expected.claim_obs)


class TestIterBatches:
    def test_chunked_batches_cover_all_triples(self):
        source = MemorySource(TRIPLES)
        batches = list(source.iter_batches(4))
        assert [b.index for b in batches] == [0, 1]
        assert [len(b) for b in batches] == [4, 2]
        assert [t for b in batches for t in b.triples] == TRIPLES

    def test_by_entity_groups_whole_entities(self):
        batches = list(MemorySource(TRIPLES).iter_batches(2, by_entity=True))
        assert [b.entities for b in batches] == [["e1", "e2"], ["e3"]]
        assert sum(len(b) for b in batches) == len(TRIPLES)

    def test_shuffle_is_deterministic_per_seed(self):
        source = MemorySource(TRIPLES)
        a = [b.triples for b in source.iter_batches(2, shuffle=True, seed=1)]
        b = [b.triples for b in source.iter_batches(2, shuffle=True, seed=1)]
        assert a == b

    def test_invalid_batch_size(self):
        with pytest.raises(StreamError):
            list(MemorySource(TRIPLES).iter_batches(0))

    def test_claim_stream_is_adapter_over_iter_batches(self):
        stream_batches = list(ClaimStream(TRIPLES, batch_entities=2))
        source_batches = list(MemorySource(TRIPLES).iter_batches(2, by_entity=True))
        assert [b.triples for b in stream_batches] == [b.triples for b in source_batches]

    def test_claim_stream_accepts_sources_and_catalog_keys(self):
        via_source = list(ClaimStream(MemorySource(TRIPLES), batch_entities=2))
        via_list = list(ClaimStream(TRIPLES, batch_entities=2))
        assert [b.triples for b in via_source] == [b.triples for b in via_list]
        assert ClaimStream("paper_example", batch_entities=1).num_batches() == 2


class TestTripleFileSource:
    def test_round_trip_tsv(self, tmp_path):
        path = tmp_path / "crawl.tsv"
        save_triples_csv(TRIPLES, path)
        source = TripleFileSource(path)
        assert source.schema().kind == "file"
        assert source.schema().num_triples is None  # not read yet
        assert sorted(t.as_tuple() for t in source.iter_triples()) == sorted(
            t.as_tuple() for t in TRIPLES
        )
        assert source.schema().num_triples == len(TRIPLES)  # cached after read

    def test_csv_delimiter_inferred(self, tmp_path):
        path = tmp_path / "crawl.csv"
        save_triples_csv(TRIPLES, path, delimiter=",")
        assert len(list(TripleFileSource(path).iter_triples())) == len(TRIPLES)

    def test_labels_file(self, tmp_path):
        path = tmp_path / "crawl.tsv"
        labels_path = tmp_path / "labels.tsv"
        save_triples_csv(TRIPLES, path)
        save_labels_csv(TRUTH, labels_path)
        source = TripleFileSource(path, labels_path=labels_path)
        assert source.schema().has_labels
        assert source.labels() == TRUTH
        assert source.to_dataset().labels == build_dataset(TRIPLES, truth=TRUTH).labels

    def test_labels_file_delimiter_follows_its_own_extension(self, tmp_path):
        path = tmp_path / "crawl.tsv"
        labels_path = tmp_path / "labels.csv"
        save_triples_csv(TRIPLES, path)
        save_labels_csv(TRUTH, labels_path, delimiter=",")
        source = TripleFileSource(path, labels_path=labels_path)
        assert source.labels() == TRUTH


class TestJsonDatasetSource:
    def test_round_trip(self, tmp_path):
        dataset = build_dataset(TRIPLES, truth=TRUTH, name="json-ds")
        path = tmp_path / "ds.json"
        save_dataset_json(dataset, path)
        source = JsonDatasetSource(path)
        assert source.schema().num_triples is None  # lazy
        loaded = source.to_dataset()
        assert loaded.name == "json-ds"
        assert loaded.labels == dataset.labels
        # Triples are the positive claims.
        assert sorted(t.as_tuple() for t in source.iter_triples()) == sorted(
            t.as_tuple() for t in TRIPLES
        )
        assert source.schema().kind == "json"


class TestTableSource:
    def _table(self) -> Table:
        table = Table(
            "assertions",
            Schema(columns=(Column("movie", object), Column("director", object), Column("feed", object))),
        )
        for t in TRIPLES:
            table.insert({"movie": t.entity, "director": t.attribute, "feed": t.source})
        return table

    def test_column_mapping(self):
        source = TableSource(self._table(), entity="movie", attribute="director", source="feed")
        assert list(source.iter_triples()) == TRIPLES
        assert source.schema().num_triples == len(TRIPLES)
        assert source.schema().metadata["columns"]["entity"] == "movie"

    def test_database_lookup(self):
        db = Database("workspace")
        db.attach(self._table())
        source = TableSource(db, "assertions", entity="movie", attribute="director", source="feed")
        assert len(list(source.iter_triples())) == len(TRIPLES)
        with pytest.raises(ConfigurationError):
            TableSource(db)  # table_name required

    def test_missing_column_rejected(self):
        with pytest.raises(ConfigurationError, match="no column"):
            TableSource(self._table())  # default entity/attribute/source absent


class TestDatasetAndSyntheticSources:
    def test_dataset_source_triples_are_positive_claims(self):
        dataset = build_dataset(TRIPLES, truth=TRUTH, name="native")
        source = DatasetSource(dataset)
        assert sorted(t.as_tuple() for t in source.iter_triples()) == sorted(
            t.as_tuple() for t in TRIPLES
        )
        assert source.to_dataset() is dataset
        assert source.labels() == TRUTH
        assert source.schema().kind == "dataset"

    def test_synthetic_source_generates_once_and_lazily(self):
        calls = []

        def factory():
            calls.append(1)
            return build_dataset(TRIPLES, truth=TRUTH, name="lazy")

        source = SyntheticSource(factory, name="lazy", metadata={"seed": 0})
        info = source.schema()
        assert calls == []  # schema() must not force generation
        assert info.kind == "synthetic" and info.metadata == {"seed": 0}
        assert len(list(source.iter_triples())) == len(TRIPLES)
        assert source.to_dataset().name == "lazy"
        assert calls == [1]  # generated exactly once, then cached

    def test_is_datasource(self):
        assert isinstance(MemorySource(TRIPLES), DataSource)
        assert isinstance(DatasetSource(build_dataset(TRIPLES)), DataSource)

"""The PR-1 deprecation shims warn and still delegate correctly."""

import warnings

import numpy as np
import pytest

from repro.baselines.registry import all_methods, default_method_suite, get_method
from repro.baselines.voting import Voting
from repro.core.model import LatentTruthModel
from repro.engine.registry import default_registry, method_suite
from repro.pipeline.integrate import IntegrationPipeline, run_integration
from repro.streaming.online import OnlineTruthFinder
from repro.streaming.stream import ClaimStream


TRIPLES = [
    ("e1", "a", "s1"),
    ("e1", "a", "s2"),
    ("e1", "b", "s3"),
    ("e2", "c", "s1"),
    ("e2", "c", "s3"),
]


class TestBaselinesRegistryShims:
    def test_all_methods_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="all_methods is deprecated"):
            names = all_methods()
        assert len(names) == 9
        registry = default_registry()
        assert all(name in registry for name in names)

    def test_get_method_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="get_method is deprecated"):
            solver = get_method("Voting")
        assert isinstance(solver, Voting)
        assert isinstance(solver, type(default_registry().create("voting")))

    def test_default_method_suite_warns_and_delegates(self):
        with pytest.warns(DeprecationWarning, match="default_method_suite is deprecated"):
            legacy = default_method_suite(iterations=5, seed=0)
        canonical = method_suite(iterations=5, seed=0)
        assert [type(m) for m in legacy] == [type(m) for m in canonical]

    def test_method_suite_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            suite = method_suite(iterations=5, seed=0)
        assert len(suite) == 9

    def test_method_suite_include_accepts_keys_and_display_names(self):
        suite = method_suite(iterations=5, seed=0, include={"LTM": False, "ltm_pos": False})
        assert not any(isinstance(m, LatentTruthModel) for m in suite)
        assert len(suite) == 7


class TestIntegrationPipelineShim:
    def test_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="IntegrationPipeline is deprecated"):
            IntegrationPipeline(method=Voting())

    def test_delegates_to_run_integration(self):
        with pytest.warns(DeprecationWarning):
            pipeline = IntegrationPipeline(method=Voting(), threshold=0.5)
        via_shim = pipeline.run(TRIPLES)
        via_canonical = run_integration(TRIPLES, method=Voting(), threshold=0.5)
        assert via_shim.fact_scores == via_canonical.fact_scores
        assert via_shim.merged_records == via_canonical.merged_records

    def test_run_integration_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = run_integration(TRIPLES, method=Voting())
        assert result.num_accepted() >= 1


class TestOnlineTruthFinderShim:
    def test_constructor_warns(self):
        with pytest.warns(DeprecationWarning, match="OnlineTruthFinder is deprecated"):
            OnlineTruthFinder(retrain_every=0, iterations=5, seed=1)

    def test_delegates_to_engine_partial_fit(self):
        from repro.engine import EngineConfig, TruthEngine
        from repro.core.priors import LTMPriors

        batches = list(ClaimStream(TRIPLES, batch_entities=1))
        with pytest.warns(DeprecationWarning):
            finder = OnlineTruthFinder(retrain_every=2, iterations=10, seed=3)
        for batch in batches:
            finder.integrate_batch(batch)

        engine = TruthEngine(
            EngineConfig(
                method="ltm",
                params={"priors": LTMPriors(), "iterations": 10, "seed": 3},
                retrain_every=2,
                cumulative=True,
            )
        )
        for batch in batches:
            engine.partial_fit(batch)
        assert finder.fact_scores == engine.fact_scores

    def test_discover_does_not_warn(self):
        import repro

        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = repro.discover(TRIPLES, method="voting")
        assert result.num_accepted() >= 1

"""The PR-1 deprecation shims are gone; canonical entry points are warning-free.

The two-PR deprecation window promised in CHANGES.md (PR 1, reiterated in
PR 2) has elapsed: ``IntegrationPipeline``, ``OnlineTruthFinder`` and the
``repro.baselines.registry`` module (``all_methods`` / ``get_method`` /
``default_method_suite``) were removed in 1.4.  These tests pin the removal —
imports fail cleanly with ``ImportError`` — and verify that the canonical
replacements neither warn nor regress.
"""

import importlib
import warnings

import pytest

import repro
from repro.engine import TruthEngine, default_registry, method_suite
from repro.pipeline import run_integration


TRIPLES = [
    ("e1", "a", "s1"),
    ("e1", "a", "s2"),
    ("e1", "b", "s3"),
    ("e2", "c", "s1"),
    ("e2", "c", "s3"),
]


class TestShimsAreRemoved:
    def test_baselines_registry_module_is_gone(self):
        with pytest.raises(ImportError):
            importlib.import_module("repro.baselines.registry")

    def test_baselines_registry_names_are_gone(self):
        with pytest.raises(ImportError):
            from repro.baselines import all_methods  # noqa: F401
        with pytest.raises(ImportError):
            from repro.baselines import get_method  # noqa: F401
        with pytest.raises(ImportError):
            from repro.baselines import default_method_suite  # noqa: F401

    def test_integration_pipeline_is_gone(self):
        with pytest.raises(ImportError):
            from repro.pipeline import IntegrationPipeline  # noqa: F401
        with pytest.raises(ImportError):
            from repro.pipeline.integrate import IntegrationPipeline  # noqa: F401

    def test_online_truth_finder_is_gone(self):
        with pytest.raises(ImportError):
            importlib.import_module("repro.streaming.online")
        with pytest.raises(ImportError):
            from repro.streaming import OnlineTruthFinder  # noqa: F401

    def test_package_root_no_longer_exports_shims(self):
        for name in ("IntegrationPipeline", "OnlineTruthFinder", "default_method_suite"):
            assert name not in repro.__all__
            assert not hasattr(repro, name)


class TestCanonicalReplacementsAreWarningFree:
    def test_method_suite_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            suite = method_suite(iterations=5, seed=0)
        assert len(suite) == 9

    def test_registry_resolves_legacy_display_names(self):
        registry = default_registry()
        assert registry.resolve("3-Estimates") == "three_estimates"
        assert registry.resolve("LTM") == "ltm"

    def test_run_integration_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = run_integration(TRIPLES, method="voting")
        assert result.num_accepted() >= 1

    def test_streaming_engine_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = TruthEngine(
                method="ltm", params={"iterations": 5, "seed": 0}, retrain_every=0
            )
            engine.partial_fit(TRIPLES)
        assert engine.last_report is not None

    def test_discover_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            result = repro.discover(TRIPLES, method="voting")
        assert result.num_accepted() >= 1

"""Tests for Beta priors and the LTM prior specification."""

import numpy as np
import pytest

from repro.core.priors import BetaPrior, LTMPriors
from repro.data.claim_builder import build_claim_matrix
from repro.exceptions import PriorError


class TestBetaPrior:
    def test_mean_and_total(self):
        prior = BetaPrior(10.0, 90.0)
        assert prior.mean == pytest.approx(0.1)
        assert prior.total == pytest.approx(100.0)

    def test_as_array_indexed_by_observation(self):
        prior = BetaPrior(positive=3.0, negative=7.0)
        assert prior.as_array().tolist() == [7.0, 3.0]

    def test_from_mean(self):
        prior = BetaPrior.from_mean(0.2, 50.0)
        assert prior.positive == pytest.approx(10.0)
        assert prior.negative == pytest.approx(40.0)

    def test_from_mean_invalid(self):
        with pytest.raises(PriorError):
            BetaPrior.from_mean(1.5, 10.0)
        with pytest.raises(PriorError):
            BetaPrior.from_mean(0.5, -1.0)

    def test_non_positive_counts_rejected(self):
        with pytest.raises(PriorError):
            BetaPrior(0.0, 1.0)
        with pytest.raises(PriorError):
            BetaPrior(1.0, -2.0)


class TestLTMPriors:
    def test_paper_defaults(self):
        book = LTMPriors.paper_book_defaults()
        assert (book.false_positive.positive, book.false_positive.negative) == (10.0, 1000.0)
        movie = LTMPriors.paper_movie_defaults()
        assert (movie.false_positive.positive, movie.false_positive.negative) == (100.0, 10000.0)
        for priors in (book, movie):
            assert priors.sensitivity.mean == pytest.approx(0.5)
            assert priors.truth.mean == pytest.approx(0.5)

    def test_beta_array_order(self):
        priors = LTMPriors(truth=BetaPrior(positive=3.0, negative=7.0))
        assert priors.beta_array().tolist() == [7.0, 3.0]

    def test_alpha_array_layout(self):
        priors = LTMPriors(
            false_positive=BetaPrior(positive=2.0, negative=8.0),
            sensitivity=BetaPrior(positive=6.0, negative=4.0),
        )
        alpha = priors.alpha_array(["s1", "s2"])
        assert alpha.shape == (2, 2, 2)
        # alpha[s, 0, 1] = prior false-positive count, alpha[s, 0, 0] = true-negative count.
        assert alpha[0, 0, 1] == 2.0 and alpha[0, 0, 0] == 8.0
        # alpha[s, 1, 1] = prior true-positive count, alpha[s, 1, 0] = false-negative count.
        assert alpha[1, 1, 1] == 6.0 and alpha[1, 1, 0] == 4.0

    def test_per_source_override(self):
        priors = LTMPriors().with_source_prior(
            "trusted", BetaPrior(1.0, 500.0), BetaPrior(90.0, 10.0)
        )
        alpha = priors.alpha_array(["other", "trusted"])
        assert alpha[1, 0, 0] == 500.0
        assert alpha[1, 1, 1] == 90.0
        # Other sources keep the global prior.
        assert alpha[0, 1, 1] == priors.sensitivity.positive

    def test_per_source_override_ignores_unknown_sources(self):
        priors = LTMPriors().with_source_prior("ghost", BetaPrior(1, 2), BetaPrior(3, 4))
        alpha = priors.alpha_array(["real"])
        assert alpha[0, 0, 1] == priors.false_positive.positive

    def test_scaled_to(self):
        priors = LTMPriors.scaled_to(2000, specificity_mean=0.99)
        assert priors.false_positive.total == pytest.approx(2000.0)
        assert priors.false_positive.mean == pytest.approx(0.01)

    def test_adaptive_scales_with_claims_per_source(self):
        claims = build_claim_matrix(
            [("e%d" % i, "a%d" % i, "s%d" % (i % 3)) for i in range(30)]
        )
        priors = LTMPriors.adaptive(claims, strength_factor=0.5)
        expected_strength = max(10.0, 0.5 * claims.num_claims / claims.num_sources)
        assert priors.false_positive.total == pytest.approx(expected_strength)

    def test_adaptive_has_floor(self):
        claims = build_claim_matrix([("e", "a", "s")])
        priors = LTMPriors.adaptive(claims)
        assert priors.false_positive.total >= 10.0

    def test_with_learned_quality_array(self):
        priors = LTMPriors()
        counts = np.zeros((2, 2, 2))
        counts[0] = [[30.0, 2.0], [5.0, 40.0]]  # [[TN, FP], [FN, TP]]
        updated = priors.with_learned_quality(["s1", "s2"], counts)
        fp_prior, sens_prior = updated.per_source["s1"]
        assert fp_prior.positive == pytest.approx(priors.false_positive.positive + 2.0)
        assert fp_prior.negative == pytest.approx(priors.false_positive.negative + 30.0)
        assert sens_prior.positive == pytest.approx(priors.sensitivity.positive + 40.0)
        assert sens_prior.negative == pytest.approx(priors.sensitivity.negative + 5.0)

    def test_with_learned_quality_mapping(self):
        priors = LTMPriors()
        updated = priors.with_learned_quality(
            ["s1"], {"s1": np.array([[10.0, 1.0], [2.0, 20.0]])}
        )
        assert "s1" in updated.per_source

    def test_with_learned_quality_shape_mismatch(self):
        with pytest.raises(PriorError):
            LTMPriors().with_learned_quality(["s1", "s2"], np.zeros((1, 2, 2)))

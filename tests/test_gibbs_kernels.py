"""Parity and schedule tests for the blocked Gibbs kernel.

The contract under test is strong: for the same seed the blocked kernel of
:mod:`repro.core.gibbs_vec` must be *bit-identical* to the scalar reference
sweep — same scores, same final confusion counts, same per-sweep flip
sequence, same checkpoint snapshots — on every catalog dataset.  Not
statistically equivalent chains: the same chain.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.gibbs import KERNELS, CollapsedGibbsSampler, GibbsConfig, GibbsTrace
from repro.core.gibbs_vec import BlockSchedule, KernelTables
from repro.core.model import LatentTruthModel
from repro.core.ltmpos import PositiveOnlyLTM
from repro.core.priors import LTMPriors
from repro.data.claim_builder import build_claim_matrix
from repro.data.dataset import ClaimMatrix
from repro.data.records import Fact
from repro.engine import EngineConfig, ExecutionConfig, TruthEngine
from repro.exceptions import ConfigurationError
from repro.io.catalog import default_catalog
from repro.types import Triple


def _run_both(claims, budget: int, seed: int = 13, priors=None):
    """Run scalar and blocked kernels on the paper schedule for ``budget``."""
    priors = priors or LTMPriors.adaptive(claims)
    results = {}
    for kernel in ("scalar", "blocked"):
        config = GibbsConfig.paper_schedule(budget, seed=seed, kernel=kernel)
        sampler = CollapsedGibbsSampler(priors=priors, config=config)
        results[kernel] = sampler.run(claims)
    return results["scalar"], results["blocked"]


def _assert_parity(scalar, blocked):
    scores_s, counts_s, trace_s = scalar
    scores_b, counts_b, trace_b = blocked
    assert np.array_equal(scores_s, scores_b)
    assert np.array_equal(counts_s.counts, counts_b.counts)
    assert trace_s.flips_per_iteration == trace_b.flips_per_iteration
    assert trace_s.kernel == "scalar"
    assert trace_b.kernel == "blocked"


# ---------------------------------------------------------------------------
# Configuration surface
# ---------------------------------------------------------------------------
class TestKernelConfig:
    def test_kernel_choices_exported(self):
        assert KERNELS == ("scalar", "blocked", "auto")

    def test_default_is_auto_and_resolves_to_blocked(self):
        config = GibbsConfig()
        assert config.kernel == "auto"
        assert config.resolved_kernel() == "blocked"
        assert GibbsConfig(kernel="scalar").resolved_kernel() == "scalar"

    def test_invalid_kernel_rejected(self):
        with pytest.raises(ConfigurationError, match="kernel"):
            GibbsConfig(kernel="simd")

    def test_paper_schedule_threads_kernel(self):
        config = GibbsConfig.paper_schedule(50, seed=3, kernel="blocked")
        assert config.kernel == "blocked"
        assert (config.iterations, config.burn_in, config.thin) == (50, 10, 2)

    def test_trace_defaults(self):
        trace = GibbsTrace()
        assert trace.kernel == "scalar"
        assert trace.block_count == 0

    def test_auto_run_reports_blocked(self, paper_claims):
        sampler = CollapsedGibbsSampler(config=GibbsConfig(iterations=10, burn_in=2, thin=1, seed=0))
        _, _, trace = sampler.run(paper_claims)
        assert trace.kernel == "blocked"
        assert trace.block_count == BlockSchedule.build(paper_claims).num_blocks


# ---------------------------------------------------------------------------
# Exact parity on every catalog dataset
# ---------------------------------------------------------------------------
class TestCatalogParity:
    # Budgets follow the paper schedule; larger corpora get shorter chains to
    # keep the suite fast — the arithmetic exercised per sweep is identical.
    @pytest.mark.parametrize(
        "key, budget",
        [
            ("paper_example", 100),
            ("books_small", 100),
            ("movies_small", 100),
            ("books", 50),
            ("movies", 20),
            ("adversarial", 20),
            ("ltm_generative", 7),
        ],
    )
    def test_blocked_matches_scalar(self, key, budget):
        claims = default_catalog().create(key).to_dataset().claims
        scalar, blocked = _run_both(claims, budget)
        _assert_parity(scalar, blocked)
        assert blocked[2].block_count >= 1

    @pytest.mark.parametrize("budget", [7, 10, 20, 50, 100, 200])
    def test_paper_schedule_budgets(self, paper_claims, budget):
        scalar, blocked = _run_both(paper_claims, budget, seed=budget)
        _assert_parity(scalar, blocked)

    def test_checkpoints_and_callback_parity(self, small_movie_dataset):
        claims = small_movie_dataset.claims
        priors = LTMPriors.adaptive(claims)
        snapshots = {}

        def run(kernel):
            seen = []
            config = GibbsConfig(iterations=30, burn_in=5, thin=2, seed=11, kernel=kernel)
            sampler = CollapsedGibbsSampler(priors=priors, config=config)
            out = sampler.run(claims, checkpoints=(5, 20), callback=lambda i, t: seen.append(t.copy()))
            snapshots[kernel] = seen
            return out

        scalar, blocked = run("scalar"), run("blocked")
        _assert_parity(scalar, blocked)
        for key in (5, 20):
            assert np.array_equal(
                scalar[2].checkpoint_scores[key], blocked[2].checkpoint_scores[key]
            )
        assert len(snapshots["scalar"]) == len(snapshots["blocked"]) == 30
        for a, b in zip(snapshots["scalar"], snapshots["blocked"]):
            assert np.array_equal(a, b)

    def test_initial_truth_parity(self, paper_claims):
        initial = np.ones(paper_claims.num_facts, dtype=np.int64)
        outs = []
        for kernel in ("scalar", "blocked"):
            config = GibbsConfig(iterations=20, burn_in=4, thin=1, seed=5, kernel=kernel)
            outs.append(CollapsedGibbsSampler(config=config).run(paper_claims, initial_truth=initial))
        _assert_parity(*outs)


# ---------------------------------------------------------------------------
# Degenerate block schedules
# ---------------------------------------------------------------------------
class TestBlockSchedule:
    def test_single_source_corpus_is_one_block_per_fact(self):
        # Every fact claims through the same source, so no two facts are
        # conflict-free: the schedule degenerates to one block per fact and
        # the kernel to a pure sequential sweep — which must still be exact.
        triples = [Triple(f"e{i}", f"v{i}", "lone") for i in range(12)]
        claims = build_claim_matrix(triples)
        schedule = BlockSchedule.build(claims)
        assert schedule.num_blocks == claims.num_facts
        assert all(len(block) == 1 for block in schedule.blocks())
        scalar, blocked = _run_both(claims, 50, seed=2)
        _assert_parity(scalar, blocked)
        assert blocked[2].block_count == claims.num_facts

    def test_disjoint_sources_is_single_block(self):
        triples = [Triple(f"e{i}", f"v{i}", f"s{i}") for i in range(8)]
        claims = build_claim_matrix(triples)
        schedule = BlockSchedule.build(claims)
        assert schedule.num_blocks == 1
        assert len(schedule.blocks()[0]) == claims.num_facts

    def test_claimless_facts_excluded_from_schedule(self):
        facts = [Fact(0, "e1", "a"), Fact(1, "e2", "b"), Fact(2, "e3", "c")]
        claims = ClaimMatrix(
            facts=facts,
            source_names=["s"],
            claim_fact=[0, 2],
            claim_source=[0, 0],
            claim_obs=[True, False],
        )
        schedule = BlockSchedule.build(claims)
        covered = np.concatenate(schedule.blocks())
        assert sorted(covered.tolist()) == [0, 2]
        assert schedule.fact_masks[1] == 0
        scalar, blocked = _run_both(claims, 100, seed=9, priors=LTMPriors.paper_book_defaults())
        _assert_parity(scalar, blocked)
        # The claimless fact's score reflects the truth prior, not 0/1 collapse.
        assert 0.0 < scalar[0][1] < 1.0

    def test_all_facts_claimless(self):
        facts = [Fact(0, "e1", "a"), Fact(1, "e2", "b")]
        claims = ClaimMatrix(
            facts=facts, source_names=["s"], claim_fact=[], claim_source=[], claim_obs=[]
        )
        schedule = BlockSchedule.build(claims)
        assert schedule.num_blocks == 0
        scalar, blocked = _run_both(claims, 20, seed=1, priors=LTMPriors.paper_book_defaults())
        _assert_parity(scalar, blocked)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_colourings_are_conflict_free_and_order_preserving(self, seed):
        # Property test: on random corpora every colouring must (a) cover each
        # claimed fact exactly once, (b) contain no intra-block source
        # conflict, and (c) keep conflicting facts in index order across
        # blocks — the invariant that makes block order equal scalar order.
        rng = np.random.default_rng(seed)
        num_entities = int(rng.integers(5, 40))
        num_sources = int(rng.integers(1, 12))
        triples = []
        for e in range(num_entities):
            degree = min(num_sources, int(rng.integers(1, 5)))
            for s in rng.choice(num_sources, size=degree, replace=False):
                triples.append(Triple(f"e{e}", f"v{rng.integers(0, 3)}", f"s{s}"))
        claims = build_claim_matrix(triples)
        schedule = BlockSchedule.build(claims)

        claimed = [f for f in range(claims.num_facts) if schedule.fact_masks[f]]
        covered = [f for block in schedule.blocks() for f in block.tolist()]
        assert sorted(covered) == claimed  # (a) exactly-once cover

        colour_of = {}
        for b, block in enumerate(schedule.blocks()):
            union = 0
            for f in block.tolist():
                mask = schedule.fact_masks[f]
                assert not (union & mask)  # (b) conflict-free within the block
                union |= mask
                colour_of[f] = b
        for i, f in enumerate(claimed):
            for g in claimed[i + 1 :]:
                if schedule.fact_masks[f] & schedule.fact_masks[g]:
                    assert colour_of[f] < colour_of[g]  # (c) order-preserving

        scalar, blocked = _run_both(claims, 20, seed=seed + 100)
        _assert_parity(scalar, blocked)


# ---------------------------------------------------------------------------
# Kernel tables
# ---------------------------------------------------------------------------
class TestKernelTables:
    def test_threshold_rule_matches_sigmoid_rule(self):
        # "u < 1 / (1 + exp(delta))" and "delta < log((1 - u) / u)" are the
        # same decision; the tables evaluate the latter so each sweep costs
        # one whole-array log instead of a per-fact exp.
        rng = np.random.default_rng(0)
        uniforms = rng.random(1000)
        deltas = rng.normal(scale=30.0, size=1000)
        thresholds = KernelTables.switch_thresholds(uniforms)
        old_rule = uniforms < 1.0 / (1.0 + np.exp(deltas))
        new_rule = deltas < thresholds
        assert np.array_equal(old_rule, new_rule)

    def test_zero_uniform_always_flips(self):
        thresholds = KernelTables.switch_thresholds(np.array([0.0, 0.5]))
        assert thresholds[0] == np.inf
        assert thresholds[1] == pytest.approx(0.0)

    def test_table_entries_are_log_counts_plus_alpha(self, paper_claims):
        priors = LTMPriors.adaptive(paper_claims)
        tables = KernelTables(paper_claims, priors)
        alpha = priors.alpha_array(paper_claims.source_names)
        # Source 0's (t=0, o=0) sub-table starts at offset 0: entry m must be
        # log(m + alpha[0, 0, 0]).
        d0 = int(paper_claims.claim_counts_per_source()[0])
        expected = np.log(np.arange(d0 + 1) + alpha[0, 0, 0])
        assert np.array_equal(tables.log_num[: d0 + 1], expected)
        assert tables.delta_log_beta[0] == -tables.delta_log_beta[1]


# ---------------------------------------------------------------------------
# Model / engine / CLI integration
# ---------------------------------------------------------------------------
class TestKernelIntegration:
    def test_latent_truth_model_kernel_parity(self, small_book_dataset):
        claims = small_book_dataset.claims
        results = {
            kernel: LatentTruthModel(iterations=30, seed=4, kernel=kernel).fit(claims)
            for kernel in ("scalar", "blocked")
        }
        assert np.array_equal(results["scalar"].scores, results["blocked"].scores)
        assert results["blocked"].extras["trace"].kernel == "blocked"
        assert results["blocked"].extras["trace"].block_count >= 1

    def test_positive_only_ltm_forwards_kernel(self, paper_claims):
        results = {
            kernel: PositiveOnlyLTM(iterations=30, seed=4, kernel=kernel).fit(paper_claims)
            for kernel in ("scalar", "blocked")
        }
        assert np.array_equal(results["scalar"].scores, results["blocked"].scores)

    def test_engine_params_reach_sampler_and_artifact(self, tmp_path):
        engine = TruthEngine(
            method="ltm", params={"iterations": 25, "seed": 11, "kernel": "blocked"}
        ).fit("paper_example")
        assert engine.last_trace.kernel == "blocked"
        reference = TruthEngine(
            method="ltm", params={"iterations": 25, "seed": 11, "kernel": "scalar"}
        ).fit("paper_example")
        assert np.array_equal(engine.result().scores, reference.result().scores)
        # The kernel choice survives the artifact round-trip.
        path = engine.save(tmp_path / "artifact")
        loaded = TruthEngine.load(path)
        assert loaded.config.params["kernel"] == "blocked"

    def test_sharded_execution_kernel_parity(self):
        def sharded(kernel):
            engine = TruthEngine(
                EngineConfig(
                    method="ltm",
                    params={"iterations": 20, "seed": 6, "kernel": kernel},
                    execution=ExecutionConfig(num_shards=3, backend="serial"),
                )
            )
            return engine.fit("movies_small")

        scalar, blocked = sharded("scalar"), sharded("blocked")
        scores = scalar.fact_scores
        assert all(
            scores[key] == value for key, value in blocked.fact_scores.items()
        )

    def test_fit_span_reports_kernel(self):
        obs.reset()
        try:
            tracer = obs.configure()
            TruthEngine(method="ltm", iterations=20, seed=7, params={"kernel": "blocked"}).fit(
                "paper_example"
            )
            fit = [s for s in tracer.collector.spans if s["name"] == "fit"][0]
            assert fit["attributes"]["kernel"] == "blocked"
            assert fit["attributes"]["block_count"] >= 1
        finally:
            obs.reset()

    def test_cli_kernel_artifacts_byte_identical(self, tmp_path, capsys):
        # The CI smoke in miniature: export paper_example under both kernels
        # and require byte-identical artifact scores.
        from repro.cli import main

        for kernel in ("scalar", "blocked"):
            code = main(
                [
                    "export",
                    "paper_example",
                    str(tmp_path / kernel),
                    "--iterations",
                    "30",
                    "--seed",
                    "7",
                    "--kernel",
                    kernel,
                ]
            )
            assert code == 0
        capsys.readouterr()
        arrays = {
            kernel: np.load(tmp_path / kernel / "arrays.npz") for kernel in ("scalar", "blocked")
        }
        scalar_scores = arrays["scalar"]["fact_score"]
        blocked_scores = arrays["blocked"]["fact_score"]
        assert scalar_scores.tobytes() == blocked_scores.tobytes()

    def test_obs_summary_prints_kernel(self, tmp_path, capsys):
        from repro.cli import main

        trace_path = tmp_path / "trace.jsonl"
        assert (
            main(
                [
                    "integrate",
                    "--source",
                    "paper_example",
                    "--iterations",
                    "20",
                    "--kernel",
                    "blocked",
                    "--trace-out",
                    str(trace_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["obs", "summary", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "kernel=blocked" in out
        assert "block_count=" in out

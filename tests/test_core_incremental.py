"""Tests for LTMinc (Equation 3) and the incremental workflow."""

import numpy as np
import pytest

from repro.core.base import SourceQualityTable
from repro.core.incremental import IncrementalLTM, posterior_truth_probability
from repro.core.model import LatentTruthModel
from repro.data.claim_builder import build_claim_matrix
from repro.evaluation.metrics import evaluate_scores
from repro.exceptions import ModelError


def _quality(names, sens, spec):
    return SourceQualityTable(
        source_names=tuple(names),
        sensitivity=np.asarray(sens, dtype=float),
        specificity=np.asarray(spec, dtype=float),
        precision=np.full(len(names), np.nan),
    )


class TestPosteriorTruthProbability:
    def test_positive_claim_from_specific_source_raises_probability(self):
        claims = build_claim_matrix([("e", "a", "good")])
        scores = posterior_truth_probability(
            claims, sensitivity=np.array([0.9]), specificity=np.array([0.99])
        )
        assert scores[0] > 0.9

    def test_negative_claim_from_sensitive_source_lowers_probability(self):
        # Two sources assert the entity; the highly sensitive one denies fact "b".
        claims = build_claim_matrix([("e", "a", "sensitive"), ("e", "a", "other"), ("e", "b", "other")])
        sens = np.zeros(claims.num_sources)
        spec = np.zeros(claims.num_sources)
        sens[claims.source_id("sensitive")] = 0.99
        spec[claims.source_id("sensitive")] = 0.9
        sens[claims.source_id("other")] = 0.5
        spec[claims.source_id("other")] = 0.5
        fact_b = next(f.fact_id for f in claims.facts if f.attribute == "b")
        scores = posterior_truth_probability(claims, sens, spec)
        assert scores[fact_b] < 0.5

    def test_balanced_evidence_gives_half(self):
        claims = build_claim_matrix([("e", "a", "s")])
        scores = posterior_truth_probability(
            claims, sensitivity=np.array([0.5]), specificity=np.array([0.5])
        )
        assert scores[0] == pytest.approx(0.5)

    def test_prior_shifts_result(self):
        claims = build_claim_matrix([("e", "a", "s")])
        skewed = posterior_truth_probability(
            claims,
            sensitivity=np.array([0.5]),
            specificity=np.array([0.5]),
            truth_prior=(9.0, 1.0),
        )
        assert skewed[0] == pytest.approx(0.9)

    def test_shape_validation(self):
        claims = build_claim_matrix([("e", "a", "s")])
        with pytest.raises(ModelError):
            posterior_truth_probability(claims, np.array([0.5, 0.5]), np.array([0.5]))

    def test_invalid_prior(self):
        claims = build_claim_matrix([("e", "a", "s")])
        with pytest.raises(ModelError):
            posterior_truth_probability(
                claims, np.array([0.5]), np.array([0.5]), truth_prior=(0.0, 1.0)
            )


class TestIncrementalLTM:
    def test_from_model_requires_quality(self):
        from repro.core.base import TruthResult

        bare = TruthResult(method="x", scores=np.array([0.5]))
        with pytest.raises(ModelError):
            IncrementalLTM.from_model(bare)

    def test_unknown_sources_use_defaults(self):
        quality = _quality(["known"], [0.9], [0.99])
        predictor = IncrementalLTM(quality, default_sensitivity=0.4, default_specificity=0.8)
        claims = build_claim_matrix([("e", "a", "known"), ("e", "a", "newcomer"), ("e", "b", "newcomer")])
        sens, spec = predictor._aligned_quality(claims)
        newcomer = claims.source_id("newcomer")
        assert sens[newcomer] == pytest.approx(0.4)
        assert spec[newcomer] == pytest.approx(0.8)

    def test_fit_scores_every_fact(self, paper_claims):
        quality = _quality(
            paper_claims.source_names,
            [0.9] * paper_claims.num_sources,
            [0.95] * paper_claims.num_sources,
        )
        result = IncrementalLTM(quality).fit(paper_claims)
        assert result.method == "LTMinc"
        assert result.scores.shape == (paper_claims.num_facts,)

    def test_matches_batch_ltm_on_holdout(self, medium_book_dataset):
        """The paper's LTMinc protocol: quality learned on unlabelled entities
        predicts the labelled entities almost as well as batch LTM."""
        training, _ = medium_book_dataset.split_labelled_entities()
        model = LatentTruthModel(iterations=80, seed=0)
        training_result = model.fit(training)

        labelled_matrix, labels, _ = medium_book_dataset.label_subset_matrix()
        incremental = IncrementalLTM(training_result.source_quality).fit(labelled_matrix)
        inc_metrics = evaluate_scores(incremental.scores, labels)

        batch = LatentTruthModel(iterations=80, seed=0).fit(medium_book_dataset.claims)
        batch_metrics = evaluate_scores(batch, medium_book_dataset.labels)

        assert inc_metrics.accuracy >= batch_metrics.accuracy - 0.1
        assert inc_metrics.accuracy >= 0.85

    def test_runtime_much_smaller_than_batch(self, medium_book_dataset):
        training, _ = medium_book_dataset.split_labelled_entities()
        model = LatentTruthModel(iterations=80, seed=0)
        training_result = model.fit(training)
        labelled_matrix, _, _ = medium_book_dataset.label_subset_matrix()
        incremental = IncrementalLTM(training_result.source_quality).fit(labelled_matrix)
        assert incremental.runtime_seconds < training_result.runtime_seconds

"""Tests for the seven baseline truth-finding methods."""

import numpy as np
import pytest

from repro.baselines import (
    AvgLog,
    HubAuthority,
    Investment,
    PooledInvestment,
    ThreeEstimates,
    TruthFinder,
    Voting,
)
from repro.baselines._graph import PositiveClaimGraph
from repro.data.claim_builder import build_claim_matrix
from repro.engine.registry import default_registry, method_suite
from repro.evaluation.metrics import evaluate_scores
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def consensus_claims():
    """Three reliable sources agree per entity; a spammer adds junk values."""
    triples = []
    for e in range(12):
        for s in range(3):
            triples.append((f"e{e}", f"true_{e}", f"good{s}"))
        triples.append((f"e{e}", f"junk_{e}", "spammer"))
    return build_claim_matrix(triples)


def _true_and_junk_ids(claims):
    true_ids = [f.fact_id for f in claims.facts if str(f.attribute).startswith("true_")]
    junk_ids = [f.fact_id for f in claims.facts if str(f.attribute).startswith("junk_")]
    return true_ids, junk_ids


class TestPositiveClaimGraph:
    def test_edges_only_positive(self, paper_claims):
        graph = PositiveClaimGraph.from_claims(paper_claims)
        assert graph.num_edges == paper_claims.num_positive_claims
        assert graph.fact_degree.sum() == paper_claims.num_positive_claims

    def test_message_passing_shapes(self, paper_claims):
        graph = PositiveClaimGraph.from_claims(paper_claims)
        facts = graph.facts_from_sources(np.ones(graph.num_sources))
        sources = graph.sources_from_facts(np.ones(graph.num_facts))
        assert facts.shape == (graph.num_facts,)
        assert sources.shape == (graph.num_sources,)
        # Each fact receives one unit per asserting source.
        assert facts.sum() == graph.num_edges

    def test_safe_degrees_have_no_zeros(self, paper_claims):
        graph = PositiveClaimGraph.from_claims(paper_claims)
        assert (graph.safe_source_degree() > 0).all()
        assert (graph.safe_fact_degree() > 0).all()


class TestVoting:
    def test_paper_example_proportions(self, paper_claims):
        result = Voting().fit(paper_claims)
        by_fact = {
            (paper_claims.fact(i).entity, paper_claims.fact(i).attribute): result.scores[i]
            for i in range(paper_claims.num_facts)
        }
        assert by_fact[("Harry Potter", "Daniel Radcliffe")] == pytest.approx(1.0)
        assert by_fact[("Harry Potter", "Emma Watson")] == pytest.approx(2 / 3)
        assert by_fact[("Harry Potter", "Rupert Grint")] == pytest.approx(1 / 3)
        assert by_fact[("Harry Potter", "Johnny Depp")] == pytest.approx(1 / 3)
        assert by_fact[("Pirates 4", "Johnny Depp")] == pytest.approx(1.0)

    def test_majority_decision(self, consensus_claims):
        result = Voting().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        assert (result.scores[true_ids] >= 0.5).all()
        assert (result.scores[junk_ids] < 0.5).all()


class TestTruthFinder:
    def test_scores_in_unit_interval(self, consensus_claims):
        result = TruthFinder().fit(consensus_claims)
        assert np.all(result.scores >= 0) and np.all(result.scores <= 1)

    def test_every_asserted_fact_above_half(self, consensus_claims):
        """TruthFinder's optimism: any positively-claimed fact scores >= 0.5."""
        result = TruthFinder().fit(consensus_claims)
        assert (result.scores >= 0.5).all()

    def test_more_support_higher_score(self, consensus_claims):
        result = TruthFinder().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        assert result.scores[true_ids].mean() > result.scores[junk_ids].mean()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TruthFinder(initial_trust=1.5)
        with pytest.raises(ConfigurationError):
            TruthFinder(gamma=0)
        with pytest.raises(ConfigurationError):
            TruthFinder(max_iterations=0)

    def test_records_trustworthiness(self, consensus_claims):
        result = TruthFinder().fit(consensus_claims)
        assert result.extras["trustworthiness"].shape == (consensus_claims.num_sources,)
        assert result.extras["iterations"] >= 1


class TestHubAuthority:
    def test_conservative_scores(self, consensus_claims):
        result = HubAuthority().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        # Junk facts are claimed only by the weak hub => low authority.
        assert result.scores[junk_ids].max() < 0.5
        assert result.scores[true_ids].mean() > result.scores[junk_ids].mean()

    def test_max_score_is_one(self, consensus_claims):
        result = HubAuthority().fit(consensus_claims)
        assert result.scores.max() == pytest.approx(1.0)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            HubAuthority(max_iterations=0)


class TestAvgLog:
    def test_ranking_and_conservatism(self, consensus_claims):
        result = AvgLog().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        assert result.scores[true_ids].mean() > result.scores[junk_ids].mean()
        assert result.scores[junk_ids].max() < 0.5

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            AvgLog(iterations=0)


class TestInvestment:
    def test_all_asserted_facts_predicted_true(self, consensus_claims):
        result = Investment().fit(consensus_claims)
        graph_degree = consensus_claims.positive_counts_per_fact()
        asserted = graph_degree > 0
        assert (result.scores[asserted] >= 0.5).all()

    def test_unasserted_fact_scores_zero(self, paper_claims):
        result = Investment().fit(paper_claims)
        # Every fact in the paper example is asserted by someone, so check the
        # score floor instead on a constructed case.
        assert (result.scores >= 0.5).all()

    def test_ranking_by_credit(self, consensus_claims):
        result = Investment().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        assert result.scores[true_ids].mean() > result.scores[junk_ids].mean()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            Investment(iterations=0)
        with pytest.raises(ConfigurationError):
            Investment(growth=-1)


class TestPooledInvestment:
    def test_pooling_suppresses_minority_candidates(self, consensus_claims):
        result = PooledInvestment().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        assert result.scores[junk_ids].max() < 0.5
        assert result.scores[true_ids].mean() > result.scores[junk_ids].mean()

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            PooledInvestment(iterations=-1)
        with pytest.raises(ConfigurationError):
            PooledInvestment(growth=0)


class TestThreeEstimates:
    def test_uses_negative_claims(self, consensus_claims):
        result = ThreeEstimates().fit(consensus_claims)
        true_ids, junk_ids = _true_and_junk_ids(consensus_claims)
        assert (result.scores[true_ids] >= 0.5).all()
        assert (result.scores[junk_ids] < 0.5).all()

    def test_extras_present(self, consensus_claims):
        result = ThreeEstimates().fit(consensus_claims)
        assert result.extras["source_error"].shape == (consensus_claims.num_sources,)
        assert result.extras["fact_difficulty"].shape == (consensus_claims.num_facts,)

    def test_error_stays_bounded(self, consensus_claims):
        result = ThreeEstimates(max_error=0.3).fit(consensus_claims)
        assert result.extras["source_error"].max() <= 0.3 + 1e-9

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            ThreeEstimates(iterations=0)
        with pytest.raises(ConfigurationError):
            ThreeEstimates(initial_error=1.5)
        with pytest.raises(ConfigurationError):
            ThreeEstimates(initial_difficulty=0.0)
        with pytest.raises(ConfigurationError):
            ThreeEstimates(max_error=1.0)


class TestRegistry:
    def test_registry_resolves_display_names(self):
        registry = default_registry()
        assert isinstance(registry.create("Voting"), Voting)
        assert isinstance(registry.create("3-Estimates"), ThreeEstimates)
        with pytest.raises(ConfigurationError):
            registry.create("NoSuchMethod")

    def test_method_suite_composition(self):
        suite = method_suite(iterations=10, seed=0)
        names = [m.name for m in suite]
        assert names[0] == "LTM"
        assert "LTMpos" in names and "3-Estimates" in names
        assert len(suite) == 9

    def test_method_suite_exclusion(self):
        suite = method_suite(include={"LTM": False, "LTMpos": False})
        names = [m.name for m in suite]
        assert "LTM" not in names and "LTMpos" not in names
        assert len(suite) == 7


class TestBaselineBehaviourOnBookData:
    """Shape checks mirroring paper Table 7 on the simulated book data."""

    def test_positive_only_methods_are_optimistic(self, medium_book_dataset):
        for method in (TruthFinder(), Investment()):
            metrics = evaluate_scores(method.fit(medium_book_dataset.claims), medium_book_dataset.labels)
            assert metrics.recall == pytest.approx(1.0)
            assert metrics.false_positive_rate == pytest.approx(1.0)

    def test_propagation_methods_are_conservative(self, medium_book_dataset):
        for method in (HubAuthority(), AvgLog(), PooledInvestment()):
            metrics = evaluate_scores(method.fit(medium_book_dataset.claims), medium_book_dataset.labels)
            assert metrics.precision >= 0.95
            assert metrics.recall <= 0.6

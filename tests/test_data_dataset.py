"""Tests for ClaimMatrix and TruthDataset."""

import numpy as np
import pytest

from repro.data.dataset import ClaimMatrix, TruthDataset
from repro.data.records import Fact
from repro.exceptions import DataModelError, EmptyDatasetError, UnknownFactError


def _tiny_matrix() -> ClaimMatrix:
    facts = [
        Fact(0, "e1", "a"),
        Fact(1, "e1", "b"),
        Fact(2, "e2", "c"),
    ]
    return ClaimMatrix(
        facts=facts,
        source_names=["s1", "s2"],
        claim_fact=[0, 0, 1, 2],
        claim_source=[0, 1, 0, 1],
        claim_obs=[True, False, True, True],
    )


class TestClaimMatrix:
    def test_sizes(self):
        matrix = _tiny_matrix()
        assert matrix.num_facts == 3
        assert matrix.num_sources == 2
        assert matrix.num_claims == 4
        assert matrix.num_entities == 2
        assert matrix.num_positive_claims == 3
        assert matrix.num_negative_claims == 1

    def test_claims_of(self):
        matrix = _tiny_matrix()
        sources, obs = matrix.claims_of(0)
        assert sorted(sources.tolist()) == [0, 1]
        assert obs.sum() == 1

    def test_claims_of_out_of_range(self):
        with pytest.raises(UnknownFactError):
            _tiny_matrix().claims_of(99)

    def test_positive_and_negative_sources(self):
        matrix = _tiny_matrix()
        assert matrix.positive_sources_of(0).tolist() == [0]
        assert matrix.negative_sources_of(0).tolist() == [1]

    def test_fact_lookup(self):
        matrix = _tiny_matrix()
        assert matrix.fact(2).entity == "e2"
        with pytest.raises(UnknownFactError):
            matrix.fact(-1)

    def test_entity_groups(self):
        matrix = _tiny_matrix()
        assert matrix.facts_of_entity("e1") == [0, 1]
        assert matrix.entity_groups == {"e1": [0, 1], "e2": [2]}

    def test_per_fact_counts(self):
        matrix = _tiny_matrix()
        assert matrix.positive_counts_per_fact().tolist() == [1, 1, 1]
        assert matrix.claim_counts_per_fact().tolist() == [2, 1, 1]

    def test_per_source_counts(self):
        matrix = _tiny_matrix()
        assert matrix.positive_counts_per_source().tolist() == [2, 1]
        assert matrix.claim_counts_per_source().tolist() == [2, 2]

    def test_source_records(self):
        matrix = _tiny_matrix()
        records = matrix.source_records()
        assert records[0].name == "s1"
        assert records[0].num_positive_claims == 2
        assert records[1].num_negative_claims == 1
        assert records[0].num_claims == 2

    def test_source_id(self):
        matrix = _tiny_matrix()
        assert matrix.source_id("s2") == 1
        with pytest.raises(DataModelError):
            matrix.source_id("unknown")

    def test_claims_sorted_by_fact(self):
        matrix = _tiny_matrix()
        assert np.all(np.diff(matrix.claim_fact) >= 0)

    def test_restrict_to_facts(self):
        matrix = _tiny_matrix()
        restricted = matrix.restrict_to_facts([1, 2])
        assert restricted.num_facts == 2
        assert restricted.num_claims == 2
        assert restricted.source_names == matrix.source_names
        assert [f.attribute for f in restricted.facts] == ["b", "c"]

    def test_restrict_to_facts_invalid(self):
        with pytest.raises(UnknownFactError):
            _tiny_matrix().restrict_to_facts([7])

    def test_restrict_to_entities(self):
        restricted = _tiny_matrix().restrict_to_entities(["e2"])
        assert restricted.num_facts == 1
        assert restricted.facts[0].entity == "e2"

    def test_positive_only(self):
        positive = _tiny_matrix().positive_only()
        assert positive.num_claims == 3
        assert positive.num_negative_claims == 0
        assert positive.num_facts == 3  # facts are preserved even if unclaimed

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(DataModelError):
            ClaimMatrix(
                facts=[Fact(0, "e", "a")],
                source_names=["s"],
                claim_fact=[0, 0],
                claim_source=[0],
                claim_obs=[True],
            )

    def test_non_dense_fact_ids_rejected(self):
        with pytest.raises(DataModelError):
            ClaimMatrix(
                facts=[Fact(1, "e", "a")],
                source_names=["s"],
                claim_fact=[0],
                claim_source=[0],
                claim_obs=[True],
            )

    def test_out_of_range_source_rejected(self):
        with pytest.raises(DataModelError):
            ClaimMatrix(
                facts=[Fact(0, "e", "a")],
                source_names=["s"],
                claim_fact=[0],
                claim_source=[5],
                claim_obs=[True],
            )

    def test_summary(self):
        summary = _tiny_matrix().summary()
        assert summary["facts"] == 3
        assert summary["claims"] == 4


class TestTruthDataset:
    def test_label_validation(self):
        matrix = _tiny_matrix()
        with pytest.raises(UnknownFactError):
            TruthDataset(name="d", claims=matrix, labels={99: True})

    def test_labels_array(self):
        dataset = TruthDataset(name="d", claims=_tiny_matrix(), labels={0: True, 2: False})
        assert dataset.labelled_fact_ids == [0, 2]
        assert dataset.labels_array().tolist() == [True, False]
        assert dataset.labels_array([2]).tolist() == [False]

    def test_labels_array_missing(self):
        dataset = TruthDataset(name="d", claims=_tiny_matrix(), labels={0: True})
        with pytest.raises(UnknownFactError):
            dataset.labels_array([1])

    def test_require_labels(self):
        dataset = TruthDataset(name="d", claims=_tiny_matrix())
        with pytest.raises(EmptyDatasetError):
            dataset.require_labels()

    def test_split_labelled_entities(self):
        dataset = TruthDataset(
            name="d", claims=_tiny_matrix(), labels={2: True}, labelled_entities=("e2",)
        )
        unlabelled, labelled = dataset.split_labelled_entities()
        assert {f.entity for f in unlabelled.facts} == {"e1"}
        assert {f.entity for f in labelled.facts} == {"e2"}

    def test_label_subset_matrix(self):
        dataset = TruthDataset(
            name="d", claims=_tiny_matrix(), labels={0: True, 1: False}, labelled_entities=("e1",)
        )
        matrix, labels, fact_ids = dataset.label_subset_matrix()
        assert matrix.num_facts == 2
        assert labels.tolist() == [True, False]
        assert fact_ids == [0, 1]

    def test_summary_counts_labelled_entities(self, small_book_dataset):
        summary = small_book_dataset.summary()
        assert summary["labelled_facts"] == small_book_dataset.num_labelled
        assert summary["labelled_entities"] > 0

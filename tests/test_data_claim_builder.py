"""Tests for claim construction (Definitions 2-3, paper Tables 2-3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.claim_builder import (
    ClaimTableBuilder,
    build_claim_matrix,
    build_dataset,
    bulk_build_claim_matrix,
)
from repro.data.raw import RawDatabase
from repro.exceptions import DuplicateRowError, EmptyDatasetError
from repro.types import Triple


class TestFactTable:
    def test_facts_are_distinct_entity_attribute_pairs(self, paper_claims):
        pairs = {(f.entity, f.attribute) for f in paper_claims.facts}
        assert len(pairs) == paper_claims.num_facts == 5

    def test_fact_ids_are_dense(self, paper_claims):
        assert [f.fact_id for f in paper_claims.facts] == list(range(5))

    def test_fact_table_relational_view(self, paper_builder):
        table = paper_builder.fact_table()
        assert len(table) == 5
        assert set(table.column_names) == {"fact_id", "entity", "attribute"}


class TestClaimGeneration:
    """The three claim-generation rules of Definition 3."""

    def test_total_claim_count_matches_paper_table3(self, paper_claims):
        # Table 3: 4 facts x 3 Harry Potter sources + 1 Hulu claim = 13 claims.
        assert paper_claims.num_claims == 13

    def test_positive_claims_match_raw_assertions(self, paper_claims, paper_raw):
        assert paper_claims.num_positive_claims == len(paper_raw)

    def test_rule1_positive_claim(self, paper_claims):
        # IMDB asserted Rupert Grint: positive claim.
        fact_id = next(
            f.fact_id for f in paper_claims.facts if f.attribute == "Rupert Grint"
        )
        positive = paper_claims.positive_sources_of(fact_id)
        assert paper_claims.source_id("IMDB") in positive

    def test_rule2_negative_claim(self, paper_claims):
        # Netflix asserted Harry Potter (Daniel) but not Emma Watson: negative claim.
        fact_id = next(
            f.fact_id for f in paper_claims.facts if f.attribute == "Emma Watson"
        )
        negative = paper_claims.negative_sources_of(fact_id)
        assert paper_claims.source_id("Netflix") in negative

    def test_rule3_no_claim_for_uninvolved_source(self, paper_claims):
        # Hulu.com asserted nothing about Harry Potter: no claim at all for its facts.
        hulu = paper_claims.source_id("Hulu.com")
        for fact in paper_claims.facts:
            if fact.entity != "Harry Potter":
                continue
            sources, _ = paper_claims.claims_of(fact.fact_id)
            assert hulu not in sources

    def test_one_claim_per_fact_source_pair(self, paper_claims):
        pairs = list(zip(paper_claims.claim_fact.tolist(), paper_claims.claim_source.tolist()))
        assert len(pairs) == len(set(pairs))

    def test_claim_table_relational_view(self, paper_builder):
        table = paper_builder.claim_table()
        assert len(table) == 13
        true_count = sum(1 for row in table if row["observation"])
        assert true_count == 8

    def test_duplicate_triples_do_not_duplicate_claims(self):
        raw = RawDatabase(strict=False)
        raw.extend([("e", "a", "s"), ("e", "a", "s"), ("e", "b", "s2")])
        claims = ClaimTableBuilder(raw).build()
        assert claims.num_claims == 4  # 2 positive + 2 negative

    def test_empty_raw_database_rejected(self):
        with pytest.raises(EmptyDatasetError):
            ClaimTableBuilder(RawDatabase())


class TestBuildHelpers:
    def test_build_claim_matrix_from_tuples(self):
        claims = build_claim_matrix([("e", "a", "s1"), ("e", "b", "s2")])
        assert claims.num_facts == 2
        assert claims.num_claims == 4

    def test_build_claim_matrix_from_raw(self, paper_raw):
        claims = build_claim_matrix(paper_raw)
        assert claims.num_facts == 5

    def test_build_dataset_labels(self, paper_triples):
        dataset = build_dataset(
            paper_triples,
            truth={("Harry Potter", "Johnny Depp"): False, ("Harry Potter", "Emma Watson"): True},
        )
        assert dataset.num_labelled == 2
        values = {dataset.claims.fact(f).attribute: v for f, v in dataset.labels.items()}
        assert values == {"Johnny Depp": False, "Emma Watson": True}

    def test_build_dataset_ignores_unknown_pairs(self, paper_triples):
        dataset = build_dataset(paper_triples, truth={("No Movie", "Nobody"): True})
        assert dataset.num_labelled == 0

    def test_build_dataset_restricts_to_labelled_entities(self, paper_triples):
        dataset = build_dataset(
            paper_triples,
            truth={("Harry Potter", "Johnny Depp"): False, ("Pirates 4", "Johnny Depp"): True},
            labelled_entities=["Pirates 4"],
        )
        assert dataset.num_labelled == 1

    def test_builder_fact_ids_mapping(self, paper_builder):
        paper_builder.build()
        mapping = paper_builder.fact_ids
        assert mapping[("Pirates 4", "Johnny Depp")] == 4

    def test_build_is_idempotent(self, paper_builder):
        first = paper_builder.build()
        second = paper_builder.build()
        assert first.num_claims == second.num_claims
        assert np.array_equal(first.claim_fact, second.claim_fact)


# ---------------------------------------------------------------------------
# Vectorized bulk ingest: must be indistinguishable from the sequential path
# ---------------------------------------------------------------------------
_triples_strategy = st.lists(
    st.tuples(
        st.integers(0, 6).map(lambda i: f"e{i}"),
        st.integers(0, 5).map(lambda i: f"a{i}"),
        st.integers(0, 5).map(lambda i: f"s{i}"),
    ),
    min_size=1,
    max_size=80,
)


def _assert_matrices_identical(seq, blk):
    assert list(seq.source_names) == list(blk.source_names)
    assert [(f.fact_id, f.entity, f.attribute) for f in seq.facts] == [
        (f.fact_id, f.entity, f.attribute) for f in blk.facts
    ]
    np.testing.assert_array_equal(seq.claim_fact, blk.claim_fact)
    np.testing.assert_array_equal(seq.claim_source, blk.claim_source)
    np.testing.assert_array_equal(seq.claim_obs, blk.claim_obs)
    np.testing.assert_array_equal(seq.fact_ptr, blk.fact_ptr)


class TestBulkIngestParity:
    @settings(max_examples=150, deadline=None)
    @given(triples=_triples_strategy)
    def test_bulk_matches_sequential_builder(self, triples):
        seq = ClaimTableBuilder(RawDatabase(triples, strict=False)).build()
        blk = bulk_build_claim_matrix(triples)
        _assert_matrices_identical(seq, blk)

    def test_paper_example_identical(self, paper_triples, paper_claims):
        _assert_matrices_identical(paper_claims, bulk_build_claim_matrix(paper_triples))

    def test_accepts_triple_objects_tuples_and_mixed(self):
        as_tuples = [("e", "a", "s1"), ("e", "b", "s2")]
        as_triples = [Triple(*t) for t in as_tuples]
        mixed = [as_triples[0], as_tuples[1]]
        reference = bulk_build_claim_matrix(as_tuples)
        for variant in (as_triples, mixed):
            _assert_matrices_identical(reference, bulk_build_claim_matrix(variant))

    def test_accepts_raw_database(self, paper_raw, paper_claims):
        _assert_matrices_identical(paper_claims, bulk_build_claim_matrix(paper_raw))

    def test_non_string_attributes_survive(self):
        triples = [("e1", 1, "s1"), ("e1", "x", "s2"), ("e2", 2.5, "s1"), ("e2", 2.5, "s3")]
        seq = ClaimTableBuilder(RawDatabase(triples, strict=False)).build()
        blk = bulk_build_claim_matrix(triples)
        _assert_matrices_identical(seq, blk)
        assert blk.facts[0].attribute == 1  # values, not str renderings

    def test_strict_duplicate_rejected(self):
        with pytest.raises(DuplicateRowError):
            bulk_build_claim_matrix([("e", "a", "s"), ("e", "a", "s")], strict=True)
        # Non-strict drops the duplicate, like RawDatabase(strict=False).
        assert bulk_build_claim_matrix([("e", "a", "s"), ("e", "a", "s")]).num_claims == 1

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            bulk_build_claim_matrix([])

    def test_wrong_arity_rejected_not_truncated(self):
        from repro.exceptions import DataModelError

        with pytest.raises(DataModelError, match="expected \\(entity, attribute, source\\)"):
            bulk_build_claim_matrix([("e", "a", "s", "extra-column")])
        with pytest.raises(DataModelError):
            bulk_build_claim_matrix([("e", "a")])
        with pytest.raises(DataModelError):
            bulk_build_claim_matrix([Triple("e", "a", "s"), ("e", "a", "s", "extra")])

    def test_build_claim_matrix_routes_through_bulk(self):
        triples = [("e", "a", "s1"), ("e", "b", "s2")]
        _assert_matrices_identical(
            bulk_build_claim_matrix(triples), build_claim_matrix(triples)
        )

    def test_classmethod_alias(self, paper_triples, paper_claims):
        _assert_matrices_identical(paper_claims, ClaimTableBuilder.bulk(paper_triples))
